//! MVCC transactions: snapshot isolation over the catalog's
//! copy-on-write tables, first-committer-wins conflict detection, and the
//! write path that routes row deltas through [`Table::apply_delta`].
//!
//! The design leans on the Arc-snapshot discipline the storage layer
//! already has: every MVCC-capable table hands out an immutable
//! [`TxnVersion`] (rows + stable row ids + index state, all referring to
//! the same instant), and writers replace the shared state under
//! `Arc::make_mut`, so a transaction that captured a version at BEGIN
//! keeps reading it unchanged — that *is* the version chain, with the Arc
//! holders pinning exactly the versions still needed and dropped versions
//! reclaimed by refcount.
//!
//! Writes are private until COMMIT: a [`Transaction`] stages [`DeltaOp`]s
//! in a per-table workspace; an overlay materialized lazily on the first
//! read-after-write lets the transaction read its own writes, while
//! write-only transactions (every autocommit DML statement) never pay
//! the O(table) copy. COMMIT, under the manager's global
//! commit lock, (1) appends the whole transaction to the WAL, (2) runs the
//! first-committer-wins check — any transaction that committed after this
//! one began and wrote an overlapping row id aborts this one with a
//! retryable [`CalciteError::TxnConflict`] — then (3) logs `Commit`,
//! syncs, and applies the deltas onto the *current* table state, so
//! non-overlapping concurrent committers merge instead of clobbering.

use crate::catalog::{Statistic, Table, TableRef};
use crate::datum::{Column, Row};
use crate::error::{CalciteError, Result};
use crate::index::{IndexDef, IndexProbe};
use crate::types::RowType;
use crate::wal::{WalRecord, WalWriter};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Deltas
// ---------------------------------------------------------------------

/// One row-level change, addressed by the table's stable row id (assigned
/// at insert, never reused), so deltas survive physical reordering and
/// replay deterministically from the WAL.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    Insert { row_id: u64, row: Row },
    Update { row_id: u64, row: Row },
    Delete { row_id: u64 },
}

impl DeltaOp {
    pub fn row_id(&self) -> u64 {
        match self {
            DeltaOp::Insert { row_id, .. }
            | DeltaOp::Update { row_id, .. }
            | DeltaOp::Delete { row_id } => *row_id,
        }
    }

    /// Whether this op participates in write-write conflict detection.
    /// Inserts touch rows no concurrent transaction can see, so they
    /// never conflict.
    pub fn conflicts(&self) -> bool {
        !matches!(self, DeltaOp::Insert { .. })
    }
}

/// Applies `ops` in order to a row store (`rows` + parallel `ids`),
/// validating arity, and reports how positions moved so secondary indexes
/// can be maintained incrementally instead of rebuilt.
pub fn apply_ops_to_rows(
    rows: &mut Vec<Row>,
    ids: &mut Vec<u64>,
    ops: &[DeltaOp],
    arity: usize,
) -> Result<DeltaOutcome> {
    if !ops.iter().any(|op| matches!(op, DeltaOp::Delete { .. })) {
        return apply_ops_without_deletes(rows, ids, ops, arity);
    }
    let old_len = rows.len();
    // Tombstone slots keep positions stable while ops are applied in
    // sequence (an op stream may update then delete the same row).
    struct Slot {
        id: u64,
        row: Row,
        origin: Option<usize>,
        touched: bool,
    }
    let mut slots: Vec<Option<Slot>> = std::mem::take(rows)
        .into_iter()
        .zip(ids.iter().copied())
        .enumerate()
        .map(|(pos, (row, id))| {
            Some(Slot {
                id,
                row,
                origin: Some(pos),
                touched: false,
            })
        })
        .collect();
    let mut by_id: HashMap<u64, usize> = slots
        .iter()
        .enumerate()
        .map(|(i, s)| (s.as_ref().unwrap().id, i))
        .collect();
    let mut max_inserted = None;
    for op in ops {
        match op {
            DeltaOp::Insert { row_id, row } => {
                if row.len() != arity {
                    return Err(CalciteError::execution(format!(
                        "insert arity mismatch: row has {} values, table has {arity} columns",
                        row.len()
                    )));
                }
                if by_id.contains_key(row_id) {
                    return Err(CalciteError::internal(format!(
                        "duplicate row id {row_id} in insert"
                    )));
                }
                by_id.insert(*row_id, slots.len());
                slots.push(Some(Slot {
                    id: *row_id,
                    row: row.clone(),
                    origin: None,
                    touched: true,
                }));
                max_inserted = Some(max_inserted.map_or(*row_id, |m: u64| m.max(*row_id)));
            }
            DeltaOp::Update { row_id, row } => {
                if row.len() != arity {
                    return Err(CalciteError::execution(format!(
                        "update arity mismatch: row has {} values, table has {arity} columns",
                        row.len()
                    )));
                }
                let slot = by_id
                    .get(row_id)
                    .and_then(|i| slots[*i].as_mut())
                    .ok_or_else(|| {
                        CalciteError::internal(format!("update of unknown row id {row_id}"))
                    })?;
                slot.row = row.clone();
                slot.touched = true;
            }
            DeltaOp::Delete { row_id } => {
                let i = by_id.remove(row_id).ok_or_else(|| {
                    CalciteError::internal(format!("delete of unknown row id {row_id}"))
                })?;
                slots[i] = None;
            }
        }
    }
    let mut remap = vec![None; old_len];
    let mut reinserted = Vec::new();
    for slot in slots.into_iter().flatten() {
        let new_pos = rows.len();
        if let Some(old_pos) = slot.origin {
            remap[old_pos] = Some(new_pos);
        }
        if slot.touched {
            reinserted.push(new_pos);
        }
        rows.push(slot.row);
        ids.push(slot.id);
    }
    ids.drain(..old_len);
    Ok(DeltaOutcome {
        remap,
        reinserted,
        applied: ops.len(),
        max_inserted_id: max_inserted,
    })
}

/// Delete-free fast path for [`apply_ops_to_rows`]: without deletes,
/// positions are stable, so updates land in place and inserts append —
/// no tombstone-slot rebuild of the whole store. Update targets resolve
/// through an in-order merge over `ids` (the ops of one DML statement
/// address ascending positions), falling back to a full id → position
/// map for out-of-order streams; insert-bearing streams build the map up
/// front for the duplicate-id check. O(|ops|) row moves either way.
fn apply_ops_without_deletes(
    rows: &mut Vec<Row>,
    ids: &mut Vec<u64>,
    ops: &[DeltaOp],
    arity: usize,
) -> Result<DeltaOutcome> {
    let old_len = rows.len();
    fn build_map(ids: &[u64]) -> HashMap<u64, usize> {
        ids.iter()
            .copied()
            .enumerate()
            .map(|(p, id)| (id, p))
            .collect()
    }
    let mut by_id: Option<HashMap<u64, usize>> = ops
        .iter()
        .any(|op| matches!(op, DeltaOp::Insert { .. }))
        .then(|| build_map(ids));
    let mut cursor = 0usize;
    let mut touched = Vec::with_capacity(ops.len());
    let mut max_inserted = None;
    for op in ops {
        match op {
            DeltaOp::Insert { row_id, row } => {
                if row.len() != arity {
                    return Err(CalciteError::execution(format!(
                        "insert arity mismatch: row has {} values, table has {arity} columns",
                        row.len()
                    )));
                }
                let map = by_id.as_mut().expect("map built for insert-bearing stream");
                if map.insert(*row_id, rows.len()).is_some() {
                    return Err(CalciteError::internal(format!(
                        "duplicate row id {row_id} in insert"
                    )));
                }
                touched.push(rows.len());
                rows.push(row.clone());
                ids.push(*row_id);
                max_inserted = Some(max_inserted.map_or(*row_id, |m: u64| m.max(*row_id)));
            }
            DeltaOp::Update { row_id, row } => {
                if row.len() != arity {
                    return Err(CalciteError::execution(format!(
                        "update arity mismatch: row has {} values, table has {arity} columns",
                        row.len()
                    )));
                }
                let pos = match &mut by_id {
                    Some(map) => map.get(row_id).copied(),
                    None => match ids[cursor..].iter().position(|id| id == row_id) {
                        Some(off) => {
                            cursor += off + 1;
                            Some(cursor - 1)
                        }
                        None => {
                            // Out-of-order stream (e.g. a multi-statement
                            // transaction revisiting a row): resolve the
                            // rest through the map. No inserts have
                            // happened (the map would already exist), so
                            // `ids` still holds exactly the original rows.
                            by_id.insert(build_map(ids)).get(row_id).copied()
                        }
                    },
                };
                let pos = pos.ok_or_else(|| {
                    CalciteError::internal(format!("update of unknown row id {row_id}"))
                })?;
                rows[pos] = row.clone();
                touched.push(pos);
            }
            DeltaOp::Delete { .. } => unreachable!("caller routed deletes to the slot path"),
        }
    }
    // A row updated twice must re-key its index entry once.
    touched.sort_unstable();
    touched.dedup();
    Ok(DeltaOutcome {
        remap: (0..old_len).map(Some).collect(),
        reinserted: touched,
        applied: ops.len(),
        max_inserted_id: max_inserted,
    })
}

/// How [`apply_ops_to_rows`] moved things: the position remap for
/// surviving rows plus the new positions whose keys changed, i.e. exactly
/// what [`crate::index::IndexData::apply_delta`] needs.
#[derive(Debug)]
pub struct DeltaOutcome {
    /// Old position → new position; `None` means deleted. Monotonic over
    /// the surviving rows (relative order is preserved).
    pub remap: Vec<Option<usize>>,
    /// New positions holding updated or inserted rows, ascending.
    pub reinserted: Vec<usize>,
    /// Ops applied.
    pub applied: usize,
    /// Largest row id assigned by an insert, if any — callers bump their
    /// id counter past it (WAL replay inserts carry explicit ids).
    pub max_inserted_id: Option<u64>,
}

// ---------------------------------------------------------------------
// Versions
// ---------------------------------------------------------------------

/// An immutable point-in-time version of one table: rows, their stable
/// ids, and the index state covering exactly those rows. Cheap to capture
/// (Arc clones) and held for the life of a transaction.
pub trait TxnVersion: Send + Sync {
    fn row_count(&self) -> usize;
    fn row(&self, pos: usize) -> Row;
    fn row_id(&self, pos: usize) -> u64;
    /// Indexes present in this version.
    fn index_defs(&self) -> Vec<IndexDef>;
    /// Probe handle for `index` over this version's rows, if it exists.
    fn index_probe(&self, index: &str) -> Option<Arc<dyn IndexProbe>>;
}

/// The read view a statement evaluates against: either a clean captured
/// version (index probes available) or the transaction's own overlay
/// after it wrote (plain rows; locates fall back to predicate scans).
#[derive(Clone)]
pub enum ReadView {
    Version(Arc<dyn TxnVersion>),
    Rows {
        rows: Arc<Vec<Row>>,
        ids: Arc<Vec<u64>>,
    },
}

impl ReadView {
    pub fn row_count(&self) -> usize {
        match self {
            ReadView::Version(v) => v.row_count(),
            ReadView::Rows { rows, .. } => rows.len(),
        }
    }

    pub fn row(&self, pos: usize) -> Row {
        match self {
            ReadView::Version(v) => v.row(pos),
            ReadView::Rows { rows, .. } => rows[pos].clone(),
        }
    }

    pub fn row_id(&self, pos: usize) -> u64 {
        match self {
            ReadView::Version(v) => v.row_id(pos),
            ReadView::Rows { ids, .. } => ids[pos],
        }
    }

    pub fn index_probe(&self, index: &str) -> Option<Arc<dyn IndexProbe>> {
        match self {
            ReadView::Version(v) => v.index_probe(index),
            ReadView::Rows { .. } => None,
        }
    }
}

/// A [`Table`] over a captured version (plus any transaction-local
/// overlay), substituted for base-table scans while a transaction is
/// open so every statement reads the BEGIN-time snapshot.
pub struct SnapshotTable {
    row_type: RowType,
    view: ReadView,
}

impl SnapshotTable {
    pub fn new(row_type: RowType, view: ReadView) -> Arc<SnapshotTable> {
        Arc::new(SnapshotTable { row_type, view })
    }

    fn all_rows(&self) -> Vec<Row> {
        (0..self.view.row_count())
            .map(|p| self.view.row(p))
            .collect()
    }
}

impl Table for SnapshotTable {
    fn row_type(&self) -> RowType {
        self.row_type.clone()
    }

    fn statistic(&self) -> Statistic {
        Statistic::of_rows(self.view.row_count() as f64)
    }

    fn scan(&self) -> Result<Box<dyn Iterator<Item = Row> + Send>> {
        let view = self.view.clone();
        Ok(Box::new((0..view.row_count()).map(move |p| view.row(p))))
    }

    fn scan_columns(&self) -> Option<Result<Vec<Column>>> {
        let rows = self.all_rows();
        Some(Ok(self
            .row_type
            .fields
            .iter()
            .enumerate()
            .map(|(i, f)| Column::from_rows(&f.ty.kind, &rows, i))
            .collect()))
    }

    fn range_scan_rows(&self) -> Option<usize> {
        if self.row_type.arity() == 0 {
            return None;
        }
        Some(self.view.row_count())
    }

    fn indexes(&self) -> Vec<IndexDef> {
        match &self.view {
            ReadView::Version(v) => v.index_defs(),
            ReadView::Rows { .. } => vec![],
        }
    }

    fn index_probe_snapshot(&self, index: &str) -> Result<Option<Arc<dyn IndexProbe>>> {
        Ok(self.view.index_probe(index))
    }
}

// ---------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------

/// Materialized rows + row ids of a written table after applying the
/// transaction's staged ops to its BEGIN-time version.
type Overlay = (Arc<Vec<Row>>, Arc<Vec<u64>>);

struct TxnTable {
    tref: TableRef,
    version: Arc<dyn TxnVersion>,
    ops: Vec<DeltaOp>,
    /// Row ids this transaction updated or deleted (inserts excluded):
    /// the first-committer-wins footprint.
    write_set: HashSet<u64>,
    /// Read-own-writes cache: the BEGIN-time version with `ops` applied.
    /// Materialized lazily by the first read after a write (staging only
    /// records ops), so write-only transactions — every autocommit DML
    /// statement — never copy the table. Staging rolls an existing
    /// overlay forward incrementally and drops it on a failed roll (the
    /// next read rebuilds from `version` + `ops`).
    overlay: Mutex<Option<Overlay>>,
}

impl TxnTable {
    /// The BEGIN-time version with every staged op applied.
    fn materialize_overlay(&self) -> Result<Overlay> {
        let n = self.version.row_count();
        let mut rows: Vec<Row> = (0..n).map(|p| self.version.row(p)).collect();
        let mut ids: Vec<u64> = (0..n).map(|p| self.version.row_id(p)).collect();
        apply_ops_to_rows(
            &mut rows,
            &mut ids,
            &self.ops,
            self.tref.table.row_type().arity(),
        )?;
        Ok((Arc::new(rows), Arc::new(ids)))
    }
}

/// A transaction handle: BEGIN-time versions of every MVCC-capable table,
/// a staged write set, and the commit/rollback protocol. Dropping an
/// uncommitted transaction is a rollback.
pub struct Transaction {
    id: u64,
    begin_ts: u64,
    mgr: Arc<TxnManager>,
    tables: HashMap<String, TxnTable>,
    finished: bool,
}

impl Transaction {
    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn begin_ts(&self) -> u64 {
        self.begin_ts
    }

    /// Qualified names of tables with staged writes.
    pub fn written_tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tables
            .iter()
            .filter(|(_, t)| !t.ops.is_empty())
            .map(|(n, _)| n.clone())
            .collect();
        names.sort();
        names
    }

    /// Whether `qualified` was captured at BEGIN (i.e. is MVCC-capable).
    pub fn covers(&self, qualified: &str) -> bool {
        self.tables.contains_key(qualified)
    }

    /// The view statements should read for `qualified`: the BEGIN
    /// version, or the overlay once this transaction wrote the table.
    /// The first read after a write materializes the overlay (version +
    /// staged ops) and caches it for the rest of the transaction.
    pub fn read_view(&self, qualified: &str) -> Option<ReadView> {
        let t = self.tables.get(qualified)?;
        let mut overlay = t.overlay.lock();
        if overlay.is_none() && !t.ops.is_empty() {
            // Staged ops were built against this very version chain, so
            // materialization cannot fail short of an internal bug — in
            // which case serving the (write-free) BEGIN version is the
            // safe degradation.
            *overlay = t.materialize_overlay().ok();
        }
        Some(match &*overlay {
            Some((rows, ids)) => ReadView::Rows {
                rows: Arc::clone(rows),
                ids: Arc::clone(ids),
            },
            None => ReadView::Version(Arc::clone(&t.version)),
        })
    }

    /// A [`Table`] serving [`Transaction::read_view`], for substituting
    /// into scans of `qualified` while this transaction is open.
    pub fn snapshot_table(&self, qualified: &str) -> Option<Arc<SnapshotTable>> {
        let t = self.tables.get(qualified)?;
        let view = self.read_view(qualified)?;
        Some(SnapshotTable::new(t.tref.table.row_type(), view))
    }

    /// Stages `ops` against `qualified`, recording updated/deleted row
    /// ids in the conflict footprint. O(|ops|): the read-own-writes
    /// overlay is only rolled forward if a read already materialized it;
    /// otherwise it stays unmaterialized and the first later read builds
    /// it — a write-only (autocommit) transaction never copies the table.
    pub fn stage(&mut self, qualified: &str, ops: Vec<DeltaOp>) -> Result<usize> {
        if ops.is_empty() {
            return Ok(0);
        }
        let t = self.tables.get_mut(qualified).ok_or_else(|| {
            CalciteError::unsupported(format!(
                "table '{qualified}' does not support transactional writes"
            ))
        })?;
        let arity = t.tref.table.row_type().arity();
        for op in &ops {
            if let DeltaOp::Insert { row, .. } | DeltaOp::Update { row, .. } = op {
                if row.len() != arity {
                    return Err(CalciteError::execution(format!(
                        "write arity mismatch: row has {} values, table has {arity} columns",
                        row.len()
                    )));
                }
            }
        }
        let overlay = t.overlay.get_mut();
        if let Some((rows, ids)) = overlay {
            let rolled = apply_ops_to_rows(Arc::make_mut(rows), Arc::make_mut(ids), &ops, arity);
            if let Err(e) = rolled {
                // A half-applied roll is unusable; drop it so the next
                // read rebuilds from the version + the ops that did land.
                *overlay = None;
                return Err(e);
            }
        }
        for op in &ops {
            if op.conflicts() {
                t.write_set.insert(op.row_id());
            }
        }
        let applied = ops.len();
        t.ops.extend(ops);
        Ok(applied)
    }

    /// Commits: WAL-logs the transaction, runs first-committer-wins, and
    /// applies the staged deltas to the shared tables. Returns the commit
    /// timestamp. A conflict aborts with a retryable error; either way
    /// the transaction is finished.
    pub fn commit(mut self) -> Result<u64> {
        self.finished = true;
        let staged: Vec<(TableRef, Vec<DeltaOp>, HashSet<u64>)> = self
            .tables
            .drain()
            .filter(|(_, t)| !t.ops.is_empty())
            .map(|(_, t)| (t.tref, t.ops, t.write_set))
            .collect();
        let mgr = Arc::clone(&self.mgr);
        mgr.commit(self.id, self.begin_ts, staged)
    }

    /// Abandons every staged write. Nothing was shared or logged, so this
    /// only releases the snapshot.
    pub fn rollback(mut self) {
        self.finished = true;
        self.mgr.end(self.id);
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        if !self.finished {
            self.mgr.end(self.id);
        }
    }
}

// ---------------------------------------------------------------------
// Manager
// ---------------------------------------------------------------------

/// A hook invoked inside COMMIT, after the staged deltas have been
/// applied to the shared tables but while the commit lock is still held
/// — the single choke point every committed change (autocommit and
/// explicit COMMIT alike) flows through. Incremental view maintenance
/// registers here so view and base tables advance atomically with
/// respect to snapshot capture: a BEGIN (which also takes the commit
/// lock) sees either no effect of a commit or all of it, views included.
///
/// Observers must not call back into the manager (the commit lock is
/// held) and must not fail the commit — it is already durable; an
/// observer that cannot keep up records that fact on its own state (e.g.
/// marking a view stale) instead of erroring.
pub trait CommitObserver: Send + Sync {
    /// `changes`: qualified table name plus the committed ops, one entry
    /// per written table, in apply order.
    fn on_commit(&self, changes: &[(String, &[DeltaOp])]);
}

struct CommitFootprint {
    commit_ts: u64,
    /// Qualified table name → row ids updated/deleted.
    writes: Vec<(String, HashSet<u64>)>,
}

/// Issues begin/commit timestamps from one monotonic clock, tracks active
/// transactions, runs the first-committer-wins check, and owns the
/// optional WAL. One manager lives on each [`crate::catalog::Catalog`]
/// and is shared by every connection over it.
#[derive(Default)]
pub struct TxnManager {
    clock: AtomicU64,
    ids: AtomicU64,
    /// Serializes the validate→log→apply window of COMMIT.
    commit_lock: Mutex<()>,
    /// Active transaction id → begin timestamp.
    active: Mutex<BTreeMap<u64, u64>>,
    /// Footprints of committed writers, kept only while some active
    /// transaction could still conflict with them.
    history: Mutex<Vec<CommitFootprint>>,
    wal: Mutex<Option<WalWriter>>,
    /// Post-apply commit hooks (incremental view maintenance). Invoked
    /// under the commit lock; registered once at catalog construction.
    observers: Mutex<Vec<Arc<dyn CommitObserver>>>,
}

impl TxnManager {
    pub fn new() -> TxnManager {
        TxnManager::default()
    }

    /// Attaches (or replaces) the write-ahead log. Commits from this
    /// point on are logged; recovery is [`crate::wal::replay`].
    pub fn attach_wal(&self, writer: WalWriter) {
        *self.wal.lock() = Some(writer);
    }

    /// Detaches and returns the WAL writer, if any.
    pub fn detach_wal(&self) -> Option<WalWriter> {
        self.wal.lock().take()
    }

    /// Registers a [`CommitObserver`] invoked after every commit's
    /// deltas are applied, still under the commit lock.
    pub fn register_observer(&self, obs: Arc<dyn CommitObserver>) {
        self.observers.lock().push(obs);
    }

    /// Runs `f` while holding the commit lock, so no transaction can
    /// commit (and no BEGIN can capture a snapshot) during it. Used by
    /// operations that must observe or replace multi-table state
    /// atomically with respect to commits — materialized-view creation
    /// and REFRESH. `f` must not commit or begin transactions itself.
    pub fn with_commit_lock<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.commit_lock.lock();
        f()
    }

    /// Advances the transaction-id and timestamp clocks past values an
    /// earlier incarnation already used. Call after WAL recovery with the
    /// [`crate::wal::ReplayReport`] maxima before attaching a writer to
    /// the same log, so continued commits never reuse an id or commit
    /// timestamp already present in the file.
    pub fn seed_counters(&self, max_txn_id: u64, max_commit_ts: u64) {
        self.ids.fetch_max(max_txn_id, Ordering::SeqCst);
        self.clock.fetch_max(max_commit_ts, Ordering::SeqCst);
    }

    /// Active transaction count (diagnostics).
    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }

    /// Begins a transaction, eagerly capturing a version of every
    /// MVCC-capable table in `tables` — the snapshot a statement at any
    /// later point in the transaction will read.
    pub fn begin(self: &Arc<Self>, tables: &[TableRef]) -> Transaction {
        let id = self.ids.fetch_add(1, Ordering::SeqCst) + 1;
        // Timestamp assignment and version capture happen under the
        // commit lock: COMMIT applies its deltas table-by-table while
        // holding it, so capturing outside could snapshot table A
        // post-commit but table B pre-commit — a half-applied committed
        // transaction, which snapshot isolation forbids. Under the lock,
        // a commit is either entirely before this begin (all its deltas
        // visible) or entirely after (none visible), and begin_ts orders
        // consistently with commit_ts either way.
        let _commit_guard = self.commit_lock.lock();
        let begin_ts = self.clock.fetch_add(1, Ordering::SeqCst) + 1;
        self.active.lock().insert(id, begin_ts);
        let mut captured = HashMap::new();
        for tref in tables {
            if let Some(version) = tref.table.txn_snapshot() {
                captured.insert(
                    tref.qualified_name(),
                    TxnTable {
                        tref: tref.clone(),
                        version,
                        ops: vec![],
                        write_set: HashSet::new(),
                        overlay: Mutex::new(None),
                    },
                );
            }
        }
        Transaction {
            id,
            begin_ts,
            mgr: Arc::clone(self),
            tables: captured,
            finished: false,
        }
    }

    fn commit(
        &self,
        id: u64,
        begin_ts: u64,
        staged: Vec<(TableRef, Vec<DeltaOp>, HashSet<u64>)>,
    ) -> Result<u64> {
        let _commit_guard = self.commit_lock.lock();
        if staged.is_empty() {
            // Read-only: nothing to validate, log or apply.
            let commit_ts = self.clock.fetch_add(1, Ordering::SeqCst) + 1;
            self.end(id);
            return Ok(commit_ts);
        }

        // 1. Log the transaction body. A WAL failure (including injected
        // crashes) aborts the commit before anything is shared.
        let mut wal = self.wal.lock();
        if let Some(w) = wal.as_mut() {
            let logged = (|| -> Result<()> {
                w.append(&WalRecord::Begin { txn: id })?;
                for (tref, ops, _) in &staged {
                    let table = tref.qualified_name();
                    for op in ops {
                        w.append(&WalRecord::from_op(id, &table, op))?;
                    }
                }
                Ok(())
            })();
            if let Err(e) = logged {
                drop(wal);
                self.end(id);
                return Err(e);
            }
        }

        // 2. First-committer-wins: anyone who committed after we began
        // and touched a row we updated/deleted wins; we abort.
        let conflict = {
            let history = self.history.lock();
            history
                .iter()
                .filter(|rec| rec.commit_ts > begin_ts)
                .find_map(|rec| {
                    rec.writes.iter().find_map(|(table, rows)| {
                        staged
                            .iter()
                            .find(|(tref, _, ws)| {
                                tref.qualified_name() == *table && !ws.is_disjoint(rows)
                            })
                            .map(|_| table.clone())
                    })
                })
        };
        if let Some(table) = conflict {
            if let Some(w) = wal.as_mut() {
                let _ = w.append(&WalRecord::Abort { txn: id });
                let _ = w.sync();
            }
            drop(wal);
            self.end(id);
            return Err(CalciteError::txn_conflict(format!(
                "concurrent transaction already updated rows of '{table}'"
            )));
        }

        // 3. Commit point: the Commit record is durable before any table
        // state changes.
        let commit_ts = self.clock.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(w) = wal.as_mut() {
            let durable = w
                .append(&WalRecord::Commit { txn: id, commit_ts })
                .and_then(|()| w.sync());
            if let Err(e) = durable {
                drop(wal);
                self.end(id);
                return Err(e);
            }
        }
        drop(wal);

        // 4. Apply onto the *current* shared versions (not the snapshot):
        // non-conflicting concurrent commits compose.
        for (tref, ops, _) in &staged {
            tref.table.apply_delta(ops)?;
        }

        // 4b. Change feed: propagate the committed deltas to observers
        // (incremental view maintenance) while the commit lock is still
        // held, so base tables and maintained views advance atomically
        // with respect to snapshot capture.
        {
            let observers = self.observers.lock();
            if !observers.is_empty() {
                let changes: Vec<(String, &[DeltaOp])> = staged
                    .iter()
                    .map(|(tref, ops, _)| (tref.qualified_name(), ops.as_slice()))
                    .collect();
                for obs in observers.iter() {
                    obs.on_commit(&changes);
                }
            }
        }

        // 5. Publish the footprint for later committers' FCW checks.
        self.history.lock().push(CommitFootprint {
            commit_ts,
            writes: staged
                .into_iter()
                .map(|(tref, _, ws)| (tref.qualified_name(), ws))
                .collect(),
        });
        self.end(id);
        Ok(commit_ts)
    }

    /// Removes `id` from the active set and prunes history no remaining
    /// transaction can conflict with.
    fn end(&self, id: u64) {
        let mut active = self.active.lock();
        active.remove(&id);
        let min_begin = active.values().min().copied();
        drop(active);
        let mut history = self.history.lock();
        match min_begin {
            // A footprint only matters to transactions that began before
            // it committed; the oldest active begin bounds that.
            Some(m) => history.retain(|rec| rec.commit_ts > m),
            None => history.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::MemTable;
    use crate::datum::Datum;
    use crate::types::{RowTypeBuilder, TypeKind};

    fn table() -> Arc<MemTable> {
        MemTable::new(
            RowTypeBuilder::new()
                .add_not_null("id", TypeKind::Integer)
                .add("v", TypeKind::Integer)
                .build(),
            (0..4)
                .map(|i| vec![Datum::Int(i), Datum::Int(10 * i)])
                .collect(),
        )
    }

    fn tref(t: &Arc<MemTable>) -> TableRef {
        TableRef::new("s", "t", t.clone() as Arc<dyn Table>)
    }

    #[test]
    fn apply_ops_remap_and_reinserted() {
        let mut rows: Vec<Row> = (0..4).map(|i| vec![Datum::Int(i)]).collect();
        let mut ids: Vec<u64> = (0..4).collect();
        let out = apply_ops_to_rows(
            &mut rows,
            &mut ids,
            &[
                DeltaOp::Delete { row_id: 1 },
                DeltaOp::Update {
                    row_id: 2,
                    row: vec![Datum::Int(99)],
                },
                DeltaOp::Insert {
                    row_id: 7,
                    row: vec![Datum::Int(70)],
                },
            ],
            1,
        )
        .unwrap();
        assert_eq!(ids, vec![0, 2, 3, 7]);
        assert_eq!(
            rows,
            vec![
                vec![Datum::Int(0)],
                vec![Datum::Int(99)],
                vec![Datum::Int(3)],
                vec![Datum::Int(70)],
            ]
        );
        assert_eq!(out.remap, vec![Some(0), None, Some(1), Some(2)]);
        assert_eq!(out.reinserted, vec![1, 3]);
        assert_eq!(out.max_inserted_id, Some(7));
    }

    #[test]
    fn apply_ops_update_then_delete_same_row() {
        let mut rows: Vec<Row> = vec![vec![Datum::Int(1)]];
        let mut ids: Vec<u64> = vec![0];
        apply_ops_to_rows(
            &mut rows,
            &mut ids,
            &[
                DeltaOp::Update {
                    row_id: 0,
                    row: vec![Datum::Int(2)],
                },
                DeltaOp::Delete { row_id: 0 },
            ],
            1,
        )
        .unwrap();
        assert!(rows.is_empty());
        assert!(ids.is_empty());
    }

    #[test]
    fn snapshot_pins_begin_state_and_overlay_reads_own_writes() {
        let t = table();
        let mgr = Arc::new(TxnManager::new());
        let mut txn = mgr.begin(&[tref(&t)]);
        // Another writer commits directly.
        t.apply_delta(&[DeltaOp::Update {
            row_id: 0,
            row: vec![Datum::Int(0), Datum::Int(-1)],
        }])
        .unwrap();
        let view = txn.read_view("s.t").unwrap();
        assert_eq!(view.row(0)[1], Datum::Int(0)); // pre-commit value

        // Own write becomes visible through the overlay.
        txn.stage(
            "s.t",
            vec![DeltaOp::Update {
                row_id: 3,
                row: vec![Datum::Int(3), Datum::Int(999)],
            }],
        )
        .unwrap();
        let view = txn.read_view("s.t").unwrap();
        assert_eq!(view.row(3)[1], Datum::Int(999));
        assert_eq!(view.row(0)[1], Datum::Int(0)); // still the snapshot
        txn.rollback();
        // Rollback left the live table with only the direct write.
        assert_eq!(t.rows()[0][1], Datum::Int(-1));
        assert_eq!(t.rows()[3][1], Datum::Int(30));
    }

    #[test]
    fn first_committer_wins() {
        let t = table();
        let mgr = Arc::new(TxnManager::new());
        let mut a = mgr.begin(&[tref(&t)]);
        let mut b = mgr.begin(&[tref(&t)]);
        let upd = |v: i64| DeltaOp::Update {
            row_id: 2,
            row: vec![Datum::Int(2), Datum::Int(v)],
        };
        a.stage("s.t", vec![upd(100)]).unwrap();
        b.stage("s.t", vec![upd(200)]).unwrap();
        a.commit().unwrap();
        let err = b.commit().unwrap_err();
        assert!(err.is_retryable(), "FCW loser must be retryable: {err}");
        assert_eq!(t.rows()[2][1], Datum::Int(100));
        assert_eq!(mgr.active_count(), 0);
    }

    #[test]
    fn disjoint_writers_both_commit() {
        let t = table();
        let mgr = Arc::new(TxnManager::new());
        let mut a = mgr.begin(&[tref(&t)]);
        let mut b = mgr.begin(&[tref(&t)]);
        a.stage(
            "s.t",
            vec![DeltaOp::Update {
                row_id: 0,
                row: vec![Datum::Int(0), Datum::Int(111)],
            }],
        )
        .unwrap();
        b.stage("s.t", vec![DeltaOp::Delete { row_id: 3 }]).unwrap();
        a.commit().unwrap();
        b.commit().unwrap();
        let rows = t.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][1], Datum::Int(111));
        assert!(rows.iter().all(|r| r[0] != Datum::Int(3)));
    }

    #[test]
    fn seed_counters_skips_replayed_ids_and_timestamps() {
        let mgr = Arc::new(TxnManager::new());
        mgr.seed_counters(41, 99);
        let txn = mgr.begin(&[]);
        assert_eq!(txn.id(), 42);
        assert!(txn.begin_ts() > 99);
        // Seeding never moves the clocks backwards.
        mgr.seed_counters(1, 1);
        let txn2 = mgr.begin(&[]);
        assert_eq!(txn2.id(), 43);
    }

    /// BEGIN must observe a multi-table commit all-or-nothing: a snapshot
    /// captured while another thread commits to two tables may never pair
    /// table A's post-commit version with table B's pre-commit one.
    #[test]
    fn begin_never_sees_half_applied_multi_table_commit() {
        let a = table();
        let b = table();
        let mgr = Arc::new(TxnManager::new());
        let refs = [
            TableRef::new("s", "a", a.clone() as Arc<dyn Table>),
            TableRef::new("s", "b", b.clone() as Arc<dyn Table>),
        ];
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let mgr = Arc::clone(&mgr);
            let refs = refs.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // Each commit sets row 0 of BOTH tables to the same value.
                for i in 1..500i64 {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let mut txn = mgr.begin(&refs);
                    for t in ["s.a", "s.b"] {
                        txn.stage(
                            t,
                            vec![DeltaOp::Update {
                                row_id: 0,
                                row: vec![Datum::Int(0), Datum::Int(i)],
                            }],
                        )
                        .unwrap();
                    }
                    txn.commit().unwrap();
                }
            })
        };
        for _ in 0..500 {
            let txn = mgr.begin(&refs);
            let va = txn.read_view("s.a").unwrap().row(0)[1].clone();
            let vb = txn.read_view("s.b").unwrap().row(0)[1].clone();
            assert_eq!(va, vb, "snapshot saw a half-applied commit");
            txn.rollback();
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn inserts_never_conflict() {
        let t = table();
        let mgr = Arc::new(TxnManager::new());
        let mut a = mgr.begin(&[tref(&t)]);
        let mut b = mgr.begin(&[tref(&t)]);
        let id_a = t.reserve_row_ids(1).unwrap();
        let id_b = t.reserve_row_ids(1).unwrap();
        a.stage(
            "s.t",
            vec![DeltaOp::Insert {
                row_id: id_a,
                row: vec![Datum::Int(100), Datum::Int(0)],
            }],
        )
        .unwrap();
        b.stage(
            "s.t",
            vec![DeltaOp::Insert {
                row_id: id_b,
                row: vec![Datum::Int(101), Datum::Int(0)],
            }],
        )
        .unwrap();
        a.commit().unwrap();
        b.commit().unwrap();
        assert_eq!(t.len(), 6);
    }
}
