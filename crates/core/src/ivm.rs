//! Incremental view maintenance (IVM): materialized views kept current by
//! propagating committed deltas through a compiled *delta plan* instead of
//! recomputing from scratch — O(|delta|) work per commit, near-O(1) reads
//! through the §6 view-substitution rewrite in [`crate::mv`].
//!
//! The design follows the classic signed-multiset (Z-set) formulation that
//! also underlies `crates/streams`' incremental aggregation: a change is a
//! bag of `(row, weight)` pairs with `+1` for an insert and `-1` for a
//! delete (an UPDATE is `-old +new`). Every relational operator has a
//! maintenance rule mapping an input delta to an output delta:
//!
//! * `Filter` keeps the rows passing the predicate, weights untouched.
//! * `Project` maps each row through the projection expressions.
//! * Inner `Join` uses the bilinear decomposition
//!   `Δ(L ⋈ R) = ΔL ⋈ R  ∪  L' ⋈ ΔR` — each side keeps a hash-bucketed
//!   multiset of the rows seen so far, so a delta on one side probes the
//!   other side's state in O(|delta|) (deltas arrive one leaf at a time,
//!   so exactly one side of any join changes per pass).
//! * `Aggregate` keeps per-group accumulators with *group-delta counting*:
//!   each group tracks its net row multiplicity, and a group whose count
//!   reaches zero retracts its output row entirely (the empty-group row of
//!   a global aggregate is never retracted, matching the executor, which
//!   always emits one row for `SELECT COUNT(*) ...` over an empty input).
//!   SUM/COUNT/AVG subtract exactly; MIN/MAX keep an ordered multiset of
//!   values so deleting the current extreme reveals the runner-up.
//!
//! Shapes without an exact, invertible rule — DISTINCT aggregates, SUM/AVG
//! over floating-point columns (subtraction is not an exact inverse),
//! outer/semi/anti joins, window functions, set operations, OFFSET/FETCH —
//! compile to a *refresh-only* view: reads fall back to the base plan once
//! a base table changes, until `REFRESH MATERIALIZED VIEW` recomputes it.
//!
//! Freshness is tracked with per-table data versions
//! ([`crate::catalog::Table::data_version`]): after every successful
//! maintenance pass the view records its base tables' versions, and
//! substitution asks [`MaintainedView::is_fresh`] — a mismatch (crash
//! recovery replayed the WAL, a write bypassed the commit feed, or
//! maintenance itself failed) makes the view stale rather than wrong.

use crate::catalog::TableRef;
use crate::datum::{Datum, Row};
use crate::error::{CalciteError, Result};
use crate::rel::{AggCall, AggFunc, JoinKind, Rel, RelOp};
use crate::rex::{Op, RexNode};
use crate::stats::StatsRegistry;
use crate::txn::{CommitObserver, DeltaOp};
use crate::types::TypeKind;
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A signed delta: rows with multiplicities (+insert / -delete).
pub type SignedDelta = Vec<(Row, i64)>;

/// Sums multiplicities per row, dropping zero entries. First-appearance
/// order is preserved so initial materialization is deterministic.
pub fn consolidate(delta: SignedDelta) -> SignedDelta {
    let mut order: Vec<Row> = vec![];
    let mut weights: HashMap<Row, i64> = HashMap::new();
    for (row, w) in delta {
        match weights.get_mut(&row) {
            Some(acc) => *acc += w,
            None => {
                weights.insert(row.clone(), w);
                order.push(row);
            }
        }
    }
    order
        .into_iter()
        .filter_map(|row| {
            let w = weights[&row];
            (w != 0).then_some((row, w))
        })
        .collect()
}

// ---------------------------------------------------------------------
// Delta accumulators: incremental, *invertible* forms of the executor's
// aggregate accumulators. `finish` must render byte-identically to the
// enumerable executor's `Acc::finish` for the supported argument types.
// ---------------------------------------------------------------------

#[derive(Clone)]
enum DeltaAcc {
    /// COUNT(*) (`arg` None) / COUNT(x) (skips NULLs).
    Count(i64),
    /// SUM over an INTEGER column: exact signed arithmetic. `nonnull`
    /// counts contributing rows so the SQL "SUM of no rows is NULL" rule
    /// survives deletions.
    SumInt { sum: i64, nonnull: i64 },
    /// MIN/MAX over any ordered type: multiset of non-null values, so
    /// retracting the current extreme exposes the runner-up.
    MinMax {
        map: BTreeMap<Datum, i64>,
        min: bool,
    },
    /// AVG over an INTEGER column: exact integer sum, floating division
    /// only at render time (matching `Acc::Avg`'s f64 result exactly for
    /// in-range integers).
    AvgInt { sum: i64, count: i64 },
}

impl DeltaAcc {
    fn apply(&mut self, v: Option<&Datum>, w: i64) -> Result<()> {
        let overflow = || CalciteError::execution("integer overflow in SUM");
        match self {
            DeltaAcc::Count(n) => match v {
                None => *n += w,
                Some(d) if !d.is_null() => *n += w,
                _ => {}
            },
            DeltaAcc::SumInt { sum, nonnull } => {
                if let Some(Datum::Int(x)) = v {
                    let add = x.checked_mul(w).ok_or_else(overflow)?;
                    *sum = sum.checked_add(add).ok_or_else(overflow)?;
                    *nonnull += w;
                }
            }
            DeltaAcc::MinMax { map, .. } => {
                if let Some(d) = v {
                    if !d.is_null() {
                        let entry = map.entry(d.clone()).or_insert(0);
                        *entry += w;
                        if *entry == 0 {
                            map.remove(d);
                        } else if *entry < 0 {
                            return Err(CalciteError::execution(
                                "view maintenance: negative MIN/MAX multiplicity",
                            ));
                        }
                    }
                }
            }
            DeltaAcc::AvgInt { sum, count } => {
                if let Some(Datum::Int(x)) = v {
                    let add = x.checked_mul(w).ok_or_else(overflow)?;
                    *sum = sum.checked_add(add).ok_or_else(overflow)?;
                    *count += w;
                }
            }
        }
        Ok(())
    }

    fn finish(&self) -> Datum {
        match self {
            DeltaAcc::Count(n) => Datum::Int(*n),
            DeltaAcc::SumInt { sum, nonnull } => {
                if *nonnull == 0 {
                    Datum::Null
                } else {
                    Datum::Int(*sum)
                }
            }
            DeltaAcc::MinMax { map, min } => {
                let extreme = if *min {
                    map.keys().next()
                } else {
                    map.keys().next_back()
                };
                extreme.cloned().unwrap_or(Datum::Null)
            }
            DeltaAcc::AvgInt { sum, count } => {
                if *count == 0 {
                    Datum::Null
                } else {
                    Datum::Double(*sum as f64 / *count as f64)
                }
            }
        }
    }
}

/// Compiled form of one aggregate call.
#[derive(Clone)]
struct AggSpec {
    func: AggFunc,
    arg: Option<usize>,
    min: bool,
}

impl AggSpec {
    fn fresh_acc(&self) -> DeltaAcc {
        match self.func {
            AggFunc::Count => DeltaAcc::Count(0),
            AggFunc::Sum => DeltaAcc::SumInt { sum: 0, nonnull: 0 },
            AggFunc::Min | AggFunc::Max => DeltaAcc::MinMax {
                map: BTreeMap::new(),
                min: self.min,
            },
            AggFunc::Avg => DeltaAcc::AvgInt { sum: 0, count: 0 },
        }
    }
}

/// Per-group maintenance state: the net input-row multiplicity (a group
/// retracts its output when this reaches zero) plus one accumulator per
/// aggregate call.
struct GroupState {
    weight: i64,
    accs: Vec<DeltaAcc>,
}

// ---------------------------------------------------------------------
// The delta plan: one maintenance node per relational operator.
// ---------------------------------------------------------------------

enum DeltaNode {
    /// A base-table scan: the feed point. `mirror` reconstructs full rows
    /// from row-id-keyed [`DeltaOp`]s (a delete op carries no row).
    Scan {
        leaf: usize,
        table: TableRef,
        mirror: HashMap<u64, Row>,
    },
    /// Literal rows: contribute once at initialization, never change.
    Values { leaf: usize, tuples: Vec<Row> },
    Filter {
        input: Box<DeltaNode>,
        condition: RexNode,
    },
    Project {
        input: Box<DeltaNode>,
        exprs: Vec<RexNode>,
    },
    /// Inner join. `*_state` bucket each side's accumulated rows by the
    /// equi-key extracted from the condition (empty key = one bucket);
    /// the full condition is always re-evaluated on the joined row, so
    /// non-equi conjuncts and NULL keys behave exactly like the executor.
    Join {
        left: Box<DeltaNode>,
        right: Box<DeltaNode>,
        condition: RexNode,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        left_state: HashMap<Vec<Datum>, Vec<(Row, i64)>>,
        right_state: HashMap<Vec<Datum>, Vec<(Row, i64)>>,
    },
    Aggregate {
        input: Box<DeltaNode>,
        group: Vec<usize>,
        aggs: Vec<AggSpec>,
        groups: HashMap<Vec<Datum>, GroupState>,
        /// Global (no GROUP BY): the single group always emits one row.
        global: bool,
    },
    /// Sort without OFFSET/FETCH: a materialized table is a bag, ordering
    /// is reimposed by whatever plan reads it, so deltas pass through.
    Passthrough { input: Box<DeltaNode> },
}

/// Adds `(row, w)` into a bucketed multiset, compacting zeros lazily.
fn bucket_add(state: &mut HashMap<Vec<Datum>, Vec<(Row, i64)>>, key: Vec<Datum>, row: Row, w: i64) {
    let bucket = state.entry(key).or_default();
    if let Some(slot) = bucket.iter_mut().find(|(r, _)| *r == row) {
        slot.1 += w;
        if slot.1 == 0 {
            bucket.retain(|(_, bw)| *bw != 0);
        }
    } else if w != 0 {
        bucket.push((row, w));
    }
}

impl DeltaNode {
    /// Propagates a delta arriving at leaf `leaf` up through this subtree.
    /// Returns `None` when the leaf is not below this node (the delta does
    /// not pass through), `Some(output delta)` otherwise.
    fn feed(&mut self, leaf: usize, delta: &SignedDelta) -> Result<Option<SignedDelta>> {
        match self {
            DeltaNode::Scan { leaf: id, .. } | DeltaNode::Values { leaf: id, .. } => {
                Ok((*id == leaf).then(|| delta.clone()))
            }
            DeltaNode::Passthrough { input } => input.feed(leaf, delta),
            DeltaNode::Filter { input, condition } => {
                let Some(d) = input.feed(leaf, delta)? else {
                    return Ok(None);
                };
                let mut out = vec![];
                for (row, w) in d {
                    if condition.eval(&row)? == Datum::Bool(true) {
                        out.push((row, w));
                    }
                }
                Ok(Some(out))
            }
            DeltaNode::Project { input, exprs } => {
                let Some(d) = input.feed(leaf, delta)? else {
                    return Ok(None);
                };
                let mut out = Vec::with_capacity(d.len());
                for (row, w) in d {
                    let projected: Result<Row> = exprs.iter().map(|e| e.eval(&row)).collect();
                    out.push((projected?, w));
                }
                Ok(Some(out))
            }
            DeltaNode::Join {
                left,
                right,
                condition,
                left_keys,
                right_keys,
                left_state,
                right_state,
            } => {
                // Leaf ids are unique, so the delta reaches at most one
                // side — the bilinear cross term never arises in one pass.
                let dl = left.feed(leaf, delta)?;
                let dr = right.feed(leaf, delta)?;
                let mut out = vec![];
                if let Some(dl) = dl {
                    for (lrow, lw) in &dl {
                        let key: Vec<Datum> = left_keys.iter().map(|i| lrow[*i].clone()).collect();
                        if let Some(bucket) = right_state.get(&key) {
                            for (rrow, rw) in bucket {
                                let mut joined = lrow.clone();
                                joined.extend(rrow.iter().cloned());
                                if condition.eval(&joined)? == Datum::Bool(true) {
                                    out.push((joined, lw * rw));
                                }
                            }
                        }
                    }
                    for (lrow, lw) in dl {
                        let key: Vec<Datum> = left_keys.iter().map(|i| lrow[*i].clone()).collect();
                        bucket_add(left_state, key, lrow, lw);
                    }
                    return Ok(Some(out));
                }
                if let Some(dr) = dr {
                    for (rrow, rw) in &dr {
                        let key: Vec<Datum> = right_keys.iter().map(|i| rrow[*i].clone()).collect();
                        if let Some(bucket) = left_state.get(&key) {
                            for (lrow, lw) in bucket {
                                let mut joined = lrow.clone();
                                joined.extend(rrow.iter().cloned());
                                if condition.eval(&joined)? == Datum::Bool(true) {
                                    out.push((joined, lw * rw));
                                }
                            }
                        }
                    }
                    for (rrow, rw) in dr {
                        let key: Vec<Datum> = right_keys.iter().map(|i| rrow[*i].clone()).collect();
                        bucket_add(right_state, key, rrow, rw);
                    }
                    return Ok(Some(out));
                }
                Ok(None)
            }
            DeltaNode::Aggregate {
                input,
                group,
                aggs,
                groups,
                global,
            } => {
                let Some(d) = input.feed(leaf, delta)? else {
                    return Ok(None);
                };
                // Bucket the input delta per group key, then emit
                // `-old +new` output rows per touched group.
                let mut touched: Vec<Vec<Datum>> = vec![];
                let mut per_key: HashMap<Vec<Datum>, SignedDelta> = HashMap::new();
                for (row, w) in d {
                    let key: Vec<Datum> = group.iter().map(|g| row[*g].clone()).collect();
                    match per_key.get_mut(&key) {
                        Some(v) => v.push((row, w)),
                        None => {
                            per_key.insert(key.clone(), vec![(row, w)]);
                            touched.push(key);
                        }
                    }
                }
                let mut out = vec![];
                for key in touched {
                    let rows = per_key.remove(&key).expect("touched key present");
                    let existed = groups.contains_key(&key);
                    if existed || *global {
                        let state = groups.get(&key).expect("group state present");
                        let mut old = key.clone();
                        old.extend(state.accs.iter().map(DeltaAcc::finish));
                        out.push((old, -1));
                    }
                    let state = groups.entry(key.clone()).or_insert_with(|| GroupState {
                        weight: 0,
                        accs: aggs.iter().map(AggSpec::fresh_acc).collect(),
                    });
                    for (row, w) in rows {
                        state.weight += w;
                        for (spec, acc) in aggs.iter().zip(state.accs.iter_mut()) {
                            acc.apply(spec.arg.map(|i| &row[i]), w)?;
                        }
                    }
                    if state.weight < 0 {
                        return Err(CalciteError::execution(
                            "view maintenance: negative group multiplicity",
                        ));
                    }
                    if state.weight > 0 || *global {
                        let mut new = key.clone();
                        new.extend(state.accs.iter().map(DeltaAcc::finish));
                        out.push((new, 1));
                    }
                    if state.weight == 0 && !*global {
                        groups.remove(&key);
                    }
                }
                Ok(Some(out))
            }
        }
    }

    /// The plan's output over *empty* inputs, registered into operator
    /// state as it bubbles up. A global aggregate is the non-linear case:
    /// its empty-input output is one row (`COUNT(*)` of nothing is 0, as
    /// the executor emits), which later deltas then retract-and-replace.
    /// Must be called exactly once, before any `feed`.
    fn prime(&mut self) -> Result<SignedDelta> {
        match self {
            DeltaNode::Scan { .. } | DeltaNode::Values { .. } => Ok(vec![]),
            DeltaNode::Passthrough { input } => input.prime(),
            DeltaNode::Filter { input, condition } => {
                let mut out = vec![];
                for (row, w) in input.prime()? {
                    if condition.eval(&row)? == Datum::Bool(true) {
                        out.push((row, w));
                    }
                }
                Ok(out)
            }
            DeltaNode::Project { input, exprs } => {
                let mut out = vec![];
                for (row, w) in input.prime()? {
                    let projected: Result<Row> = exprs.iter().map(|e| e.eval(&row)).collect();
                    out.push((projected?, w));
                }
                Ok(out)
            }
            DeltaNode::Join {
                left,
                right,
                condition,
                left_keys,
                right_keys,
                left_state,
                right_state,
            } => {
                let l0 = left.prime()?;
                let r0 = right.prime()?;
                let mut out = vec![];
                for (lrow, lw) in &l0 {
                    for (rrow, rw) in &r0 {
                        let mut joined = lrow.clone();
                        joined.extend(rrow.iter().cloned());
                        if condition.eval(&joined)? == Datum::Bool(true) {
                            out.push((joined, lw * rw));
                        }
                    }
                }
                for (lrow, lw) in l0 {
                    let key: Vec<Datum> = left_keys.iter().map(|i| lrow[*i].clone()).collect();
                    bucket_add(left_state, key, lrow, lw);
                }
                for (rrow, rw) in r0 {
                    let key: Vec<Datum> = right_keys.iter().map(|i| rrow[*i].clone()).collect();
                    bucket_add(right_state, key, rrow, rw);
                }
                Ok(out)
            }
            DeltaNode::Aggregate {
                input,
                group,
                aggs,
                groups,
                global,
            } => {
                for (row, w) in input.prime()? {
                    let key: Vec<Datum> = group.iter().map(|g| row[*g].clone()).collect();
                    let state = groups.entry(key).or_insert_with(|| GroupState {
                        weight: 0,
                        accs: aggs.iter().map(AggSpec::fresh_acc).collect(),
                    });
                    state.weight += w;
                    for (spec, acc) in aggs.iter().zip(state.accs.iter_mut()) {
                        acc.apply(spec.arg.map(|i| &row[i]), w)?;
                    }
                }
                groups.retain(|key, s| s.weight > 0 || (*global && key.is_empty()));
                let mut out = vec![];
                for (key, state) in groups.iter() {
                    let mut row = key.clone();
                    row.extend(state.accs.iter().map(DeltaAcc::finish));
                    out.push((row, 1));
                }
                Ok(out)
            }
        }
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<&'a DeltaNode>) {
        match self {
            DeltaNode::Scan { .. } | DeltaNode::Values { .. } => out.push(self),
            DeltaNode::Passthrough { input }
            | DeltaNode::Filter { input, .. }
            | DeltaNode::Project { input, .. }
            | DeltaNode::Aggregate { input, .. } => input.collect_leaves(out),
            DeltaNode::Join { left, right, .. } => {
                left.collect_leaves(out);
                right.collect_leaves(out);
            }
        }
    }

    fn scan_mut(&mut self, target: usize) -> Option<&mut DeltaNode> {
        match self {
            DeltaNode::Scan { leaf, .. } | DeltaNode::Values { leaf, .. } => {
                (*leaf == target).then_some(self)
            }
            DeltaNode::Passthrough { input }
            | DeltaNode::Filter { input, .. }
            | DeltaNode::Project { input, .. }
            | DeltaNode::Aggregate { input, .. } => input.scan_mut(target),
            DeltaNode::Join { left, right, .. } => {
                left.scan_mut(target).or_else(|| right.scan_mut(target))
            }
        }
    }
}

/// A compiled maintenance plan for one view definition.
pub struct DeltaPlan {
    root: DeltaNode,
    leaf_count: usize,
}

impl std::fmt::Debug for DeltaPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DeltaPlan({} leaves)", self.leaf_count)
    }
}

impl DeltaPlan {
    /// Compiles `plan` (a *logical* view definition) into a delta plan,
    /// or explains why the shape has no exact maintenance rule (the view
    /// then falls back to refresh-only).
    pub fn compile(plan: &Rel) -> Result<DeltaPlan> {
        let mut leaves = 0usize;
        let root = compile_node(plan, &mut leaves)?;
        Ok(DeltaPlan {
            root,
            leaf_count: leaves,
        })
    }

    /// The distinct base tables this plan reads (one entry per qualified
    /// name, even when a self-join scans a table twice).
    pub fn base_tables(&self) -> Vec<TableRef> {
        let mut leaves = vec![];
        self.root.collect_leaves(&mut leaves);
        let mut seen: Vec<TableRef> = vec![];
        for l in leaves {
            if let DeltaNode::Scan { table, .. } = l {
                if !seen
                    .iter()
                    .any(|t| t.qualified_name() == table.qualified_name())
                {
                    seen.push(table.clone());
                }
            }
        }
        seen
    }

    /// Initializes operator state by feeding every leaf's full current
    /// content as an all-`+1` delta (base tables via their MVCC snapshots,
    /// VALUES via their tuples) and returns the consolidated view rows.
    /// Call under the commit lock so no commit lands mid-initialization.
    pub fn init(&mut self) -> Result<Vec<Row>> {
        let mut total: SignedDelta = self.root.prime()?;
        for leaf in 0..self.leaf_count {
            let seed: SignedDelta = {
                let node = self
                    .root
                    .scan_mut(leaf)
                    .ok_or_else(|| CalciteError::internal("delta plan leaf missing"))?;
                match node {
                    DeltaNode::Values { tuples, .. } => {
                        tuples.iter().map(|t| (t.clone(), 1)).collect()
                    }
                    DeltaNode::Scan { table, mirror, .. } => {
                        let snap = table.table.txn_snapshot().ok_or_else(|| {
                            CalciteError::unsupported("base table does not support MVCC snapshots")
                        })?;
                        let mut seed = Vec::with_capacity(snap.row_count());
                        mirror.clear();
                        for pos in 0..snap.row_count() {
                            let row = snap.row(pos);
                            mirror.insert(snap.row_id(pos), row.clone());
                            seed.push((row, 1));
                        }
                        seed
                    }
                    _ => unreachable!("scan_mut returns leaves only"),
                }
            };
            if let Some(out) = self.root.feed(leaf, &seed)? {
                total.extend(out);
            }
        }
        let mut rows = vec![];
        for (row, w) in consolidate(total) {
            if w < 0 {
                return Err(CalciteError::internal(
                    "view initialization produced negative multiplicity",
                ));
            }
            for _ in 0..w {
                rows.push(row.clone());
            }
        }
        Ok(rows)
    }

    /// Translates one committed per-table op batch into the view's output
    /// delta: every leaf scanning `table` is fed in turn (a self-join has
    /// several), its row-id mirror reconstructing full before-images.
    fn propagate(&mut self, table: &str, ops: &[DeltaOp]) -> Result<SignedDelta> {
        let mut total = vec![];
        for leaf in 0..self.leaf_count {
            let signed: Option<SignedDelta> = {
                let node = self
                    .root
                    .scan_mut(leaf)
                    .ok_or_else(|| CalciteError::internal("delta plan leaf missing"))?;
                match node {
                    DeltaNode::Scan {
                        table: t, mirror, ..
                    } if t.qualified_name() == table => Some(signed_delta(mirror, ops)?),
                    _ => None,
                }
            };
            if let Some(signed) = signed {
                if let Some(out) = self.root.feed(leaf, &signed)? {
                    total.extend(out);
                }
            }
        }
        Ok(total)
    }
}

/// Reconstructs a signed row delta from row-id-keyed ops, updating the
/// leaf's id → row mirror as it goes.
fn signed_delta(mirror: &mut HashMap<u64, Row>, ops: &[DeltaOp]) -> Result<Vec<(Row, i64)>> {
    let missing =
        || CalciteError::execution("view maintenance: delta references an unknown row id");
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        match op {
            DeltaOp::Insert { row_id, row } => {
                if mirror.insert(*row_id, row.clone()).is_some() {
                    return Err(CalciteError::execution(
                        "view maintenance: duplicate row id in delta",
                    ));
                }
                out.push((row.clone(), 1));
            }
            DeltaOp::Update { row_id, row } => {
                let old = mirror.insert(*row_id, row.clone()).ok_or_else(missing)?;
                out.push((old, -1));
                out.push((row.clone(), 1));
            }
            DeltaOp::Delete { row_id } => {
                let old = mirror.remove(row_id).ok_or_else(missing)?;
                out.push((old, -1));
            }
        }
    }
    Ok(out)
}

fn compile_node(plan: &Rel, leaves: &mut usize) -> Result<DeltaNode> {
    let unsupported = |what: &str| Err(CalciteError::unsupported(what.to_string()));
    match &plan.op {
        RelOp::Scan { table } => {
            if table.table.is_stream() {
                return unsupported("streams cannot back a maintained view");
            }
            if table.table.txn_snapshot().is_none() {
                return unsupported("base table does not support MVCC snapshots");
            }
            if table.table.data_version().is_none() {
                return unsupported("base table does not report data versions");
            }
            let leaf = *leaves;
            *leaves += 1;
            Ok(DeltaNode::Scan {
                leaf,
                table: table.clone(),
                mirror: HashMap::new(),
            })
        }
        RelOp::Values { tuples, .. } => {
            let leaf = *leaves;
            *leaves += 1;
            Ok(DeltaNode::Values {
                leaf,
                tuples: tuples.clone(),
            })
        }
        RelOp::Filter { condition } => Ok(DeltaNode::Filter {
            input: Box::new(compile_node(plan.input(0), leaves)?),
            condition: condition.clone(),
        }),
        RelOp::Project { exprs, .. } => Ok(DeltaNode::Project {
            input: Box::new(compile_node(plan.input(0), leaves)?),
            exprs: exprs.clone(),
        }),
        RelOp::Join { kind, condition } => {
            if *kind != JoinKind::Inner {
                return unsupported("only inner joins have an exact maintenance rule");
            }
            let left = compile_node(plan.input(0), leaves)?;
            let right = compile_node(plan.input(1), leaves)?;
            let left_arity = plan.input(0).row_type().arity();
            let (left_keys, right_keys) = equi_keys(condition, left_arity);
            Ok(DeltaNode::Join {
                left: Box::new(left),
                right: Box::new(right),
                condition: condition.clone(),
                left_keys,
                right_keys,
                left_state: HashMap::new(),
                right_state: HashMap::new(),
            })
        }
        RelOp::Aggregate { group, aggs } => {
            let input_rt = plan.input(0).row_type().clone();
            let mut specs = vec![];
            for a in aggs {
                specs.push(compile_agg(a, &input_rt)?);
            }
            let input = compile_node(plan.input(0), leaves)?;
            let global = group.is_empty();
            let mut groups = HashMap::new();
            if global {
                // The executor pre-creates the single global group so an
                // empty input still yields one output row; mirror that.
                groups.insert(
                    vec![],
                    GroupState {
                        weight: 0,
                        accs: specs.iter().map(AggSpec::fresh_acc).collect(),
                    },
                );
            }
            Ok(DeltaNode::Aggregate {
                input: Box::new(input),
                group: group.clone(),
                aggs: specs,
                groups,
                global,
            })
        }
        RelOp::Sort { offset, fetch, .. } => {
            if offset.is_some() || fetch.is_some() {
                return unsupported("OFFSET/FETCH views are not incrementally maintainable");
            }
            Ok(DeltaNode::Passthrough {
                input: Box::new(compile_node(plan.input(0), leaves)?),
            })
        }
        RelOp::Window { .. } => unsupported("window functions are not incrementally maintainable"),
        RelOp::Union { .. } | RelOp::Intersect { .. } | RelOp::Minus { .. } => {
            unsupported("set operations are not incrementally maintainable")
        }
        RelOp::Delta => unsupported("streaming DELTA views are not incrementally maintainable"),
        RelOp::IndexSeek { .. } | RelOp::IndexJoin { .. } | RelOp::Convert { .. } => {
            unsupported("physical operators cannot appear in a view definition")
        }
    }
}

fn compile_agg(call: &AggCall, input: &crate::types::RowType) -> Result<AggSpec> {
    if call.distinct {
        return Err(CalciteError::unsupported(
            "DISTINCT aggregates are not incrementally maintainable",
        ));
    }
    let arg = call.args.first().copied();
    if matches!(call.func, AggFunc::Sum | AggFunc::Avg) {
        let idx =
            arg.ok_or_else(|| CalciteError::unsupported("SUM/AVG require an argument column"))?;
        if input.field(idx).ty.kind != TypeKind::Integer {
            // f64 subtraction is not an exact inverse of addition, so a
            // maintained SUM/AVG over doubles could drift from recompute.
            return Err(CalciteError::unsupported(
                "SUM/AVG maintenance requires an INTEGER argument",
            ));
        }
    }
    Ok(AggSpec {
        func: call.func,
        arg,
        min: call.func == AggFunc::Min,
    })
}

/// Splits the equi-join conjuncts (`$l = $r` across the arity boundary)
/// out of a join condition; everything else stays in the re-evaluated
/// residual. Empty keys mean one shared bucket (cartesian probing).
fn equi_keys(condition: &RexNode, left_arity: usize) -> (Vec<usize>, Vec<usize>) {
    let mut left_keys = vec![];
    let mut right_keys = vec![];
    for c in condition.conjuncts() {
        if let RexNode::Call {
            op: Op::Eq, args, ..
        } = &c
        {
            if let (Some(a), Some(b)) = (args[0].as_input_ref(), args[1].as_input_ref()) {
                let (l, r) = if a < left_arity && b >= left_arity {
                    (a, b - left_arity)
                } else if b < left_arity && a >= left_arity {
                    (b, a - left_arity)
                } else {
                    continue;
                };
                left_keys.push(l);
                right_keys.push(r);
            }
        }
    }
    (left_keys, right_keys)
}

/// The base tables a (refresh-only) view definition reads.
pub fn base_tables_of(plan: &Rel) -> Vec<TableRef> {
    fn walk(rel: &Rel, out: &mut Vec<TableRef>) {
        match &rel.op {
            RelOp::Scan { table }
            | RelOp::IndexSeek { table, .. }
            | RelOp::IndexJoin { table, .. }
                if !out
                    .iter()
                    .any(|t| t.qualified_name() == table.qualified_name()) =>
            {
                out.push(table.clone());
            }
            _ => {}
        }
        for i in &rel.inputs {
            walk(i, out);
        }
    }
    let mut out = vec![];
    walk(plan, &mut out);
    out
}

/// Captures the current data versions of every base table `plan` reads.
/// For refresh-only views: capture under the commit lock *before*
/// executing the defining query, then pass the result to
/// [`MaintainedView::new_refresh_only`] — a commit racing the execution
/// then leaves the view stale, never silently wrong.
pub fn base_versions(plan: &Rel) -> HashMap<String, Option<u64>> {
    record_versions(&base_tables_of(plan))
}

// ---------------------------------------------------------------------
// Maintained views and the commit-feed registry.
// ---------------------------------------------------------------------

struct ViewState {
    /// The compiled maintenance plan; `None` = refresh-only fallback.
    delta: Option<DeltaPlan>,
    /// View-storage bag: row value → stable row ids currently holding it.
    /// Lets maintenance address deletions through the `apply_delta` SPI
    /// (which keeps the view's secondary indexes maintained for free).
    row_ids: HashMap<Row, Vec<u64>>,
    /// Base-table data versions as of the last successful maintenance or
    /// refresh; a mismatch with the live versions means stale.
    versions: HashMap<String, Option<u64>>,
    /// A maintenance failure (overflow, storage tampering): the view is
    /// stale regardless of versions until the next REFRESH.
    broken: Option<String>,
    /// Why the shape compiled refresh-only (`None` = fully maintained).
    unsupported: Option<String>,
}

/// A materialized view registered with the commit feed. Substitution
/// consults [`MaintainedView::is_fresh`]; the [`IvmRegistry`] drives
/// maintenance from inside COMMIT, under the commit lock, so view and
/// base versions advance atomically.
pub struct MaintainedView {
    /// Qualified storage name, e.g. `mv.hot`.
    pub name: String,
    /// The backing table (always MVCC-capable storage).
    pub table: TableRef,
    /// Distinct base tables the definition reads.
    pub bases: Vec<TableRef>,
    /// The logical view definition (used by REFRESH and EXPLAIN).
    pub plan: Rel,
    state: Mutex<ViewState>,
}

impl MaintainedView {
    /// Wraps freshly initialized storage for a maintainable shape. The
    /// caller initialized `delta` (see [`DeltaPlan::init`]) and populated
    /// `table` with exactly the rows it returned, under the commit lock.
    pub fn new_maintained(
        name: impl Into<String>,
        table: TableRef,
        plan: Rel,
        delta: DeltaPlan,
    ) -> Arc<MaintainedView> {
        let bases = delta.base_tables();
        let versions = record_versions(&bases);
        let row_ids = storage_row_ids(&table);
        Arc::new(MaintainedView {
            name: name.into(),
            table,
            bases,
            plan,
            state: Mutex::new(ViewState {
                delta: Some(delta),
                row_ids,
                versions,
                broken: None,
                unsupported: None,
            }),
        })
    }

    /// Wraps storage for a shape without a maintenance rule: the view is
    /// fresh until a base table's version moves, then stale until
    /// REFRESH. `versions` are the base versions captured (under the
    /// commit lock) *before* the defining query ran, so a racing commit
    /// errs toward stale, never toward wrong.
    pub fn new_refresh_only(
        name: impl Into<String>,
        table: TableRef,
        plan: Rel,
        reason: impl Into<String>,
        versions: HashMap<String, Option<u64>>,
    ) -> Arc<MaintainedView> {
        let bases = base_tables_of(&plan);
        Arc::new(MaintainedView {
            name: name.into(),
            table,
            bases,
            plan,
            state: Mutex::new(ViewState {
                delta: None,
                row_ids: HashMap::new(),
                versions,
                broken: None,
                unsupported: Some(reason.into()),
            }),
        })
    }

    /// Whether deltas maintain this view (vs. refresh-only fallback).
    pub fn is_maintained(&self) -> bool {
        self.state.lock().delta.is_some()
    }

    /// Why the view compiled refresh-only, if it did.
    pub fn unsupported_reason(&self) -> Option<String> {
        self.state.lock().unsupported.clone()
    }

    /// Whether substitution may serve reads from this view right now.
    pub fn is_fresh(&self) -> bool {
        let state = self.state.lock();
        state.broken.is_none() && versions_match(&state.versions, &self.bases)
    }

    /// Why the view is stale (`None` when fresh).
    pub fn staleness(&self) -> Option<String> {
        let state = self.state.lock();
        if let Some(reason) = &state.broken {
            return Some(reason.clone());
        }
        if !versions_match(&state.versions, &self.bases) {
            return Some(match &state.unsupported {
                Some(r) => format!("base tables changed; not maintainable: {r}"),
                None => "base tables changed outside the commit feed".to_string(),
            });
        }
        None
    }

    /// Full recompute for a maintained view: re-initializes the delta
    /// plan from fresh snapshots and swaps the storage contents. Must run
    /// under the commit lock (see `TxnManager::with_commit_lock`).
    pub fn refresh_maintained(&self) -> Result<()> {
        let mut state = self.state.lock();
        let plan = state
            .delta
            .as_ref()
            .map(|_| DeltaPlan::compile(&self.plan))
            .transpose()?
            .ok_or_else(|| CalciteError::internal("refresh_maintained on refresh-only view"))?;
        let mut plan = plan;
        let rows = plan.init()?;
        let mem = self
            .table
            .table
            .as_mem_table()
            .ok_or_else(|| CalciteError::internal("view storage must be a MemTable"))?;
        mem.replace_all(rows);
        state.row_ids = storage_row_ids(&self.table);
        state.versions = record_versions(&self.bases);
        state.delta = Some(plan);
        state.broken = None;
        Ok(())
    }

    /// Completes a refresh-only recompute: the caller captured `versions`
    /// under the commit lock before executing the defining query and has
    /// already replaced the storage contents.
    pub fn complete_refresh(&self, versions: HashMap<String, Option<u64>>) {
        let mut state = self.state.lock();
        state.row_ids = storage_row_ids(&self.table);
        state.versions = versions;
        state.broken = None;
    }

    /// Captures the current base-table versions. Take the commit lock
    /// around this and the defining query's execution start for a
    /// stale-not-wrong ordering guarantee.
    pub fn capture_versions(&self) -> HashMap<String, Option<u64>> {
        record_versions(&self.bases)
    }

    /// Marks the view unusable until REFRESH.
    fn mark_broken(&self, reason: impl Into<String>) {
        self.state.lock().broken = Some(reason.into());
    }

    /// Like [`MaintainedView::is_fresh`], but treating the tables in
    /// `changed` as fresh if their recorded version is exactly one step
    /// behind live — i.e. the commit being observed is the *only* change
    /// since the last maintenance pass. (COMMIT applies each table's
    /// delta in a single `apply_delta` call, bumping its version once.)
    fn fresh_modulo_commit(&self, state: &ViewState, changed: &[&str]) -> bool {
        if state.broken.is_some() {
            return false;
        }
        self.bases.iter().all(|b| {
            let name = b.qualified_name();
            let live = b.table.data_version();
            let recorded = state.versions.get(&name).copied();
            if changed.iter().any(|c| *c == name) {
                match (recorded, live) {
                    (Some(Some(r)), Some(l)) => r + 1 == l,
                    _ => false,
                }
            } else {
                recorded == Some(live)
            }
        })
    }

    /// Applies a consolidated output delta to the view storage through
    /// `apply_delta`, keeping the row-id bag in sync. Returns the number
    /// of storage ops applied.
    fn apply_output(&self, state: &mut ViewState, out: SignedDelta) -> Result<usize> {
        let out = consolidate(out);
        if out.is_empty() {
            return Ok(0);
        }
        let mut ops = vec![];
        let mut inserts: Vec<(Row, i64)> = vec![];
        for (row, w) in out {
            if w < 0 {
                let ids = state.row_ids.get_mut(&row).ok_or_else(|| {
                    CalciteError::execution(
                        "view maintenance: retracting a row absent from storage",
                    )
                })?;
                for _ in 0..(-w) {
                    let id = ids.pop().ok_or_else(|| {
                        CalciteError::execution(
                            "view maintenance: retracting more copies than stored",
                        )
                    })?;
                    ops.push(DeltaOp::Delete { row_id: id });
                }
                if ids.is_empty() {
                    state.row_ids.remove(&row);
                }
            } else {
                inserts.push((row, w));
            }
        }
        let n: i64 = inserts.iter().map(|(_, w)| *w).sum();
        if n > 0 {
            let mut next = self.table.table.reserve_row_ids(n as usize)?;
            for (row, w) in inserts {
                for _ in 0..w {
                    ops.push(DeltaOp::Insert {
                        row_id: next,
                        row: row.clone(),
                    });
                    state.row_ids.entry(row.clone()).or_default().push(next);
                    next += 1;
                }
            }
        }
        let applied = self.table.table.apply_delta(&ops)?;
        Ok(applied)
    }
}

fn record_versions(bases: &[TableRef]) -> HashMap<String, Option<u64>> {
    bases
        .iter()
        .map(|b| (b.qualified_name(), b.table.data_version()))
        .collect()
}

fn versions_match(recorded: &HashMap<String, Option<u64>>, bases: &[TableRef]) -> bool {
    bases
        .iter()
        .all(|b| recorded.get(&b.qualified_name()).copied() == Some(b.table.data_version()))
}

fn storage_row_ids(table: &TableRef) -> HashMap<Row, Vec<u64>> {
    let mut map: HashMap<Row, Vec<u64>> = HashMap::new();
    if let Some(mem) = table.table.as_mem_table() {
        let rows = mem.rows();
        let ids = mem.row_ids();
        for (row, id) in rows.into_iter().zip(ids) {
            map.entry(row).or_default().push(id);
        }
    }
    map
}

/// The registry of maintained views over one catalog, subscribed to the
/// transaction manager's commit feed. `on_commit` runs inside COMMIT
/// while the commit lock is held: maintenance is atomic with the base
/// delta's publication, so a reader either sees both or neither.
pub struct IvmRegistry {
    views: RwLock<HashMap<String, Arc<MaintainedView>>>,
    stats: Arc<StatsRegistry>,
    /// The catalog's plan-cache generation: bumped whenever a view
    /// transitions fresh → stale so cached substituted plans re-plan.
    generation: Arc<AtomicU64>,
}

impl IvmRegistry {
    pub fn new(stats: Arc<StatsRegistry>, generation: Arc<AtomicU64>) -> IvmRegistry {
        IvmRegistry {
            views: RwLock::new(HashMap::new()),
            stats,
            generation,
        }
    }

    /// Registers a view under its qualified storage name.
    pub fn register(&self, view: Arc<MaintainedView>) {
        self.views
            .write()
            .insert(view.name.to_ascii_lowercase(), view);
    }

    /// Removes a view; returns whether it existed.
    pub fn unregister(&self, name: &str) -> bool {
        self.views
            .write()
            .remove(&name.to_ascii_lowercase())
            .is_some()
    }

    pub fn get(&self, name: &str) -> Option<Arc<MaintainedView>> {
        self.views.read().get(&name.to_ascii_lowercase()).cloned()
    }

    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.views.read().keys().cloned().collect();
        names.sort();
        names
    }

    fn bump(&self) {
        self.generation.fetch_add(1, Ordering::SeqCst);
    }

    /// Maintains one view against one commit's changes. Split out of
    /// `on_commit` so the borrow of the state lock stays scoped.
    fn maintain_view(&self, view: &MaintainedView, changes: &[(String, &[DeltaOp])]) {
        let changed_names: Vec<&str> = changes.iter().map(|(n, _)| n.as_str()).collect();
        // A commit writing the view's own storage didn't come from us
        // (maintenance applies deltas directly, not through a
        // transaction): the row-id bag is now untrustworthy.
        if changed_names
            .iter()
            .any(|n| n.eq_ignore_ascii_case(&view.name))
        {
            let was_fresh = view.is_fresh();
            view.mark_broken("materialized view storage was modified directly");
            if was_fresh {
                self.bump();
            }
            return;
        }
        let relevant: Vec<&(String, &[DeltaOp])> = changes
            .iter()
            .filter(|(n, _)| {
                view.bases
                    .iter()
                    .any(|b| b.qualified_name().eq_ignore_ascii_case(n))
            })
            .collect();
        if relevant.is_empty() {
            return;
        }
        let mut state = view.state.lock();
        if !view.fresh_modulo_commit(&state, &changed_names) {
            // Already stale before this commit; staying stale needs no
            // generation bump (it happened at the transition).
            return;
        }
        if state.delta.is_none() {
            // Refresh-only view transitioning fresh → stale: the base
            // versions moved with this commit, so `is_fresh` now reports
            // false on its own. Invalidate cached substituted plans.
            self.bump();
            return;
        }
        let mut output: SignedDelta = vec![];
        let mut failure: Option<String> = None;
        for (name, ops) in &relevant {
            let plan = state.delta.as_mut().expect("checked above");
            match plan.propagate(name, ops) {
                Ok(delta) => output.extend(delta),
                Err(e) => {
                    failure = Some(e.to_string());
                    break;
                }
            }
        }
        if failure.is_none() {
            let had_output = !output.is_empty();
            match view.apply_output(&mut state, output) {
                Ok(applied) => {
                    for (name, _) in &relevant {
                        state
                            .versions
                            .insert(name.clone(), table_version(&view.bases, name));
                    }
                    if had_output || applied > 0 {
                        // Content changed: stored stats no longer
                        // describe it. Retire the *view's* entry only —
                        // base-table stats are untouched by maintenance.
                        self.stats.retire(&view.name);
                    }
                }
                Err(e) => failure = Some(e.to_string()),
            }
        }
        if let Some(reason) = failure {
            state.broken = Some(format!("maintenance failed: {reason}"));
            drop(state);
            self.bump();
        }
    }
}

fn table_version(bases: &[TableRef], name: &str) -> Option<u64> {
    bases
        .iter()
        .find(|b| b.qualified_name().eq_ignore_ascii_case(name))
        .and_then(|b| b.table.data_version())
}

impl CommitObserver for IvmRegistry {
    fn on_commit(&self, changes: &[(String, &[DeltaOp])]) {
        let views: Vec<Arc<MaintainedView>> = self.views.read().values().cloned().collect();
        for view in views {
            self.maintain_view(&view, changes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::MemTable;
    use crate::rel;
    use crate::types::{RelType, RowTypeBuilder, TypeKind};

    fn sales() -> TableRef {
        let t = MemTable::new(
            RowTypeBuilder::new()
                .add_not_null("region", TypeKind::Integer)
                .add_not_null("units", TypeKind::Integer)
                .build(),
            vec![
                vec![Datum::Int(1), Datum::Int(10)],
                vec![Datum::Int(1), Datum::Int(20)],
                vec![Datum::Int(2), Datum::Int(5)],
            ],
        );
        TableRef::new("mart", "sales", t)
    }

    fn agg_plan(base: &TableRef) -> Rel {
        let scan = rel::scan(base.clone());
        let rt = scan.row_type().clone();
        rel::aggregate(
            scan,
            vec![0],
            vec![
                AggCall::count_star("c"),
                AggCall::new(AggFunc::Sum, vec![1], false, "s", &rt),
            ],
        )
    }

    fn feed_commit(plan: &mut DeltaPlan, table: &str, ops: &[DeltaOp]) -> SignedDelta {
        consolidate(plan.propagate(table, ops).unwrap())
    }

    #[test]
    fn init_matches_full_aggregate() {
        let base = sales();
        let mut plan = DeltaPlan::compile(&agg_plan(&base)).unwrap();
        let mut rows = plan.init().unwrap();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec![Datum::Int(1), Datum::Int(2), Datum::Int(30)],
                vec![Datum::Int(2), Datum::Int(1), Datum::Int(5)],
            ]
        );
    }

    #[test]
    fn insert_update_delete_maintain_groups() {
        let base = sales();
        let mut plan = DeltaPlan::compile(&agg_plan(&base)).unwrap();
        plan.init().unwrap();

        // Insert into group 2.
        let d = feed_commit(
            &mut plan,
            "mart.sales",
            &[DeltaOp::Insert {
                row_id: 3,
                row: vec![Datum::Int(2), Datum::Int(7)],
            }],
        );
        assert_eq!(
            d,
            vec![
                (vec![Datum::Int(2), Datum::Int(1), Datum::Int(5)], -1),
                (vec![Datum::Int(2), Datum::Int(2), Datum::Int(12)], 1),
            ]
        );

        // Update moves a row from group 1 to group 2.
        let d = feed_commit(
            &mut plan,
            "mart.sales",
            &[DeltaOp::Update {
                row_id: 0,
                row: vec![Datum::Int(2), Datum::Int(10)],
            }],
        );
        let as_map: HashMap<Row, i64> = d.into_iter().collect();
        assert_eq!(
            as_map[&vec![Datum::Int(1), Datum::Int(1), Datum::Int(20)]],
            1
        );
        assert_eq!(
            as_map[&vec![Datum::Int(2), Datum::Int(3), Datum::Int(22)]],
            1
        );

        // Deleting the last row of a group retracts the group entirely.
        let d = feed_commit(&mut plan, "mart.sales", &[DeltaOp::Delete { row_id: 1 }]);
        assert_eq!(
            d,
            vec![(vec![Datum::Int(1), Datum::Int(1), Datum::Int(20)], -1)]
        );
    }

    #[test]
    fn global_aggregate_group_is_never_retracted() {
        let base = sales();
        let scan = rel::scan(base.clone());
        let plan = rel::aggregate(scan, vec![], vec![AggCall::count_star("c")]);
        let mut dp = DeltaPlan::compile(&plan).unwrap();
        assert_eq!(dp.init().unwrap(), vec![vec![Datum::Int(3)]]);
        let d = feed_commit(
            &mut dp,
            "mart.sales",
            &[
                DeltaOp::Delete { row_id: 0 },
                DeltaOp::Delete { row_id: 1 },
                DeltaOp::Delete { row_id: 2 },
            ],
        );
        // COUNT drops to zero but the row stays (as the executor does).
        assert_eq!(d, vec![(vec![Datum::Int(3)], -1), (vec![Datum::Int(0)], 1)]);
    }

    #[test]
    fn min_retraction_reveals_runner_up() {
        let base = sales();
        let scan = rel::scan(base.clone());
        let rt = scan.row_type().clone();
        let plan = rel::aggregate(
            scan,
            vec![],
            vec![AggCall::new(AggFunc::Min, vec![1], false, "m", &rt)],
        );
        let mut dp = DeltaPlan::compile(&plan).unwrap();
        assert_eq!(dp.init().unwrap(), vec![vec![Datum::Int(5)]]);
        let d = feed_commit(&mut dp, "mart.sales", &[DeltaOp::Delete { row_id: 2 }]);
        assert_eq!(
            d,
            vec![(vec![Datum::Int(5)], -1), (vec![Datum::Int(10)], 1)]
        );
    }

    #[test]
    fn join_delta_probes_other_side() {
        let left = sales();
        let right = MemTable::new(
            RowTypeBuilder::new()
                .add_not_null("id", TypeKind::Integer)
                .add_not_null("name", TypeKind::Integer)
                .build(),
            vec![
                vec![Datum::Int(1), Datum::Int(100)],
                vec![Datum::Int(2), Datum::Int(200)],
            ],
        );
        let rref = TableRef::new("mart", "regions", right);
        let int = RelType::not_null(TypeKind::Integer);
        let cond = RexNode::input(0, int.clone()).eq(RexNode::input(2, int));
        let plan = rel::join(
            rel::scan(left.clone()),
            rel::scan(rref.clone()),
            JoinKind::Inner,
            cond,
        );
        let mut dp = DeltaPlan::compile(&plan).unwrap();
        assert_eq!(dp.init().unwrap().len(), 3);
        // New sale in region 2 joins the one matching region row.
        let d = feed_commit(
            &mut dp,
            "mart.sales",
            &[DeltaOp::Insert {
                row_id: 3,
                row: vec![Datum::Int(2), Datum::Int(9)],
            }],
        );
        assert_eq!(
            d,
            vec![(
                vec![Datum::Int(2), Datum::Int(9), Datum::Int(2), Datum::Int(200)],
                1
            )]
        );
        // Deleting a region retracts its joined sales.
        let d = feed_commit(&mut dp, "mart.regions", &[DeltaOp::Delete { row_id: 0 }]);
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|(_, w)| *w == -1));
    }

    #[test]
    fn unsupported_shapes_are_rejected_with_reason() {
        let base = sales();
        let scan = rel::scan(base.clone());
        let rt = scan.row_type().clone();
        let distinct = rel::aggregate(
            scan.clone(),
            vec![],
            vec![AggCall::new(AggFunc::Count, vec![1], true, "c", &rt)],
        );
        assert!(DeltaPlan::compile(&distinct)
            .unwrap_err()
            .to_string()
            .contains("DISTINCT"));
        let outer = rel::join(
            scan.clone(),
            rel::scan(base),
            JoinKind::Left,
            RexNode::true_lit(),
        );
        assert!(DeltaPlan::compile(&outer)
            .unwrap_err()
            .to_string()
            .contains("inner"));
        let limited = rel::sort_limit(scan, vec![], None, Some(1));
        assert!(DeltaPlan::compile(&limited)
            .unwrap_err()
            .to_string()
            .contains("OFFSET/FETCH"));
    }

    #[test]
    fn sum_over_double_is_refresh_only() {
        let t = MemTable::new(
            RowTypeBuilder::new()
                .add_not_null("k", TypeKind::Integer)
                .add_not_null("v", TypeKind::Double)
                .build(),
            vec![],
        );
        let scan = rel::scan(TableRef::new("s", "t", t));
        let rt = scan.row_type().clone();
        let plan = rel::aggregate(
            scan,
            vec![0],
            vec![AggCall::new(AggFunc::Sum, vec![1], false, "s", &rt)],
        );
        assert!(DeltaPlan::compile(&plan)
            .unwrap_err()
            .to_string()
            .contains("INTEGER"));
    }

    #[test]
    fn consolidate_cancels_and_orders() {
        let a = vec![Datum::Int(1)];
        let b = vec![Datum::Int(2)];
        let out = consolidate(vec![
            (a.clone(), 1),
            (b.clone(), 2),
            (a.clone(), -1),
            (b.clone(), -1),
        ]);
        assert_eq!(out, vec![(b, 1)]);
    }
}
