//! The relational type system: scalar and complex column types (including
//! the semi-structured `ARRAY`/`MAP`/`MULTISET` types of paper §7.1 and the
//! `GEOMETRY` type of §7.3) and row types.

use std::fmt;

/// The shape of a value, without nullability.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypeKind {
    Boolean,
    /// 64-bit signed integer; stands in for TINYINT..BIGINT.
    Integer,
    /// 64-bit IEEE float; stands in for FLOAT/REAL/DOUBLE/DECIMAL.
    Double,
    /// UTF-8 string; stands in for CHAR/VARCHAR of any length.
    Varchar,
    /// Days since the UNIX epoch.
    Date,
    /// Milliseconds since the UNIX epoch.
    Timestamp,
    /// A duration in milliseconds (SQL INTERVAL).
    Interval,
    /// Ordered collection of values of one element type (§7.1).
    Array(Box<RelType>),
    /// String-keyed map (§7.1); the MongoDB adapter exposes documents as a
    /// single `_MAP` column of this type.
    Map(Box<RelType>, Box<RelType>),
    /// Unordered collection with duplicates (§7.1).
    Multiset(Box<RelType>),
    /// OpenGIS geometry (§7.3). The concrete representation lives in
    /// `rcalcite-geo`; core only knows the type.
    Geometry,
    /// Top type: the value's type is not known statically. Used for
    /// dynamic `_MAP['k']` access before a CAST supplies a type.
    Any,
    /// The type of the NULL literal before coercion.
    Null,
}

impl TypeKind {
    /// Whether values of this kind are orderable with `<`/`>`.
    pub fn is_comparable(&self) -> bool {
        !matches!(self, TypeKind::Map(_, _) | TypeKind::Multiset(_))
    }

    /// Whether this is a numeric kind.
    pub fn is_numeric(&self) -> bool {
        matches!(self, TypeKind::Integer | TypeKind::Double)
    }

    pub fn is_temporal(&self) -> bool {
        matches!(
            self,
            TypeKind::Date | TypeKind::Timestamp | TypeKind::Interval
        )
    }
}

impl fmt::Display for TypeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeKind::Boolean => write!(f, "BOOLEAN"),
            TypeKind::Integer => write!(f, "INTEGER"),
            TypeKind::Double => write!(f, "DOUBLE"),
            TypeKind::Varchar => write!(f, "VARCHAR"),
            TypeKind::Date => write!(f, "DATE"),
            TypeKind::Timestamp => write!(f, "TIMESTAMP"),
            TypeKind::Interval => write!(f, "INTERVAL"),
            TypeKind::Array(e) => write!(f, "{} ARRAY", e.kind),
            TypeKind::Map(k, v) => write!(f, "MAP<{}, {}>", k.kind, v.kind),
            TypeKind::Multiset(e) => write!(f, "{} MULTISET", e.kind),
            TypeKind::Geometry => write!(f, "GEOMETRY"),
            TypeKind::Any => write!(f, "ANY"),
            TypeKind::Null => write!(f, "NULL"),
        }
    }
}

/// A column/expression type: kind plus nullability.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RelType {
    pub kind: TypeKind,
    pub nullable: bool,
}

impl RelType {
    pub fn new(kind: TypeKind, nullable: bool) -> Self {
        RelType { kind, nullable }
    }

    /// Non-nullable type of the given kind.
    pub fn not_null(kind: TypeKind) -> Self {
        RelType {
            kind,
            nullable: false,
        }
    }

    /// Nullable type of the given kind.
    pub fn nullable(kind: TypeKind) -> Self {
        RelType {
            kind,
            nullable: true,
        }
    }

    pub fn with_nullable(&self, nullable: bool) -> Self {
        RelType {
            kind: self.kind.clone(),
            nullable,
        }
    }

    /// The least restrictive type covering both inputs, used for set
    /// operations, CASE arms and comparison coercion. Returns `None` when
    /// the kinds are incompatible.
    pub fn least_restrictive(&self, other: &RelType) -> Option<RelType> {
        let nullable = self.nullable || other.nullable;
        if self.kind == other.kind {
            return Some(RelType::new(self.kind.clone(), nullable));
        }
        let kind = match (&self.kind, &other.kind) {
            (TypeKind::Null, k) | (k, TypeKind::Null) => k.clone(),
            (TypeKind::Any, k) | (k, TypeKind::Any) => k.clone(),
            (TypeKind::Integer, TypeKind::Double) | (TypeKind::Double, TypeKind::Integer) => {
                TypeKind::Double
            }
            // Timestamp +/- interval arithmetic stays temporal.
            (TypeKind::Timestamp, TypeKind::Interval)
            | (TypeKind::Interval, TypeKind::Timestamp) => TypeKind::Timestamp,
            _ => return None,
        };
        let nullable = nullable || self.kind == TypeKind::Null || other.kind == TypeKind::Null;
        Some(RelType::new(kind, nullable))
    }
}

impl fmt::Display for RelType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        if !self.nullable {
            write!(f, " NOT NULL")?;
        }
        Ok(())
    }
}

/// A named field of a row type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub ty: RelType,
}

impl Field {
    pub fn new(name: impl Into<String>, ty: RelType) -> Self {
        Field {
            name: name.into(),
            ty,
        }
    }
}

/// The type of a relational expression's output rows.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RowType {
    pub fields: Vec<Field>,
}

impl RowType {
    pub fn new(fields: Vec<Field>) -> Self {
        RowType { fields }
    }

    pub fn empty() -> Self {
        RowType { fields: vec![] }
    }

    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Case-insensitive lookup of a field index by name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
    }

    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    pub fn field_names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Concatenation of two row types, as produced by a join.
    pub fn join(&self, right: &RowType) -> RowType {
        let mut fields = self.fields.clone();
        fields.extend(right.fields.iter().cloned());
        RowType { fields }
    }

    /// Returns a copy with every field made nullable (used for the outer
    /// side of outer joins).
    pub fn nullified(&self) -> RowType {
        RowType {
            fields: self
                .fields
                .iter()
                .map(|f| Field::new(f.name.clone(), f.ty.with_nullable(true)))
                .collect(),
        }
    }
}

impl fmt::Display for RowType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, fld) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", fld.name, fld.ty)?;
        }
        write!(f, ")")
    }
}

/// Builder-style helper for assembling row types in tests and adapters.
pub struct RowTypeBuilder {
    fields: Vec<Field>,
}

impl RowTypeBuilder {
    pub fn new() -> Self {
        RowTypeBuilder { fields: vec![] }
    }

    pub fn add(mut self, name: impl Into<String>, kind: TypeKind) -> Self {
        self.fields.push(Field::new(name, RelType::nullable(kind)));
        self
    }

    pub fn add_not_null(mut self, name: impl Into<String>, kind: TypeKind) -> Self {
        self.fields.push(Field::new(name, RelType::not_null(kind)));
        self
    }

    pub fn build(self) -> RowType {
        RowType::new(self.fields)
    }
}

impl Default for RowTypeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_restrictive_numeric_widening() {
        let i = RelType::not_null(TypeKind::Integer);
        let d = RelType::nullable(TypeKind::Double);
        let lr = i.least_restrictive(&d).unwrap();
        assert_eq!(lr.kind, TypeKind::Double);
        assert!(lr.nullable);
    }

    #[test]
    fn least_restrictive_null_absorbs() {
        let n = RelType::nullable(TypeKind::Null);
        let v = RelType::not_null(TypeKind::Varchar);
        let lr = v.least_restrictive(&n).unwrap();
        assert_eq!(lr.kind, TypeKind::Varchar);
        assert!(lr.nullable);
    }

    #[test]
    fn least_restrictive_incompatible() {
        let b = RelType::not_null(TypeKind::Boolean);
        let v = RelType::not_null(TypeKind::Varchar);
        assert!(b.least_restrictive(&v).is_none());
    }

    #[test]
    fn timestamp_plus_interval() {
        let ts = RelType::not_null(TypeKind::Timestamp);
        let iv = RelType::not_null(TypeKind::Interval);
        assert_eq!(ts.least_restrictive(&iv).unwrap().kind, TypeKind::Timestamp);
    }

    #[test]
    fn row_type_lookup_is_case_insensitive() {
        let rt = RowTypeBuilder::new()
            .add("deptno", TypeKind::Integer)
            .add("sal", TypeKind::Double)
            .build();
        assert_eq!(rt.field_index("DEPTNO"), Some(0));
        assert_eq!(rt.field_index("Sal"), Some(1));
        assert_eq!(rt.field_index("nope"), None);
    }

    #[test]
    fn join_concatenates_fields() {
        let l = RowTypeBuilder::new().add("a", TypeKind::Integer).build();
        let r = RowTypeBuilder::new().add("b", TypeKind::Varchar).build();
        let j = l.join(&r);
        assert_eq!(j.arity(), 2);
        assert_eq!(j.field(1).name, "b");
    }

    #[test]
    fn nullified_makes_all_nullable() {
        let rt = RowTypeBuilder::new()
            .add_not_null("a", TypeKind::Integer)
            .build();
        assert!(!rt.field(0).ty.nullable);
        assert!(rt.nullified().field(0).ty.nullable);
    }

    #[test]
    fn display_forms() {
        let rt = RowTypeBuilder::new()
            .add_not_null("id", TypeKind::Integer)
            .build();
        assert_eq!(format!("{rt}"), "(id INTEGER NOT NULL)");
        let m = TypeKind::Map(
            Box::new(RelType::not_null(TypeKind::Varchar)),
            Box::new(RelType::nullable(TypeKind::Any)),
        );
        assert_eq!(format!("{m}"), "MAP<VARCHAR, ANY>");
    }

    #[test]
    fn comparability() {
        assert!(TypeKind::Integer.is_comparable());
        assert!(!TypeKind::Map(
            Box::new(RelType::nullable(TypeKind::Varchar)),
            Box::new(RelType::nullable(TypeKind::Any))
        )
        .is_comparable());
    }
}
