//! Materialized-view rewriting, approach 2 of paper §6: *lattices*. "Once
//! the data sources are declared to form a lattice, Calcite represents
//! each of the materializations as a tile which in turn can be used by the
//! optimizer to answer incoming queries." The matching is more restrictive
//! than substitution (star-schema aggregates only) but very fast.

use crate::catalog::TableRef;
use crate::rel::{self, AggCall, AggFunc, Rel, RelOp};
use crate::rex::RexNode;
use crate::rules::{Pattern, Rule, RuleCall};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A measure available in the lattice: an aggregate function over a fact
/// column (`None` argument = COUNT(*)).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Measure {
    pub func: AggFunc,
    pub arg: Option<usize>,
    pub name: String,
}

impl Measure {
    pub fn count_star() -> Measure {
        Measure {
            func: AggFunc::Count,
            arg: None,
            name: "cnt".into(),
        }
    }

    pub fn sum(arg: usize, name: impl Into<String>) -> Measure {
        Measure {
            func: AggFunc::Sum,
            arg: Some(arg),
            name: name.into(),
        }
    }

    pub fn min(arg: usize, name: impl Into<String>) -> Measure {
        Measure {
            func: AggFunc::Min,
            arg: Some(arg),
            name: name.into(),
        }
    }

    pub fn max(arg: usize, name: impl Into<String>) -> Measure {
        Measure {
            func: AggFunc::Max,
            arg: Some(arg),
            name: name.into(),
        }
    }
}

/// A materialized tile: aggregation of the fact table at one grouping
/// granularity. Column layout: the tile's dimension columns (in ascending
/// fact-column order) followed by all lattice measures (in lattice order).
#[derive(Clone)]
pub struct Tile {
    pub dims: BTreeSet<usize>,
    pub table: TableRef,
}

/// A lattice over a (denormalized) fact table.
pub struct Lattice {
    pub name: String,
    pub fact: TableRef,
    /// Dimension columns of the fact table.
    pub dims: Vec<usize>,
    pub measures: Vec<Measure>,
    tiles: Vec<Tile>,
}

impl Lattice {
    pub fn new(
        name: impl Into<String>,
        fact: TableRef,
        dims: Vec<usize>,
        measures: Vec<Measure>,
    ) -> Lattice {
        Lattice {
            name: name.into(),
            fact,
            dims,
            measures,
            tiles: vec![],
        }
    }

    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// The logical plan that computes a tile at the given granularity.
    /// Execute it and store the rows to build the tile table.
    pub fn tile_plan(&self, dims: &BTreeSet<usize>) -> Rel {
        let rt = self.fact.table.row_type();
        let group: Vec<usize> = dims.iter().copied().collect();
        let aggs: Vec<AggCall> = self
            .measures
            .iter()
            .map(|m| match m.arg {
                None => AggCall::count_star(m.name.clone()),
                Some(a) => AggCall::new(m.func, vec![a], false, m.name.clone(), &rt),
            })
            .collect();
        rel::aggregate(rel::scan(self.fact.clone()), group, aggs)
    }

    /// Registers a materialized tile (its table must hold the result of
    /// [`Lattice::tile_plan`] for the same dims).
    pub fn add_tile(&mut self, dims: BTreeSet<usize>, table: TableRef) {
        self.tiles.push(Tile { dims, table });
    }

    /// The tile-matching rewrite: answers `Aggregate(group, aggs)` over a
    /// scan of the fact table from the smallest tile whose dimensions
    /// cover the query's grouping.
    pub fn rewrite(&self, query: &Rel) -> Option<Rel> {
        let (group, aggs) = match &query.op {
            RelOp::Aggregate { group, aggs } => (group, aggs),
            _ => return None,
        };
        match &query.input(0).op {
            RelOp::Scan { table } if table.qualified_name() == self.fact.qualified_name() => {}
            _ => return None,
        }
        let needed: BTreeSet<usize> = group.iter().copied().collect();
        if !needed.iter().all(|d| self.dims.contains(d)) {
            return None;
        }
        // Every aggregate must be a lattice measure (no DISTINCT).
        let mut measure_idx = vec![];
        for a in aggs {
            if a.distinct {
                return None;
            }
            let arg = a.args.first().copied();
            let pos = self
                .measures
                .iter()
                .position(|m| m.func == a.func && m.arg == arg)?;
            measure_idx.push(pos);
        }

        // Smallest covering tile.
        let tile = self
            .tiles
            .iter()
            .filter(|t| needed.is_subset(&t.dims))
            .min_by(|a, b| {
                let ra = a.table.table.statistic().row_count;
                let rb = b.table.table.statistic().row_count;
                ra.partial_cmp(&rb).unwrap()
            })?;

        let tile_dims: Vec<usize> = tile.dims.iter().copied().collect();
        let tile_rt = tile.table.table.row_type();
        let scan = rel::scan(tile.table.clone());
        let exact = tile.dims == needed;

        if exact {
            // Projection: reorder dims to the query's group order, pick
            // requested measures.
            let mut exprs = vec![];
            let mut names = vec![];
            let out_rt = query.row_type();
            for (i, g) in group.iter().enumerate() {
                let pos = tile_dims.iter().position(|d| d == g).unwrap();
                exprs.push(RexNode::input(pos, tile_rt.field(pos).ty.clone()));
                names.push(out_rt.field(i).name.clone());
            }
            for (i, mi) in measure_idx.iter().enumerate() {
                let pos = tile_dims.len() + mi;
                exprs.push(RexNode::input(pos, tile_rt.field(pos).ty.clone()));
                names.push(out_rt.field(group.len() + i).name.clone());
            }
            return Some(rel::project(scan, exprs, names));
        }

        // Rollup from a finer tile.
        let rollup_group: Vec<usize> = group
            .iter()
            .map(|g| tile_dims.iter().position(|d| d == g).unwrap())
            .collect();
        let mut rollup_aggs = vec![];
        for (a, mi) in aggs.iter().zip(measure_idx.iter()) {
            let col = tile_dims.len() + mi;
            let func = match a.func {
                AggFunc::Count => AggFunc::Sum, // counts roll up by summing
                AggFunc::Sum => AggFunc::Sum,
                AggFunc::Min => AggFunc::Min,
                AggFunc::Max => AggFunc::Max,
                AggFunc::Avg => return None,
            };
            rollup_aggs.push(AggCall {
                func,
                args: vec![col],
                distinct: false,
                name: a.name.clone(),
                ty: a.ty.clone(),
            });
        }
        Some(rel::aggregate(scan, rollup_group, rollup_aggs))
    }

    /// Tile advisor: given a workload of queries, returns the distinct
    /// grouping sets that would be answerable by tiles, most frequent
    /// first — a simple version of the lattice-based recommendation in
    /// Harinarayan et al., which the paper cites.
    pub fn recommend_tiles(&self, workload: &[Rel]) -> Vec<BTreeSet<usize>> {
        use std::collections::HashMap;
        let mut freq: HashMap<BTreeSet<usize>, usize> = HashMap::new();
        for q in workload {
            if let RelOp::Aggregate { group, .. } = &q.op {
                if let RelOp::Scan { table } = &q.input(0).op {
                    if table.qualified_name() == self.fact.qualified_name()
                        && group.iter().all(|g| self.dims.contains(g))
                    {
                        *freq.entry(group.iter().copied().collect()).or_default() += 1;
                    }
                }
            }
        }
        let mut sets: Vec<(BTreeSet<usize>, usize)> = freq.into_iter().collect();
        sets.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.len().cmp(&b.0.len())));
        sets.into_iter().map(|(s, _)| s).collect()
    }
}

/// Planner rule applying lattice-tile rewriting.
pub struct LatticeRule {
    lattices: Vec<Arc<Lattice>>,
}

impl LatticeRule {
    pub fn new(lattices: Vec<Arc<Lattice>>) -> LatticeRule {
        LatticeRule { lattices }
    }
}

impl Rule for LatticeRule {
    fn name(&self) -> &str {
        "LatticeRule"
    }

    fn pattern(&self) -> Pattern {
        Pattern::of(crate::rel::RelKind::Aggregate)
    }

    fn on_match(&self, call: &mut RuleCall) {
        let node = call.rel(0).clone();
        if !node.convention.is_none() {
            return;
        }
        for l in &self.lattices {
            if let Some(rw) = l.rewrite(&node) {
                call.transform_to(rw);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemTable, Statistic, TableRef};
    use crate::rel::RelKind;
    use crate::types::{RowTypeBuilder, TypeKind};

    fn fact() -> TableRef {
        // sales(product, region, year, units)
        let t = MemTable::new(
            RowTypeBuilder::new()
                .add_not_null("product", TypeKind::Integer)
                .add_not_null("region", TypeKind::Integer)
                .add_not_null("year", TypeKind::Integer)
                .add_not_null("units", TypeKind::Integer)
                .build(),
            vec![],
        )
        .with_statistic(Statistic::of_rows(1_000_000.0));
        TableRef::new("s", "sales", t)
    }

    fn tile_table(dims: usize, rows: f64) -> TableRef {
        let mut b = RowTypeBuilder::new();
        for i in 0..dims {
            b = b.add_not_null(format!("d{i}"), TypeKind::Integer);
        }
        b = b.add_not_null("cnt", TypeKind::Integer);
        b = b.add_not_null("total", TypeKind::Integer);
        let t = MemTable::new(b.build(), vec![]).with_statistic(Statistic::of_rows(rows));
        TableRef::new("s", format!("tile{dims}_{rows}"), t)
    }

    fn lattice() -> Lattice {
        let mut l = Lattice::new(
            "sales_lattice",
            fact(),
            vec![0, 1, 2],
            vec![Measure::count_star(), Measure::sum(3, "total")],
        );
        // Fine tile: (product, region); coarse tile: (region).
        l.add_tile([0, 1].into_iter().collect(), tile_table(2, 10_000.0));
        l.add_tile([1].into_iter().collect(), tile_table(1, 100.0));
        l
    }

    fn query(group: Vec<usize>) -> Rel {
        let f = fact();
        let rt = f.table.row_type();
        rel::aggregate(
            rel::scan(f),
            group,
            vec![
                AggCall::count_star("c"),
                AggCall::new(AggFunc::Sum, vec![3], false, "u", &rt),
            ],
        )
    }

    #[test]
    fn exact_tile_becomes_projection() {
        let l = lattice();
        let q = query(vec![1]);
        let rw = l.rewrite(&q).unwrap();
        assert_eq!(rw.kind(), RelKind::Project);
        // The small (region) tile is chosen.
        if let RelOp::Scan { table } = &rw.input(0).op {
            assert!(table.name.starts_with("tile1"));
        } else {
            panic!();
        }
    }

    #[test]
    fn coarser_query_rolls_up_from_finer_tile() {
        let l = lattice();
        // Group by product: only the (product, region) tile covers it.
        let q = query(vec![0]);
        let rw = l.rewrite(&q).unwrap();
        assert_eq!(rw.kind(), RelKind::Aggregate);
        if let RelOp::Aggregate { aggs, .. } = &rw.op {
            // COUNT became SUM over the tile's count column.
            assert_eq!(aggs[0].func, AggFunc::Sum);
        }
        if let RelOp::Scan { table } = &rw.input(0).op {
            assert!(table.name.starts_with("tile2"));
        } else {
            panic!();
        }
    }

    #[test]
    fn smallest_covering_tile_is_preferred() {
        let mut l = lattice();
        // Add a huge tile also covering (region).
        l.add_tile([1, 2].into_iter().collect(), tile_table(2, 500_000.0));
        let q = query(vec![1]);
        let rw = l.rewrite(&q).unwrap();
        if let RelOp::Scan { table } = &rw.input(0).op {
            assert!(table.name.starts_with("tile1_100"), "{}", table.name);
        } else {
            // Exact match is a projection over tile1.
            panic!();
        }
    }

    #[test]
    fn unknown_measure_or_dim_rejected() {
        let l = lattice();
        let f = fact();
        let rt = f.table.row_type();
        // AVG is not a lattice measure.
        let q = rel::aggregate(
            rel::scan(f.clone()),
            vec![1],
            vec![AggCall::new(AggFunc::Avg, vec![3], false, "a", &rt)],
        );
        assert!(l.rewrite(&q).is_none());
        // Grouping by the measure column is not a dimension.
        let q2 = rel::aggregate(rel::scan(f), vec![3], vec![AggCall::count_star("c")]);
        assert!(l.rewrite(&q2).is_none());
    }

    #[test]
    fn no_covering_tile_returns_none() {
        let l = lattice();
        // Group by year: no tile contains dim 2.
        let q = query(vec![2]);
        assert!(l.rewrite(&q).is_none());
    }

    #[test]
    fn tile_plan_shape() {
        let l = lattice();
        let plan = l.tile_plan(&[0, 1].into_iter().collect());
        assert_eq!(plan.kind(), RelKind::Aggregate);
        assert_eq!(
            plan.row_type().field_names(),
            vec!["product", "region", "cnt", "total"]
        );
    }

    #[test]
    fn recommend_tiles_orders_by_frequency() {
        let l = lattice();
        let workload = vec![query(vec![1]), query(vec![1]), query(vec![0, 1])];
        let recs = l.recommend_tiles(&workload);
        assert_eq!(recs[0], [1].into_iter().collect::<BTreeSet<_>>());
        assert_eq!(recs.len(), 2);
    }
}
