//! Table statistics for cost-based planning (paper §6): per-table row
//! counts and per-column NDV, min/max, null fraction and equi-depth
//! histograms, collected by `ANALYZE` and served to the planner through
//! [`StatsMdProvider`] in the [`MetadataQuery`] provider chain.
//!
//! The paper's pitch — "for many \[systems\], it is sufficient to provide
//! statistics about their input data ... and Calcite will do the rest of
//! the work" — only pays off when those statistics are real. This module
//! replaces the default provider's magic constants (`row_count/10`
//! distinct counts, fixed 0.5 range selectivities) with bucket math over
//! the data actually in the tables.
//!
//! Statistics are versioned by the same DDL/DML generation counter the
//! plan cache uses: a snapshot collected at generation `g` stays valid
//! for every later generation until the *touched table's* entry is
//! explicitly retired. Writes and DROP retire only the table they
//! modify, so an `ANALYZE` survives unrelated DDL/DML (a CREATE INDEX
//! elsewhere, an INSERT into another table) instead of being thrown
//! away on every generation bump.

use crate::catalog::{Catalog, Table};
use crate::datum::{Column, Datum};
use crate::error::Result;
use crate::metadata::{MetadataProvider, MetadataQuery};
use crate::rel::{Rel, RelOp};
use crate::rex::{Op, RexNode};
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Number of equi-depth histogram buckets `ANALYZE` builds per column.
pub const DEFAULT_HISTOGRAM_BUCKETS: usize = 32;

/// One equi-depth histogram bucket over a column's numeric domain:
/// `[lo, hi]` inclusive, holding `rows` values of `ndv` distinct ones.
/// Buckets never split a value: a heavily-skewed value occupies whole
/// buckets of its own, so its equality estimate stays accurate.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    pub lo: f64,
    pub hi: f64,
    pub rows: f64,
    pub ndv: f64,
}

/// Statistics for one column.
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    /// Number of distinct non-null values.
    pub ndv: f64,
    /// Fraction of rows that are NULL.
    pub null_frac: f64,
    /// Minimum non-null value, projected onto the numeric domain
    /// (`None` for non-numeric or all-NULL columns).
    pub min: Option<f64>,
    /// Maximum non-null value on the numeric domain.
    pub max: Option<f64>,
    /// Equi-depth histogram over non-null numeric values; empty when the
    /// column is non-numeric (NDV/null fraction still apply).
    pub histogram: Vec<Bucket>,
}

impl ColumnStats {
    fn nonnull_rows(&self) -> f64 {
        self.histogram.iter().map(|b| b.rows).sum()
    }

    /// Estimated rows with `col = v` (absolute count, not a fraction).
    pub fn est_eq_rows(&self, v: f64, table_rows: f64) -> f64 {
        if self.histogram.is_empty() {
            return table_rows * (1.0 - self.null_frac) / self.ndv.max(1.0);
        }
        match (self.min, self.max) {
            (Some(lo), Some(hi)) if v >= lo && v <= hi => {}
            _ => return 0.0,
        }
        // A value never splits across buckets, so singleton buckets give
        // exact counts for skewed values; otherwise assume the bucket's
        // distinct values share its rows uniformly.
        let mut rows = 0.0;
        for b in &self.histogram {
            if v < b.lo || v > b.hi {
                continue;
            }
            if b.lo == b.hi {
                rows += b.rows;
            } else {
                rows += b.rows / b.ndv.max(1.0);
                break;
            }
        }
        rows
    }

    /// Estimated rows with `col < v`, by summing full buckets below `v`
    /// and interpolating linearly inside the boundary bucket.
    pub fn est_lt_rows(&self, v: f64, table_rows: f64) -> f64 {
        if self.histogram.is_empty() {
            return table_rows * (1.0 - self.null_frac) / 3.0;
        }
        let mut rows = 0.0;
        for b in &self.histogram {
            if b.hi < v {
                rows += b.rows;
            } else if b.lo < v {
                // Partial bucket: linear interpolation on the value range.
                let frac = if b.hi > b.lo {
                    (v - b.lo) / (b.hi - b.lo)
                } else {
                    0.0
                };
                rows += b.rows * frac.clamp(0.0, 1.0);
            }
        }
        rows.min(self.nonnull_rows())
    }

    /// Estimated rows for a comparison of this column against `v`.
    pub fn est_cmp_rows(&self, op: &Op, v: f64, table_rows: f64) -> f64 {
        let nonnull = if self.histogram.is_empty() {
            table_rows * (1.0 - self.null_frac)
        } else {
            self.nonnull_rows()
        };
        match op {
            Op::Eq => self.est_eq_rows(v, table_rows),
            Op::Ne => (nonnull - self.est_eq_rows(v, table_rows)).max(0.0),
            Op::Lt => self.est_lt_rows(v, table_rows),
            Op::Le => self.est_lt_rows(v, table_rows) + self.est_eq_rows(v, table_rows),
            Op::Gt => (nonnull - self.est_lt_rows(v, table_rows) - self.est_eq_rows(v, table_rows))
                .max(0.0),
            Op::Ge => (nonnull - self.est_lt_rows(v, table_rows)).max(0.0),
            _ => nonnull * 0.25,
        }
    }
}

/// Statistics for one table, as collected by `ANALYZE`.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    pub row_count: f64,
    /// Mean row width in bytes (feeds spill predictions).
    pub avg_row_bytes: f64,
    /// Per-column statistics, positionally aligned with the row type.
    pub columns: Vec<ColumnStats>,
}

/// Projects a datum onto the numeric domain histograms are built over.
/// Strings and nested values have no useful linear order here and return
/// `None` (their columns still get NDV and null-fraction statistics).
pub fn numeric_value(d: &Datum) -> Option<f64> {
    match d {
        Datum::Int(i) => Some(*i as f64),
        Datum::Double(f) if f.is_finite() => Some(*f),
        Datum::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
        Datum::Date(days) => Some(*days as f64),
        Datum::Timestamp(ms) | Datum::Interval(ms) => Some(*ms as f64),
        _ => None,
    }
}

/// Rough in-memory width of a datum, for `avg_row_bytes`.
fn datum_bytes(d: &Datum) -> f64 {
    match d {
        Datum::Null => 1.0,
        Datum::Str(s) => 16.0 + s.len() as f64,
        Datum::Array(a) => 16.0 + a.iter().map(datum_bytes).sum::<f64>(),
        _ => 8.0,
    }
}

/// Builds an equi-depth histogram over `values` (sorted in place). Equal
/// values never split across buckets, and any value whose run alone
/// reaches the bucket depth gets a singleton `[v, v]` bucket — so skewed
/// heavy hitters are counted exactly instead of averaged into their
/// neighbours.
pub fn equi_depth_histogram(values: &mut [f64], buckets: usize) -> Vec<Bucket> {
    if values.is_empty() || buckets == 0 {
        return vec![];
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("non-finite value in histogram"));
    let n = values.len();
    let depth = (n as f64 / buckets as f64).ceil().max(1.0) as usize;
    let mut out: Vec<Bucket> = vec![];
    // Accumulator for the bucket currently being filled with light runs.
    let mut acc: Option<Bucket> = None;
    let mut i = 0;
    while i < n {
        let v = values[i];
        let mut j = i + 1;
        while j < n && values[j] == v {
            j += 1;
        }
        let run = (j - i) as f64;
        if j - i >= depth {
            // Heavy hitter: close the open bucket, then a bucket of its own.
            out.extend(acc.take());
            out.push(Bucket {
                lo: v,
                hi: v,
                rows: run,
                ndv: 1.0,
            });
        } else {
            let b = acc.get_or_insert(Bucket {
                lo: v,
                hi: v,
                rows: 0.0,
                ndv: 0.0,
            });
            b.hi = v;
            b.rows += run;
            b.ndv += 1.0;
            if b.rows >= depth as f64 {
                out.extend(acc.take());
            }
        }
        i = j;
    }
    out.extend(acc);
    out
}

/// Computes full table statistics from columnar data. `rows` is the table
/// row count (needed when `cols` is empty).
pub fn analyze_columns(cols: &[Column], rows: usize) -> TableStats {
    let mut columns = Vec::with_capacity(cols.len());
    let mut total_bytes = 0.0;
    for col in cols {
        let n = col.len();
        let mut nulls = 0usize;
        let mut distinct: HashSet<Datum> = HashSet::new();
        let mut nums: Vec<f64> = Vec::new();
        let mut numeric_only = true;
        for i in 0..n {
            let d = col.get(i);
            total_bytes += datum_bytes(&d);
            if d.is_null() {
                nulls += 1;
                continue;
            }
            match numeric_value(&d) {
                Some(v) => nums.push(v),
                None => numeric_only = false,
            }
            distinct.insert(d);
        }
        let histogram = if numeric_only {
            equi_depth_histogram(&mut nums, DEFAULT_HISTOGRAM_BUCKETS)
        } else {
            vec![]
        };
        let (min, max) = if numeric_only && !nums.is_empty() {
            // `nums` is sorted by the histogram builder.
            (Some(nums[0]), Some(nums[nums.len() - 1]))
        } else {
            (None, None)
        };
        columns.push(ColumnStats {
            ndv: distinct.len() as f64,
            null_frac: if n > 0 { nulls as f64 / n as f64 } else { 0.0 },
            min,
            max,
            histogram,
        });
    }
    TableStats {
        row_count: rows as f64,
        avg_row_bytes: if rows > 0 {
            total_bytes / rows as f64
        } else {
            0.0
        },
        columns,
    }
}

/// Computes statistics for any [`Table`] through its scan surface: the
/// columnar mirror when the backend has one, otherwise a row scan pivoted
/// through [`Column::from_rows`]. Backends with cheaper native paths
/// override [`Table::analyze`] instead (memdb reads its columnar mirror
/// zero-copy).
pub fn analyze_table(table: &dyn Table) -> Result<TableStats> {
    if let Some(cols) = table.scan_columns() {
        let cols = cols?;
        if let Some(first) = cols.first() {
            let rows = first.len();
            return Ok(analyze_columns(&cols, rows));
        }
    }
    let rows: Vec<crate::datum::Row> = table.scan()?.collect();
    let rt = table.row_type();
    let cols: Vec<Column> = rt
        .fields
        .iter()
        .enumerate()
        .map(|(i, f)| Column::from_rows(&f.ty.kind, &rows, i))
        .collect();
    Ok(analyze_columns(&cols, rows.len()))
}

/// The catalog's statistics store: qualified table name → (generation,
/// stats). Entries are generation-stamped and served to any lookup at
/// that generation *or later*; writes that invalidate a table's
/// statistics call [`StatsRegistry::retire`] for that table alone.
#[derive(Default)]
pub struct StatsRegistry {
    entries: RwLock<HashMap<String, (u64, Arc<TableStats>)>>,
}

impl StatsRegistry {
    /// Stores statistics collected at `generation`.
    pub fn put(&self, name: impl Into<String>, generation: u64, stats: Arc<TableStats>) {
        self.entries
            .write()
            .insert(name.into().to_ascii_lowercase(), (generation, stats));
    }

    /// The stats for `name` as seen at `generation`: entries stamped at a
    /// later generation are invisible (they describe data this generation
    /// has not seen), entries from earlier generations remain valid until
    /// retired.
    pub fn get(&self, name: &str, generation: u64) -> Option<Arc<TableStats>> {
        self.entries
            .read()
            .get(&name.to_ascii_lowercase())
            .filter(|(g, _)| *g <= generation)
            .map(|(_, s)| s.clone())
    }

    /// Retires one table's statistics after a write to that table;
    /// returns whether an entry existed. Statistics for other tables are
    /// untouched — this is what scopes invalidation per table instead of
    /// per generation.
    pub fn retire(&self, name: &str) -> bool {
        self.entries
            .write()
            .remove(&name.to_ascii_lowercase())
            .is_some()
    }

    /// The stats for `name` regardless of generation (inspection/tests).
    pub fn get_any(&self, name: &str) -> Option<(u64, Arc<TableStats>)> {
        self.entries.read().get(&name.to_ascii_lowercase()).cloned()
    }

    pub fn remove(&self, name: &str) -> bool {
        self.entries
            .write()
            .remove(&name.to_ascii_lowercase())
            .is_some()
    }

    pub fn clear(&self) {
        self.entries.write().clear();
    }

    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Sorted names of analyzed tables.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.read().keys().cloned().collect();
        names.sort();
        names
    }
}

/// Metadata provider backed by `ANALYZE`d statistics. Sits between any
/// user-registered providers and the default provider in the
/// [`MetadataQuery`] chain: it answers for scans of analyzed tables and
/// stays silent (`None`) otherwise, so everything above scans — filters,
/// joins, aggregates — still composes through the default provider's
/// recursive estimates, now seeded with real leaf cardinalities, NDVs and
/// histogram selectivities.
pub struct StatsMdProvider {
    catalog: Arc<Catalog>,
    /// The connection generation this query runs at; stats stamped with
    /// any other generation are ignored.
    generation: u64,
}

impl StatsMdProvider {
    pub fn new(catalog: Arc<Catalog>, generation: u64) -> StatsMdProvider {
        StatsMdProvider {
            catalog,
            generation,
        }
    }

    fn scan_stats(&self, rel: &Rel) -> Option<Arc<TableStats>> {
        let table = match &rel.op {
            RelOp::Scan { table } => table,
            // An index seek reads the same analyzed table; its *output*
            // cardinality is priced separately in `row_count`.
            RelOp::IndexSeek { table, .. } => table,
            _ => return None,
        };
        self.catalog
            .stats()
            .get(&table.qualified_name(), self.generation)
    }

    /// Histogram estimate of one bound probe's output rows: the equality
    /// prefix multiplies per-column fractions (independence), the range
    /// bounds interpolate on the next key column's buckets. Probes whose
    /// values are dynamic parameters fall back to per-column NDV.
    fn probe_rows(stats: &TableStats, columns: &[usize], probe: &crate::index::SeekProbe) -> f64 {
        let rc = stats.row_count.max(1.0);
        let mut rows = rc;
        for (i, e) in probe.eq.iter().enumerate() {
            let Some(cs) = stats.columns.get(columns[i]) else {
                rows *= 0.15;
                continue;
            };
            let est = match e.as_literal().and_then(numeric_value) {
                Some(v) => cs.est_eq_rows(v, rc),
                None => rc * (1.0 - cs.null_frac) / cs.ndv.max(1.0),
            };
            rows *= (est / rc).clamp(0.0, 1.0);
        }
        if probe.lower.is_none() && probe.upper.is_none() {
            return rows;
        }
        let range_frac = match columns
            .get(probe.eq.len())
            .and_then(|c| stats.columns.get(*c))
        {
            None => 0.25,
            Some(cs) => {
                let bound_frac = |b: &(RexNode, bool), op_incl: Op, op_excl: Op| match b
                    .0
                    .as_literal()
                    .and_then(numeric_value)
                {
                    Some(v) => cs.est_cmp_rows(if b.1 { &op_incl } else { &op_excl }, v, rc) / rc,
                    None => 0.5,
                };
                let below = probe
                    .upper
                    .as_ref()
                    .map_or(1.0, |b| bound_frac(b, Op::Le, Op::Lt));
                let above = probe
                    .lower
                    .as_ref()
                    .map_or(1.0, |b| bound_frac(b, Op::Ge, Op::Gt));
                // P(lower ∧ upper) on one column: the fractions overlap.
                (below + above - 1.0).clamp(0.0, 1.0)
            }
        };
        rows * range_frac
    }

    /// Histogram-backed selectivity of `pred` over an analyzed scan.
    /// Composite predicates recurse with independence assumptions; forms
    /// the histogram cannot answer fall back to the same constants the
    /// default provider uses, so a partially-unknown predicate still
    /// benefits from the known parts.
    fn predicate_selectivity(stats: &TableStats, pred: &RexNode) -> f64 {
        let rc = stats.row_count.max(1.0);
        let sel = match pred {
            RexNode::Literal { .. } => {
                if pred.is_always_true() {
                    1.0
                } else {
                    0.0
                }
            }
            RexNode::Call { op, args, .. } => match op {
                Op::And => args
                    .iter()
                    .map(|a| Self::predicate_selectivity(stats, a))
                    .product(),
                Op::Or => {
                    1.0 - args
                        .iter()
                        .map(|a| 1.0 - Self::predicate_selectivity(stats, a))
                        .product::<f64>()
                }
                Op::Not => 1.0 - Self::predicate_selectivity(stats, &args[0]),
                Op::Eq | Op::Ne | Op::Lt | Op::Le | Op::Gt | Op::Ge => {
                    match column_versus_value(stats, op, args) {
                        Some((cs, cmp, v)) => cs.est_cmp_rows(&cmp, v, stats.row_count) / rc,
                        None => default_cmp_selectivity(op),
                    }
                }
                Op::IsNull => column_stats(stats, &args[0]).map_or(0.1, |cs| cs.null_frac),
                Op::IsNotNull => column_stats(stats, &args[0]).map_or(0.9, |cs| 1.0 - cs.null_frac),
                Op::Like => 0.25,
                _ => 0.25,
            },
            RexNode::InputRef { .. } | RexNode::DynamicParam { .. } => 0.5,
        };
        sel.clamp(0.0, 1.0)
    }
}

fn column_stats<'s>(stats: &'s TableStats, e: &RexNode) -> Option<&'s ColumnStats> {
    stats.columns.get(strip_cast(e).as_input_ref()?)
}

/// Matches `col <cmp> literal` / `literal <cmp> col` (through casts) and
/// returns the column's stats, the normalized operator and the numeric
/// comparison value.
fn column_versus_value<'s>(
    stats: &'s TableStats,
    op: &Op,
    args: &[RexNode],
) -> Option<(&'s ColumnStats, Op, f64)> {
    if let (Some(cs), Some(lit)) = (column_stats(stats, &args[0]), args[1].as_literal()) {
        return Some((cs, op.clone(), numeric_value(lit)?));
    }
    if let (Some(lit), Some(cs)) = (args[0].as_literal(), column_stats(stats, &args[1])) {
        return Some((cs, op.swapped()?, numeric_value(lit)?));
    }
    None
}

/// The default provider's constants, used when the histogram has no
/// answer (non-numeric comparison, column-vs-column, parameter).
fn default_cmp_selectivity(op: &Op) -> f64 {
    match op {
        Op::Eq => 0.15,
        Op::Ne => 0.85,
        _ => 0.5,
    }
}

fn strip_cast(e: &RexNode) -> &RexNode {
    match e {
        RexNode::Call {
            op: Op::Cast, args, ..
        } => strip_cast(&args[0]),
        other => other,
    }
}

impl MetadataProvider for StatsMdProvider {
    fn row_count(&self, rel: &Rel, _mq: &MetadataQuery) -> Option<f64> {
        let stats = self.scan_stats(rel)?;
        match &rel.op {
            RelOp::IndexSeek { index, seek, .. } => {
                // This estimate is what arbitrates seek vs scan: summed
                // per-probe histogram cardinality, capped by the table.
                let total: f64 = seek
                    .probes
                    .iter()
                    .map(|p| Self::probe_rows(&stats, &index.columns, p))
                    .sum();
                Some(total.min(stats.row_count).max(1e-6))
            }
            _ => Some(stats.row_count),
        }
    }

    fn selectivity(&self, rel: &Rel, predicate: &RexNode, _mq: &MetadataQuery) -> Option<f64> {
        let stats = self.scan_stats(rel)?;
        // Residual predicates above a projected seek reference projected
        // column positions the table stats can't be indexed by directly.
        if let RelOp::IndexSeek {
            projection: Some(_),
            ..
        } = &rel.op
        {
            return None;
        }
        Some(Self::predicate_selectivity(&stats, predicate))
    }

    fn distinct_count(&self, rel: &Rel, cols: &[usize], _mq: &MetadataQuery) -> Option<f64> {
        let stats = self.scan_stats(rel)?;
        // Map output positions back to base-table columns through an
        // index-only projection, if any.
        let projection = match &rel.op {
            RelOp::IndexSeek { projection, .. } => projection.as_ref(),
            _ => None,
        };
        // Multi-column NDV: independence-assumption product, capped by
        // the row count.
        let mut ndv = 1.0;
        for c in cols {
            let base = match projection {
                Some(proj) => *proj.get(*c)?,
                None => *c,
            };
            ndv *= stats.columns.get(base)?.ndv.max(1.0);
        }
        Some(ndv.clamp(1.0, stats.row_count.max(1.0)))
    }

    fn average_row_size(&self, rel: &Rel, _mq: &MetadataQuery) -> Option<f64> {
        let stats = self.scan_stats(rel)?;
        (stats.avg_row_bytes > 0.0).then_some(stats.avg_row_bytes)
    }

    fn parallelism(&self, rel: &Rel, _mq: &MetadataQuery) -> Option<f64> {
        // Useful scan parallelism: one worker per morsel, bounded so the
        // estimate stays a placement hint rather than a thread count.
        let stats = self.scan_stats(rel)?;
        Some(
            (stats.row_count / crate::exec::DEFAULT_MORSEL_SIZE as f64)
                .ceil()
                .clamp(1.0, 64.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemTable, Schema, TableRef};
    use crate::rel;
    use crate::types::{RelType, RowTypeBuilder, TypeKind};

    fn int_column(values: Vec<Option<i64>>) -> Column {
        let rows: Vec<crate::datum::Row> = values
            .into_iter()
            .map(|v| vec![v.map_or(Datum::Null, Datum::Int)])
            .collect();
        Column::from_rows(&TypeKind::Integer, &rows, 0)
    }

    #[test]
    fn analyze_uniform_column() {
        let col = int_column((0..1000).map(Some).collect());
        let stats = analyze_columns(&[col], 1000);
        assert_eq!(stats.row_count, 1000.0);
        let cs = &stats.columns[0];
        assert_eq!(cs.ndv, 1000.0);
        assert_eq!(cs.null_frac, 0.0);
        assert_eq!(cs.min, Some(0.0));
        assert_eq!(cs.max, Some(999.0));
        assert_eq!(cs.histogram.len(), DEFAULT_HISTOGRAM_BUCKETS);
        // Equality: ~1 row; range: interpolated.
        assert!((cs.est_eq_rows(500.0, 1000.0) - 1.0).abs() < 1.0);
        let lt = cs.est_lt_rows(250.0, 1000.0);
        assert!((200.0..=300.0).contains(&lt), "lt(250) = {lt}");
    }

    #[test]
    fn analyze_skewed_column_isolates_heavy_value() {
        // 900 copies of 7, plus 0..100.
        let mut vals: Vec<Option<i64>> = std::iter::repeat_n(Some(7), 900).collect();
        vals.extend((0..100).map(Some));
        let col = int_column(vals);
        let stats = analyze_columns(&[col], 1000);
        let cs = &stats.columns[0];
        // 7 is also in 0..100, so distinct values are exactly 0..100.
        assert_eq!(cs.ndv, 100.0);
        // The heavy value lives in singleton buckets: exact estimate.
        let est = cs.est_eq_rows(7.0, 1000.0);
        assert!((est - 900.0).abs() <= 32.0, "eq(7) = {est}");
        // A light value is not dragged up by the skew.
        let est = cs.est_eq_rows(90.0, 1000.0);
        assert!(est <= 40.0, "eq(90) = {est}");
    }

    #[test]
    fn analyze_nulls_and_out_of_range() {
        let mut vals: Vec<Option<i64>> = (0..80).map(Some).collect();
        vals.extend(std::iter::repeat_n(None, 20));
        let col = int_column(vals);
        let stats = analyze_columns(&[col], 100);
        let cs = &stats.columns[0];
        assert_eq!(cs.null_frac, 0.2);
        assert_eq!(cs.ndv, 80.0);
        // Out-of-range equality estimates zero rows.
        assert_eq!(cs.est_eq_rows(500.0, 100.0), 0.0);
        assert_eq!(cs.est_eq_rows(-1.0, 100.0), 0.0);
        // Range below min / above max covers nothing / everything non-null.
        assert_eq!(cs.est_lt_rows(-5.0, 100.0), 0.0);
        assert_eq!(cs.est_cmp_rows(&Op::Ge, -5.0, 100.0), 80.0);
    }

    #[test]
    fn registry_is_generation_stamped() {
        let reg = StatsRegistry::default();
        let stats = Arc::new(TableStats {
            row_count: 42.0,
            ..TableStats::default()
        });
        reg.put("hr.emp", 3, stats);
        assert!(reg.get("hr.emp", 3).is_some());
        assert!(reg.get("HR.EMP", 3).is_some());
        // Later generations still see the entry: unrelated DDL/DML does
        // not throw analyzed statistics away.
        assert!(reg.get("hr.emp", 4).is_some());
        // Earlier generations must not see stats from their future.
        assert!(reg.get("hr.emp", 2).is_none());
        assert_eq!(reg.get_any("hr.emp").unwrap().0, 3);
        assert_eq!(reg.names(), vec!["hr.emp"]);
        // A write to the table retires its entry alone.
        assert!(reg.retire("hr.emp"));
        assert!(!reg.retire("hr.emp"));
        assert!(reg.is_empty());
    }

    #[test]
    fn provider_answers_for_analyzed_scans_only() {
        let catalog = Catalog::new();
        let schema = Schema::new();
        let t = MemTable::new(
            RowTypeBuilder::new()
                .add_not_null("v", TypeKind::Integer)
                .build(),
            (0..200).map(|i| vec![Datum::Int(i)]).collect(),
        );
        schema.add_table("t", t.clone());
        catalog.add_schema("hr", schema);
        let stats = Arc::new(analyze_table(t.as_ref() as &dyn Table).unwrap());
        catalog.stats().put("hr.t", 0, stats);

        let provider = Arc::new(StatsMdProvider::new(catalog.clone(), 0));
        let mq = MetadataQuery::with_providers(vec![provider]);
        let scan = rel::scan(TableRef::new("hr", "t", t.clone()));
        assert_eq!(mq.row_count(&scan), 200.0);
        assert_eq!(mq.distinct_count(&scan, &[0]), 200.0);
        // Histogram-backed range selectivity: v < 50 is ~25%.
        let pred = RexNode::input(0, RelType::not_null(TypeKind::Integer)).lt(RexNode::lit_int(50));
        let sel = mq.selectivity(&scan, &pred);
        assert!((0.2..=0.3).contains(&sel), "sel = {sel}");
        // Stats survive unrelated generation bumps ...
        let later = Arc::new(StatsMdProvider::new(catalog.clone(), 1));
        let mq2 = MetadataQuery::with_providers(vec![later]);
        assert_eq!(mq2.row_count(&scan), 200.0);
        // ... until the table itself is retired; then the provider goes
        // silent and the default chain answers with its heuristics.
        catalog.stats().retire("hr.t");
        let stale = Arc::new(StatsMdProvider::new(catalog, 1));
        let mq = MetadataQuery::with_providers(vec![stale]);
        assert_eq!(mq.distinct_count(&scan, &[0]), 20.0); // rc/10 fallback
    }

    #[test]
    fn analyze_table_via_row_scan_fallback() {
        // A table without a columnar mirror still analyzes through scan().
        struct RowsOnly(Arc<MemTable>);
        impl Table for RowsOnly {
            fn row_type(&self) -> crate::types::RowType {
                self.0.row_type()
            }
            fn scan(&self) -> Result<Box<dyn Iterator<Item = crate::datum::Row> + Send>> {
                self.0.scan()
            }
        }
        let t = MemTable::new(
            RowTypeBuilder::new()
                .add_not_null("v", TypeKind::Integer)
                .build(),
            (0..10).map(|i| vec![Datum::Int(i % 3)]).collect(),
        );
        let stats = analyze_table(&RowsOnly(t)).unwrap();
        assert_eq!(stats.row_count, 10.0);
        assert_eq!(stats.columns[0].ndv, 3.0);
    }
}
