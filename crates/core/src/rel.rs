//! Relational operators (paper §4). A single operator set serves for both
//! logical and physical plans: physical properties live in traits, chiefly
//! the calling [`Convention`]. `Filter` in the `logical` convention is the
//! paper's `LogicalFilter`; the same `Filter` in the `cassandra` convention
//! is its `CassandraFilter`.

use crate::catalog::TableRef;
use crate::datum::{Datum, Row};
use crate::index::{IndexDef, SeekSpec};
use crate::rex::RexNode;
use crate::traits::{collation_to_string, Collation, Convention};
use crate::types::{Field, RelType, RowType, TypeKind};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Join types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Full,
    /// Left rows with at least one match; outputs left fields only.
    Semi,
    /// Left rows with no match; outputs left fields only.
    Anti,
}

impl JoinKind {
    pub fn name(&self) -> &'static str {
        match self {
            JoinKind::Inner => "inner",
            JoinKind::Left => "left",
            JoinKind::Right => "right",
            JoinKind::Full => "full",
            JoinKind::Semi => "semi",
            JoinKind::Anti => "anti",
        }
    }

    pub fn projects_right(&self) -> bool {
        !matches!(self, JoinKind::Semi | JoinKind::Anti)
    }

    pub fn generates_nulls_on_left(&self) -> bool {
        matches!(self, JoinKind::Right | JoinKind::Full)
    }

    pub fn generates_nulls_on_right(&self) -> bool {
        matches!(self, JoinKind::Left | JoinKind::Full)
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// COUNT(*) when `args` is empty, COUNT(expr) otherwise.
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }

    pub fn by_name(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_uppercase().as_str() {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            "AVG" => AggFunc::Avg,
            _ => return None,
        })
    }

    /// Result type given the argument type.
    pub fn ret_type(&self, arg: Option<&RelType>) -> RelType {
        match self {
            AggFunc::Count => RelType::not_null(TypeKind::Integer),
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => arg
                .cloned()
                .map(|t| t.with_nullable(true))
                .unwrap_or(RelType::nullable(TypeKind::Any)),
            AggFunc::Avg => RelType::nullable(TypeKind::Double),
        }
    }
}

/// One aggregate call within an Aggregate operator. Arguments are input
/// field indexes.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    pub func: AggFunc,
    pub args: Vec<usize>,
    pub distinct: bool,
    pub name: String,
    pub ty: RelType,
}

impl AggCall {
    pub fn new(
        func: AggFunc,
        args: Vec<usize>,
        distinct: bool,
        name: impl Into<String>,
        input: &RowType,
    ) -> AggCall {
        let arg_ty = args.first().map(|i| &input.field(*i).ty);
        AggCall {
            ty: func.ret_type(arg_ty),
            func,
            args,
            distinct,
            name: name.into(),
        }
    }

    pub fn count_star(name: impl Into<String>) -> AggCall {
        AggCall {
            func: AggFunc::Count,
            args: vec![],
            distinct: false,
            name: name.into(),
            ty: RelType::not_null(TypeKind::Integer),
        }
    }
}

impl fmt::Display for AggCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.func.name())?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        if self.args.is_empty() {
            write!(f, "*")?;
        } else {
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "${a}")?;
            }
        }
        write!(f, ")")
    }
}

/// Window-function flavours (§4: "Calcite introduces a window operator that
/// encapsulates the window definition ... and the aggregate functions to
/// execute on each window").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WinFunc {
    Agg(AggFunc),
    RowNumber,
    Rank,
}

impl WinFunc {
    pub fn name(&self) -> &'static str {
        match self {
            WinFunc::Agg(a) => a.name(),
            WinFunc::RowNumber => "ROW_NUMBER",
            WinFunc::Rank => "RANK",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameMode {
    /// Frame measured in row counts.
    Rows,
    /// Frame measured in value distance on the ordering key (used by the
    /// streaming sliding windows of §7.2, e.g. `RANGE INTERVAL '1' HOUR
    /// PRECEDING`).
    Range,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameBound {
    UnboundedPreceding,
    /// Rows: count; Range: distance in the ordering key's units (ms for
    /// temporal keys).
    Preceding(i64),
    CurrentRow,
    Following(i64),
    UnboundedFollowing,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WindowFrame {
    pub mode: FrameMode,
    pub lower: FrameBound,
    pub upper: FrameBound,
}

impl WindowFrame {
    /// The default frame: RANGE UNBOUNDED PRECEDING .. CURRENT ROW.
    pub fn default_frame() -> WindowFrame {
        WindowFrame {
            mode: FrameMode::Range,
            lower: FrameBound::UnboundedPreceding,
            upper: FrameBound::CurrentRow,
        }
    }

    pub fn rows(lower: FrameBound, upper: FrameBound) -> WindowFrame {
        WindowFrame {
            mode: FrameMode::Rows,
            lower,
            upper,
        }
    }

    pub fn range(lower: FrameBound, upper: FrameBound) -> WindowFrame {
        WindowFrame {
            mode: FrameMode::Range,
            lower,
            upper,
        }
    }
}

/// One windowed function computed by a Window operator; the window
/// definition (partitioning, ordering, frame) is encapsulated with it.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowFn {
    pub func: WinFunc,
    pub args: Vec<usize>,
    pub partition: Vec<usize>,
    pub order: Collation,
    pub frame: WindowFrame,
    pub name: String,
    pub ty: RelType,
}

impl fmt::Display for WindowFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.func.name())?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "${a}")?;
        }
        write!(f, ") OVER (partition=[")?;
        for (i, p) in self.partition.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "${p}")?;
        }
        write!(f, "] order=[{}]", collation_to_string(&self.order))?;
        write!(
            f,
            " frame={:?}:{:?}..{:?})",
            self.frame.mode, self.frame.lower, self.frame.upper
        )
    }
}

/// The operator payload of a relational node.
#[derive(Clone)]
pub enum RelOp {
    /// Scan of a catalog table.
    Scan {
        table: TableRef,
    },
    /// Index access path: point/range/multi-probe seek against one of the
    /// table's secondary indexes instead of a full scan. `projection`, when
    /// present, restricts the output to the listed base-table columns
    /// (index-only style access). Residual predicates stay in a Filter
    /// above; the cost model decides seek vs scan (§5: adapters expose
    /// access paths, the optimizer chooses by cost).
    IndexSeek {
        table: TableRef,
        index: IndexDef,
        seek: SeekSpec,
        projection: Option<Vec<usize>>,
    },
    /// Index-nested-loop join: for each left row, probes the right table's
    /// index with the left-side key columns, then evaluates the full join
    /// condition on each candidate. The right side is folded into the
    /// operator (one input: the left). Registered by rule as a cost-model
    /// alternative alongside hash join.
    IndexJoin {
        kind: JoinKind,
        condition: RexNode,
        table: TableRef,
        index: IndexDef,
        left_keys: Vec<usize>,
    },
    /// Literal rows.
    Values {
        row_type: RowType,
        tuples: Vec<Row>,
    },
    Filter {
        condition: RexNode,
    },
    Project {
        exprs: Vec<RexNode>,
        names: Vec<String>,
    },
    Join {
        kind: JoinKind,
        condition: RexNode,
    },
    Aggregate {
        group: Vec<usize>,
        aggs: Vec<AggCall>,
    },
    /// Sort with optional OFFSET/FETCH; a pure LIMIT is a Sort with an
    /// empty collation.
    Sort {
        collation: Collation,
        offset: Option<usize>,
        fetch: Option<usize>,
    },
    Window {
        functions: Vec<WindowFn>,
    },
    Union {
        all: bool,
    },
    Intersect {
        all: bool,
    },
    Minus {
        all: bool,
    },
    /// Streaming delta (§7.2): interest in *incoming* records. Produced by
    /// the STREAM keyword.
    Delta,
    /// Calling-convention converter: executes its input in `from` and hands
    /// rows to the enclosing convention. Inserted by the Volcano planner
    /// when the cheapest plan crosses engines.
    Convert {
        from: Convention,
    },
}

/// Fieldless discriminant of `RelOp`, used by rule patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelKind {
    Scan,
    IndexSeek,
    IndexJoin,
    Values,
    Filter,
    Project,
    Join,
    Aggregate,
    Sort,
    Window,
    Union,
    Intersect,
    Minus,
    Delta,
    Convert,
}

impl RelOp {
    pub fn kind(&self) -> RelKind {
        match self {
            RelOp::Scan { .. } => RelKind::Scan,
            RelOp::IndexSeek { .. } => RelKind::IndexSeek,
            RelOp::IndexJoin { .. } => RelKind::IndexJoin,
            RelOp::Values { .. } => RelKind::Values,
            RelOp::Filter { .. } => RelKind::Filter,
            RelOp::Project { .. } => RelKind::Project,
            RelOp::Join { .. } => RelKind::Join,
            RelOp::Aggregate { .. } => RelKind::Aggregate,
            RelOp::Sort { .. } => RelKind::Sort,
            RelOp::Window { .. } => RelKind::Window,
            RelOp::Union { .. } => RelKind::Union,
            RelOp::Intersect { .. } => RelKind::Intersect,
            RelOp::Minus { .. } => RelKind::Minus,
            RelOp::Delta => RelKind::Delta,
            RelOp::Convert { .. } => RelKind::Convert,
        }
    }

    /// Digest of the operator payload alone (no inputs, no convention).
    pub fn payload_digest(&self) -> String {
        match self {
            RelOp::Scan { table } => format!("Scan({})", table.qualified_name()),
            RelOp::IndexSeek {
                table,
                index,
                seek,
                projection,
            } => {
                let mut s = format!(
                    "IndexSeek({}, {}, {}",
                    table.qualified_name(),
                    index.digest(),
                    seek.digest()
                );
                if let Some(cols) = projection {
                    let cs: Vec<String> = cols.iter().map(|c| format!("${c}")).collect();
                    s.push_str(&format!(", proj=[{}]", cs.join(",")));
                }
                s.push(')');
                s
            }
            RelOp::IndexJoin {
                kind,
                condition,
                table,
                index,
                left_keys,
            } => {
                let ks: Vec<String> = left_keys.iter().map(|k| format!("${k}")).collect();
                format!(
                    "IndexJoin({}, {}, {}, keys=[{}], {})",
                    kind.name(),
                    table.qualified_name(),
                    index.digest(),
                    ks.join(","),
                    condition.digest()
                )
            }
            RelOp::Values { tuples, row_type } => {
                let mut s = format!("Values(arity={}", row_type.arity());
                for t in tuples {
                    s.push(';');
                    for (i, v) in t.iter().enumerate() {
                        if i > 0 {
                            s.push(',');
                        }
                        s.push_str(&v.to_string());
                    }
                }
                s.push(')');
                s
            }
            RelOp::Filter { condition } => format!("Filter({})", condition.digest()),
            RelOp::Project { exprs, names } => {
                let parts: Vec<String> = exprs
                    .iter()
                    .zip(names.iter())
                    .map(|(e, n)| format!("{n}={e}"))
                    .collect();
                format!("Project({})", parts.join(", "))
            }
            RelOp::Join { kind, condition } => {
                format!("Join({}, {})", kind.name(), condition.digest())
            }
            RelOp::Aggregate { group, aggs } => {
                let g: Vec<String> = group.iter().map(|i| format!("${i}")).collect();
                let a: Vec<String> = aggs.iter().map(|c| format!("{}={}", c.name, c)).collect();
                format!(
                    "Aggregate(group=[{}], aggs=[{}])",
                    g.join(", "),
                    a.join(", ")
                )
            }
            RelOp::Sort {
                collation,
                offset,
                fetch,
            } => {
                let mut s = format!("Sort([{}]", collation_to_string(collation));
                if let Some(o) = offset {
                    s.push_str(&format!(", offset={o}"));
                }
                if let Some(f) = fetch {
                    s.push_str(&format!(", fetch={f}"));
                }
                s.push(')');
                s
            }
            RelOp::Window { functions } => {
                let parts: Vec<String> = functions.iter().map(|w| w.to_string()).collect();
                format!("Window({})", parts.join(", "))
            }
            RelOp::Union { all } => format!("Union(all={all})"),
            RelOp::Intersect { all } => format!("Intersect(all={all})"),
            RelOp::Minus { all } => format!("Minus(all={all})"),
            RelOp::Delta => "Delta".to_string(),
            RelOp::Convert { from } => format!("Convert(from={from})"),
        }
    }
}

impl fmt::Debug for RelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.payload_digest())
    }
}

/// A node of the relational-operator tree. Immutable; shared via `Arc`.
pub struct RelNode {
    pub op: RelOp,
    pub convention: Convention,
    pub inputs: Vec<Rel>,
    row_type: OnceLock<RowType>,
}

/// Shared relational expression handle.
pub type Rel = Arc<RelNode>;

impl RelNode {
    pub fn new(op: RelOp, convention: Convention, inputs: Vec<Rel>) -> Rel {
        Arc::new(RelNode {
            op,
            convention,
            inputs,
            row_type: OnceLock::new(),
        })
    }

    /// A node in the logical convention.
    pub fn logical(op: RelOp, inputs: Vec<Rel>) -> Rel {
        RelNode::new(op, Convention::none(), inputs)
    }

    pub fn kind(&self) -> RelKind {
        self.op.kind()
    }

    pub fn input(&self, i: usize) -> &Rel {
        &self.inputs[i]
    }

    /// The output row type, derived once and cached.
    pub fn row_type(&self) -> &RowType {
        self.row_type
            .get_or_init(|| derive_row_type(&self.op, &self.inputs))
    }

    /// Rebuilds this node with new inputs (same op and convention).
    pub fn with_inputs(&self, inputs: Vec<Rel>) -> Rel {
        RelNode::new(self.op.clone(), self.convention.clone(), inputs)
    }

    /// Rebuilds this node in another convention.
    pub fn with_convention(&self, convention: Convention) -> Rel {
        RelNode::new(self.op.clone(), convention, self.inputs.clone())
    }

    /// Full recursive digest identifying this expression tree.
    pub fn digest(&self) -> String {
        let children: Vec<String> = self.inputs.iter().map(|i| i.digest()).collect();
        self.digest_with(&children)
    }

    /// Digest given pre-computed child identifiers (planners pass group ids
    /// here so equivalent children produce equal digests).
    pub fn digest_with(&self, children: &[String]) -> String {
        let mut s = format!("{}@{}", self.op.payload_digest(), self.convention);
        if !children.is_empty() {
            s.push('[');
            s.push_str(&children.join("|"));
            s.push(']');
        }
        s
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        1 + self.inputs.iter().map(|i| i.node_count()).sum::<usize>()
    }

    /// Visits every row expression carried by this plan tree (filter and
    /// join conditions, projection expressions), top-down. Used by the
    /// prepared-statement layer to discover dynamic parameters.
    pub fn visit_exprs(&self, f: &mut impl FnMut(&crate::rex::RexNode)) {
        match &self.op {
            RelOp::Filter { condition }
            | RelOp::Join { condition, .. }
            | RelOp::IndexJoin { condition, .. } => f(condition),
            RelOp::Project { exprs, .. } => {
                for e in exprs {
                    f(e);
                }
            }
            RelOp::IndexSeek { seek, .. } => {
                for e in seek.exprs() {
                    f(e);
                }
            }
            _ => {}
        }
        for i in &self.inputs {
            i.visit_exprs(f);
        }
    }
}

impl fmt::Debug for RelNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.digest())
    }
}

impl PartialEq for RelNode {
    fn eq(&self, other: &Self) -> bool {
        self.digest() == other.digest()
    }
}

fn derive_row_type(op: &RelOp, inputs: &[Rel]) -> RowType {
    match op {
        RelOp::Scan { table } => table.table.row_type(),
        RelOp::IndexSeek {
            table, projection, ..
        } => {
            let base = table.table.row_type();
            match projection {
                None => base,
                Some(cols) => RowType::new(cols.iter().map(|c| base.field(*c).clone()).collect()),
            }
        }
        RelOp::IndexJoin { kind, table, .. } => {
            let left = inputs[0].row_type();
            if !kind.projects_right() {
                return left.clone();
            }
            let right = table.table.row_type();
            let r = if kind.generates_nulls_on_right() {
                right.nullified()
            } else {
                right
            };
            left.join(&r)
        }
        RelOp::Values { row_type, .. } => row_type.clone(),
        RelOp::Filter { .. } | RelOp::Delta | RelOp::Convert { .. } => inputs[0].row_type().clone(),
        RelOp::Project { exprs, names } => RowType::new(
            exprs
                .iter()
                .zip(names.iter())
                .map(|(e, n)| Field::new(n.clone(), e.ty().clone()))
                .collect(),
        ),
        RelOp::Join { kind, .. } => {
            let left = inputs[0].row_type();
            if !kind.projects_right() {
                return left.clone();
            }
            let right = inputs[1].row_type();
            let l = if kind.generates_nulls_on_left() {
                left.nullified()
            } else {
                left.clone()
            };
            let r = if kind.generates_nulls_on_right() {
                right.nullified()
            } else {
                right.clone()
            };
            l.join(&r)
        }
        RelOp::Aggregate { group, aggs } => {
            let input = inputs[0].row_type();
            let mut fields: Vec<Field> = group.iter().map(|i| input.field(*i).clone()).collect();
            for a in aggs {
                fields.push(Field::new(a.name.clone(), a.ty.clone()));
            }
            RowType::new(fields)
        }
        RelOp::Sort { .. } => inputs[0].row_type().clone(),
        RelOp::Window { functions } => {
            let mut fields = inputs[0].row_type().fields.clone();
            for w in functions {
                fields.push(Field::new(w.name.clone(), w.ty.clone()));
            }
            RowType::new(fields)
        }
        RelOp::Union { .. } | RelOp::Intersect { .. } | RelOp::Minus { .. } => {
            inputs[0].row_type().clone()
        }
    }
}

// ---------------------------------------------------------------------
// Convenience constructors for logical nodes (used by rules and tests;
// the public entry point for applications is `RelBuilder`).
// ---------------------------------------------------------------------

pub fn scan(table: TableRef) -> Rel {
    RelNode::logical(RelOp::Scan { table }, vec![])
}

pub fn values(row_type: RowType, tuples: Vec<Row>) -> Rel {
    RelNode::logical(RelOp::Values { row_type, tuples }, vec![])
}

/// Filter; collapses to the input when the condition is literally TRUE.
pub fn filter(input: Rel, condition: RexNode) -> Rel {
    if condition.is_always_true() {
        return input;
    }
    RelNode::logical(RelOp::Filter { condition }, vec![input])
}

pub fn project(input: Rel, exprs: Vec<RexNode>, names: Vec<String>) -> Rel {
    RelNode::logical(RelOp::Project { exprs, names }, vec![input])
}

pub fn join(left: Rel, right: Rel, kind: JoinKind, condition: RexNode) -> Rel {
    RelNode::logical(RelOp::Join { kind, condition }, vec![left, right])
}

pub fn index_seek(
    table: TableRef,
    index: IndexDef,
    seek: SeekSpec,
    projection: Option<Vec<usize>>,
) -> Rel {
    RelNode::logical(
        RelOp::IndexSeek {
            table,
            index,
            seek,
            projection,
        },
        vec![],
    )
}

pub fn index_join(
    left: Rel,
    table: TableRef,
    index: IndexDef,
    kind: JoinKind,
    condition: RexNode,
    left_keys: Vec<usize>,
) -> Rel {
    RelNode::logical(
        RelOp::IndexJoin {
            kind,
            condition,
            table,
            index,
            left_keys,
        },
        vec![left],
    )
}

pub fn aggregate(input: Rel, group: Vec<usize>, aggs: Vec<AggCall>) -> Rel {
    RelNode::logical(RelOp::Aggregate { group, aggs }, vec![input])
}

pub fn sort(input: Rel, collation: Collation) -> Rel {
    RelNode::logical(
        RelOp::Sort {
            collation,
            offset: None,
            fetch: None,
        },
        vec![input],
    )
}

pub fn sort_limit(
    input: Rel,
    collation: Collation,
    offset: Option<usize>,
    fetch: Option<usize>,
) -> Rel {
    RelNode::logical(
        RelOp::Sort {
            collation,
            offset,
            fetch,
        },
        vec![input],
    )
}

pub fn window(input: Rel, functions: Vec<WindowFn>) -> Rel {
    RelNode::logical(RelOp::Window { functions }, vec![input])
}

pub fn union(inputs: Vec<Rel>, all: bool) -> Rel {
    RelNode::logical(RelOp::Union { all }, inputs)
}

pub fn intersect(inputs: Vec<Rel>, all: bool) -> Rel {
    RelNode::logical(RelOp::Intersect { all }, inputs)
}

pub fn minus(inputs: Vec<Rel>, all: bool) -> Rel {
    RelNode::logical(RelOp::Minus { all }, inputs)
}

pub fn delta(input: Rel) -> Rel {
    RelNode::logical(RelOp::Delta, vec![input])
}

/// A Values node producing a single empty row: the input of a SELECT with
/// no FROM clause.
pub fn one_row() -> Rel {
    values(RowType::empty(), vec![vec![]])
}

/// A Values node producing no rows with the given type (result of pruning).
pub fn empty(row_type: RowType) -> Rel {
    values(row_type, vec![])
}

/// Literal helper for tests/benches.
pub fn int_row(vals: &[i64]) -> Row {
    vals.iter().map(|v| Datum::Int(*v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::MemTable;
    use crate::types::{RowTypeBuilder, TypeKind};

    fn emp_ref() -> TableRef {
        let t = MemTable::new(
            RowTypeBuilder::new()
                .add_not_null("deptno", TypeKind::Integer)
                .add("sal", TypeKind::Double)
                .build(),
            vec![],
        );
        TableRef::new("hr", "emp", t)
    }

    #[test]
    fn scan_row_type_comes_from_table() {
        let s = scan(emp_ref());
        assert_eq!(s.row_type().arity(), 2);
        assert_eq!(s.row_type().field(0).name, "deptno");
    }

    #[test]
    fn filter_preserves_row_type() {
        let s = scan(emp_ref());
        let f = filter(
            s.clone(),
            RexNode::input(0, RelType::not_null(TypeKind::Integer)).gt(RexNode::lit_int(5)),
        );
        assert_eq!(f.row_type(), s.row_type());
        assert_eq!(f.kind(), RelKind::Filter);
    }

    #[test]
    fn trivially_true_filter_collapses() {
        let s = scan(emp_ref());
        let f = filter(s.clone(), RexNode::true_lit());
        assert_eq!(f.digest(), s.digest());
    }

    #[test]
    fn join_row_type_concatenation_and_nullification() {
        let l = scan(emp_ref());
        let r = scan(emp_ref());
        let j = join(l.clone(), r.clone(), JoinKind::Left, RexNode::true_lit());
        assert_eq!(j.row_type().arity(), 4);
        // Left join nullifies the right side.
        assert!(j.row_type().field(2).ty.nullable || j.row_type().field(3).ty.nullable);
        let semi = join(l, r, JoinKind::Semi, RexNode::true_lit());
        assert_eq!(semi.row_type().arity(), 2);
    }

    #[test]
    fn aggregate_row_type() {
        let s = scan(emp_ref());
        let agg = aggregate(
            s.clone(),
            vec![0],
            vec![
                AggCall::count_star("c"),
                AggCall::new(AggFunc::Sum, vec![1], false, "s", s.row_type()),
            ],
        );
        let rt = agg.row_type();
        assert_eq!(rt.arity(), 3);
        assert_eq!(rt.field(0).name, "deptno");
        assert_eq!(rt.field(1).name, "c");
        assert_eq!(rt.field(1).ty.kind, TypeKind::Integer);
        assert_eq!(rt.field(2).ty.kind, TypeKind::Double);
    }

    #[test]
    fn digest_distinguishes_convention() {
        let s = scan(emp_ref());
        let phys = s.with_convention(Convention::enumerable());
        assert_ne!(s.digest(), phys.digest());
        assert!(s.digest().contains("@logical"));
        assert!(phys.digest().contains("@enumerable"));
    }

    #[test]
    fn digest_identical_for_equal_trees() {
        let a = filter(
            scan(emp_ref()),
            RexNode::input(0, RelType::not_null(TypeKind::Integer)).gt(RexNode::lit_int(5)),
        );
        let b = filter(
            scan(emp_ref()),
            RexNode::input(0, RelType::not_null(TypeKind::Integer)).gt(RexNode::lit_int(5)),
        );
        assert_eq!(a.digest(), b.digest());
        assert_eq!(&*a, &*b);
    }

    #[test]
    fn node_count() {
        let s = scan(emp_ref());
        let f = filter(
            s,
            RexNode::input(0, RelType::not_null(TypeKind::Integer)).gt(RexNode::lit_int(5)),
        );
        let p = project(f, vec![RexNode::lit_int(1)], vec!["one".into()]);
        assert_eq!(p.node_count(), 3);
    }

    #[test]
    fn project_row_type_uses_names_and_types() {
        let s = scan(emp_ref());
        let p = project(
            s,
            vec![RexNode::input(1, RelType::nullable(TypeKind::Double))],
            vec!["salary".into()],
        );
        assert_eq!(p.row_type().field(0).name, "salary");
        assert_eq!(p.row_type().field(0).ty.kind, TypeKind::Double);
    }

    #[test]
    fn one_row_and_empty() {
        assert_eq!(one_row().row_type().arity(), 0);
        match &one_row().op {
            RelOp::Values { tuples, .. } => assert_eq!(tuples.len(), 1),
            _ => panic!(),
        }
        let e = empty(RowTypeBuilder::new().add("x", TypeKind::Integer).build());
        match &e.op {
            RelOp::Values { tuples, .. } => assert!(tuples.is_empty()),
            _ => panic!(),
        }
    }

    #[test]
    fn window_row_type_appends_functions() {
        let s = scan(emp_ref());
        let w = window(
            s,
            vec![WindowFn {
                func: WinFunc::Agg(AggFunc::Sum),
                args: vec![1],
                partition: vec![0],
                order: vec![],
                frame: WindowFrame::default_frame(),
                name: "running".into(),
                ty: RelType::nullable(TypeKind::Double),
            }],
        );
        assert_eq!(w.row_type().arity(), 3);
        assert_eq!(w.row_type().field(2).name, "running");
    }
}
