//! Execution SPI. Core plans; it does not execute (the paper's Calcite
//! "omits ... algorithms to process data"). Engines — the enumerable
//! convention, adapters — register a [`ConventionExecutor`] per calling
//! convention, and the [`ExecContext`] dispatches plan subtrees to the
//! engine named by each node's convention trait.

use crate::datum::{columns_to_rows, Column, Row};
use crate::error::{CalciteError, Result};
use crate::rel::{Rel, RelOp};
use crate::traits::Convention;
use crate::types::TypeKind;
use std::collections::HashMap;
use std::sync::Arc;

/// Iterator of rows produced by an executor.
pub type RowIter = Box<dyn Iterator<Item = Row> + Send>;

/// Pull-based stream of column batches — the batch-mode sibling of
/// [`RowIter`]. Each batch is a vector of equal-length [`Column`]s (one
/// per output field). Batch-capable executors produce these so operators
/// can run tight loops over typed vectors instead of paying per-row
/// dispatch.
pub trait BatchIter: Send {
    /// Number of columns in every batch.
    fn arity(&self) -> usize;

    /// The next batch, or `None` when the stream is exhausted.
    fn next_batch(&mut self) -> Result<Option<Vec<Column>>>;
}

/// A materialized [`BatchIter`] over pre-built batches.
pub struct VecBatchIter {
    arity: usize,
    batches: std::vec::IntoIter<Vec<Column>>,
}

impl VecBatchIter {
    pub fn new(arity: usize, batches: Vec<Vec<Column>>) -> VecBatchIter {
        VecBatchIter {
            arity,
            batches: batches.into_iter(),
        }
    }
}

impl BatchIter for VecBatchIter {
    fn arity(&self) -> usize {
        self.arity
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Column>>> {
        Ok(self.batches.next())
    }
}

/// Adapts a [`RowIter`] into a [`BatchIter`] by pivoting `batch_size`
/// rows at a time into columns of the given kinds — the fallback bridge
/// for sources without a native columnar path.
pub struct RowBatcher {
    rows: RowIter,
    kinds: Vec<TypeKind>,
    batch_size: usize,
}

impl RowBatcher {
    pub fn new(rows: RowIter, kinds: Vec<TypeKind>, batch_size: usize) -> RowBatcher {
        RowBatcher {
            rows,
            kinds,
            batch_size: batch_size.max(1),
        }
    }
}

impl BatchIter for RowBatcher {
    fn arity(&self) -> usize {
        self.kinds.len()
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Column>>> {
        let mut cols: Vec<Column> = self
            .kinds
            .iter()
            .map(|k| Column::for_kind_with_capacity(k, self.batch_size))
            .collect();
        let mut n = 0;
        for row in self.rows.by_ref().take(self.batch_size) {
            for (c, d) in cols.iter_mut().zip(row) {
                c.push(d);
            }
            n += 1;
        }
        if n == 0 {
            Ok(None)
        } else {
            Ok(Some(cols))
        }
    }
}

/// Drains a [`BatchIter`] into rows (errors surface eagerly, matching the
/// materializing style of the row executors).
pub fn collect_batches_to_rows(mut it: Box<dyn BatchIter>) -> Result<Vec<Row>> {
    let mut out = vec![];
    while let Some(cols) = it.next_batch()? {
        out.extend(columns_to_rows(&cols));
    }
    Ok(out)
}

/// Executes plan subtrees belonging to one calling convention.
pub trait ConventionExecutor: Send + Sync {
    fn convention(&self) -> Convention;

    /// Executes `rel` (whose convention is this executor's). Children in
    /// foreign conventions are executed through `ctx`.
    fn execute(&self, rel: &Rel, ctx: &ExecContext) -> Result<RowIter>;
}

/// Registry of executors, one per convention.
#[derive(Default, Clone)]
pub struct ExecContext {
    executors: HashMap<Convention, Arc<dyn ConventionExecutor>>,
}

impl ExecContext {
    pub fn new() -> ExecContext {
        ExecContext::default()
    }

    pub fn register(&mut self, executor: Arc<dyn ConventionExecutor>) {
        self.executors.insert(executor.convention(), executor);
    }

    pub fn has_convention(&self, conv: &Convention) -> bool {
        self.executors.contains_key(conv)
    }

    pub fn conventions(&self) -> Vec<Convention> {
        self.executors.keys().cloned().collect()
    }

    /// Executes a plan node, dispatching on its convention. `Convert`
    /// nodes are handled here: they execute their input in its own
    /// convention and pass rows through (the iterator interface *is* the
    /// transfer).
    pub fn execute(&self, rel: &Rel) -> Result<RowIter> {
        if let RelOp::Convert { .. } = &rel.op {
            return self.execute(rel.input(0));
        }
        let ex = self.executors.get(&rel.convention).ok_or_else(|| {
            CalciteError::execution(format!(
                "no executor registered for convention '{}' (node {})",
                rel.convention,
                rel.op.payload_digest()
            ))
        })?;
        ex.execute(rel, self)
    }

    /// Executes and materializes all rows.
    pub fn execute_collect(&self, rel: &Rel) -> Result<Vec<Row>> {
        Ok(self.execute(rel)?.collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemTable, TableRef};
    use crate::datum::Datum;
    use crate::rel::{self, RelNode};
    use crate::types::{RowTypeBuilder, TypeKind};

    struct ScanOnly(Convention);

    impl ConventionExecutor for ScanOnly {
        fn convention(&self) -> Convention {
            self.0.clone()
        }
        fn execute(&self, rel: &Rel, _ctx: &ExecContext) -> Result<RowIter> {
            match &rel.op {
                RelOp::Scan { table } => table.table.scan(),
                other => Err(CalciteError::execution(format!(
                    "ScanOnly cannot execute {other:?}"
                ))),
            }
        }
    }

    fn scan_in(conv: &Convention) -> Rel {
        let t = MemTable::new(
            RowTypeBuilder::new().add("a", TypeKind::Integer).build(),
            vec![vec![Datum::Int(1)], vec![Datum::Int(2)]],
        );
        rel::scan(TableRef::new("s", "t", t)).with_convention(conv.clone())
    }

    #[test]
    fn dispatch_by_convention() {
        let conv = Convention::new("test");
        let mut ctx = ExecContext::new();
        ctx.register(Arc::new(ScanOnly(conv.clone())));
        let rows = ctx.execute_collect(&scan_in(&conv)).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn missing_executor_is_an_error() {
        let ctx = ExecContext::new();
        let err = ctx.execute_collect(&scan_in(&Convention::new("nope")));
        assert!(matches!(err, Err(CalciteError::Execution(_))));
    }

    #[test]
    fn row_batcher_pivots_and_round_trips() {
        let rows: Vec<Row> = (0..10)
            .map(|i| {
                vec![
                    Datum::Int(i),
                    if i % 3 == 0 {
                        Datum::Null
                    } else {
                        Datum::str(format!("s{i}"))
                    },
                ]
            })
            .collect();
        let kinds = vec![TypeKind::Integer, TypeKind::Varchar];
        let mut it = RowBatcher::new(Box::new(rows.clone().into_iter()), kinds, 4);
        assert_eq!(it.arity(), 2);
        let b1 = it.next_batch().unwrap().unwrap();
        assert_eq!(b1[0].len(), 4);
        let mut collected = columns_to_rows(&b1);
        while let Some(b) = it.next_batch().unwrap() {
            collected.extend(columns_to_rows(&b));
        }
        assert_eq!(collected, rows);
    }

    #[test]
    fn vec_batch_iter_collects() {
        let col = Column::from_datums(&TypeKind::Integer, vec![Datum::Int(1), Datum::Int(2)]);
        let it = VecBatchIter::new(1, vec![vec![col.clone()], vec![col]]);
        let rows = collect_batches_to_rows(Box::new(it)).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[3], vec![Datum::Int(2)]);
    }

    #[test]
    fn convert_nodes_delegate_to_input_convention() {
        let backend = Convention::new("backend");
        let mut ctx = ExecContext::new();
        ctx.register(Arc::new(ScanOnly(backend.clone())));
        let inner = scan_in(&backend);
        let conv_node = RelNode::new(
            RelOp::Convert {
                from: backend.clone(),
            },
            Convention::enumerable(),
            vec![inner],
        );
        // No enumerable executor registered, but Convert is handled by the
        // context itself.
        let rows = ctx.execute_collect(&conv_node).unwrap();
        assert_eq!(rows.len(), 2);
    }
}
