//! Execution SPI. Core plans; it does not execute (the paper's Calcite
//! "omits ... algorithms to process data"). Engines — the enumerable
//! convention, adapters — register a [`ConventionExecutor`] per calling
//! convention, and the [`ExecContext`] dispatches plan subtrees to the
//! engine named by each node's convention trait.

use crate::datum::Row;
use crate::error::{CalciteError, Result};
use crate::rel::{Rel, RelOp};
use crate::traits::Convention;
use std::collections::HashMap;
use std::sync::Arc;

/// Iterator of rows produced by an executor.
pub type RowIter = Box<dyn Iterator<Item = Row> + Send>;

/// Executes plan subtrees belonging to one calling convention.
pub trait ConventionExecutor: Send + Sync {
    fn convention(&self) -> Convention;

    /// Executes `rel` (whose convention is this executor's). Children in
    /// foreign conventions are executed through `ctx`.
    fn execute(&self, rel: &Rel, ctx: &ExecContext) -> Result<RowIter>;
}

/// Registry of executors, one per convention.
#[derive(Default, Clone)]
pub struct ExecContext {
    executors: HashMap<Convention, Arc<dyn ConventionExecutor>>,
}

impl ExecContext {
    pub fn new() -> ExecContext {
        ExecContext::default()
    }

    pub fn register(&mut self, executor: Arc<dyn ConventionExecutor>) {
        self.executors.insert(executor.convention(), executor);
    }

    pub fn has_convention(&self, conv: &Convention) -> bool {
        self.executors.contains_key(conv)
    }

    pub fn conventions(&self) -> Vec<Convention> {
        self.executors.keys().cloned().collect()
    }

    /// Executes a plan node, dispatching on its convention. `Convert`
    /// nodes are handled here: they execute their input in its own
    /// convention and pass rows through (the iterator interface *is* the
    /// transfer).
    pub fn execute(&self, rel: &Rel) -> Result<RowIter> {
        if let RelOp::Convert { .. } = &rel.op {
            return self.execute(rel.input(0));
        }
        let ex = self.executors.get(&rel.convention).ok_or_else(|| {
            CalciteError::execution(format!(
                "no executor registered for convention '{}' (node {})",
                rel.convention,
                rel.op.payload_digest()
            ))
        })?;
        ex.execute(rel, self)
    }

    /// Executes and materializes all rows.
    pub fn execute_collect(&self, rel: &Rel) -> Result<Vec<Row>> {
        Ok(self.execute(rel)?.collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemTable, TableRef};
    use crate::datum::Datum;
    use crate::rel::{self, RelNode};
    use crate::types::{RowTypeBuilder, TypeKind};

    struct ScanOnly(Convention);

    impl ConventionExecutor for ScanOnly {
        fn convention(&self) -> Convention {
            self.0.clone()
        }
        fn execute(&self, rel: &Rel, _ctx: &ExecContext) -> Result<RowIter> {
            match &rel.op {
                RelOp::Scan { table } => table.table.scan(),
                other => Err(CalciteError::execution(format!(
                    "ScanOnly cannot execute {other:?}"
                ))),
            }
        }
    }

    fn scan_in(conv: &Convention) -> Rel {
        let t = MemTable::new(
            RowTypeBuilder::new().add("a", TypeKind::Integer).build(),
            vec![vec![Datum::Int(1)], vec![Datum::Int(2)]],
        );
        rel::scan(TableRef::new("s", "t", t)).with_convention(conv.clone())
    }

    #[test]
    fn dispatch_by_convention() {
        let conv = Convention::new("test");
        let mut ctx = ExecContext::new();
        ctx.register(Arc::new(ScanOnly(conv.clone())));
        let rows = ctx.execute_collect(&scan_in(&conv)).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn missing_executor_is_an_error() {
        let ctx = ExecContext::new();
        let err = ctx.execute_collect(&scan_in(&Convention::new("nope")));
        assert!(matches!(err, Err(CalciteError::Execution(_))));
    }

    #[test]
    fn convert_nodes_delegate_to_input_convention() {
        let backend = Convention::new("backend");
        let mut ctx = ExecContext::new();
        ctx.register(Arc::new(ScanOnly(backend.clone())));
        let inner = scan_in(&backend);
        let conv_node = RelNode::new(
            RelOp::Convert {
                from: backend.clone(),
            },
            Convention::enumerable(),
            vec![inner],
        );
        // No enumerable executor registered, but Convert is handled by the
        // context itself.
        let rows = ctx.execute_collect(&conv_node).unwrap();
        assert_eq!(rows.len(), 2);
    }
}
