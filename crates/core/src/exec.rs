//! Execution SPI. Core plans; it does not execute (the paper's Calcite
//! "omits ... algorithms to process data"). Engines — the enumerable
//! convention, adapters — register a [`ConventionExecutor`] per calling
//! convention, and the [`ExecContext`] dispatches plan subtrees to the
//! engine named by each node's convention trait.

use crate::datum::{columns_to_rows, Column, Datum, Row};
use crate::error::{CalciteError, Result};
use crate::rel::{Rel, RelOp};
use crate::traits::Convention;
use crate::types::TypeKind;
use std::collections::HashMap;
use std::sync::Arc;

/// Iterator of rows produced by an executor.
pub type RowIter = Box<dyn Iterator<Item = Row> + Send>;

/// Pull-based stream of column batches — the batch-mode sibling of
/// [`RowIter`]. Each batch is a vector of equal-length [`Column`]s (one
/// per output field). Batch-capable executors produce these so operators
/// can run tight loops over typed vectors instead of paying per-row
/// dispatch.
pub trait BatchIter: Send {
    /// Number of columns in every batch.
    fn arity(&self) -> usize;

    /// The next batch, or `None` when the stream is exhausted.
    fn next_batch(&mut self) -> Result<Option<Vec<Column>>>;
}

/// The operator-level contract for streaming batch engines: a pull-based
/// tree where `open` prepares an operator to produce (pipeline breakers
/// run their build phase here — hash-table build, Top-K fill) and `next`
/// yields one batch at a time. `B` is the engine's batch type, so the
/// combinators below work for any columnar representation.
///
/// Protocol: the driver calls `open` exactly once on the root before the
/// first `next`; each operator is responsible for opening the children it
/// pulls (usually inside its own `open`, lazily for deferred inputs).
pub trait Operator<B>: Send {
    /// Prepares the operator: opens children, runs any build phase.
    fn open(&mut self) -> Result<()> {
        Ok(())
    }

    /// The next batch, or `None` when the stream is exhausted.
    fn next(&mut self) -> Result<Option<B>>;
}

/// A boxed streaming operator.
pub type BoxOperator<B> = Box<dyn Operator<B>>;

/// Streams pre-built batches — the tail of a build-then-stream operator
/// (aggregate and sort results, the outer-join padding batch).
pub struct BatchesOp<B> {
    batches: std::collections::VecDeque<B>,
}

impl<B> BatchesOp<B> {
    pub fn new(batches: impl IntoIterator<Item = B>) -> BatchesOp<B> {
        BatchesOp {
            batches: batches.into_iter().collect(),
        }
    }
}

impl<B: Send> Operator<B> for BatchesOp<B> {
    fn next(&mut self) -> Result<Option<B>> {
        Ok(self.batches.pop_front())
    }
}

/// Applies a per-batch kernel to a child stream. The kernel may drop a
/// batch entirely (`Ok(None)`, e.g. a filter that selected nothing), in
/// which case the next child batch is pulled — so downstream operators
/// never see empty batches.
pub struct FilterMapOp<B, F> {
    child: BoxOperator<B>,
    kernel: F,
}

impl<B, F> FilterMapOp<B, F>
where
    F: FnMut(B) -> Result<Option<B>> + Send,
{
    pub fn new(child: BoxOperator<B>, kernel: F) -> FilterMapOp<B, F> {
        FilterMapOp { child, kernel }
    }
}

impl<B: Send, F> Operator<B> for FilterMapOp<B, F>
where
    F: FnMut(B) -> Result<Option<B>> + Send,
{
    fn open(&mut self) -> Result<()> {
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<B>> {
        while let Some(b) = self.child.next()? {
            if let Some(out) = (self.kernel)(b)? {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }
}

/// Concatenates child streams in order (UNION ALL). Children are opened
/// lazily, right before their first pull, so no child runs its build
/// phase until the stream actually reaches it.
pub struct ChainOp<B> {
    children: Vec<BoxOperator<B>>,
    current: usize,
    opened: bool,
}

impl<B> ChainOp<B> {
    pub fn new(children: Vec<BoxOperator<B>>) -> ChainOp<B> {
        ChainOp {
            children,
            current: 0,
            opened: false,
        }
    }
}

impl<B: Send> Operator<B> for ChainOp<B> {
    fn next(&mut self) -> Result<Option<B>> {
        while self.current < self.children.len() {
            if !self.opened {
                self.children[self.current].open()?;
                self.opened = true;
            }
            if let Some(b) = self.children[self.current].next()? {
                return Ok(Some(b));
            }
            self.current += 1;
            self.opened = false;
        }
        Ok(None)
    }
}

/// A materialized [`BatchIter`] over pre-built batches.
pub struct VecBatchIter {
    arity: usize,
    batches: std::vec::IntoIter<Vec<Column>>,
}

impl VecBatchIter {
    pub fn new(arity: usize, batches: Vec<Vec<Column>>) -> VecBatchIter {
        VecBatchIter {
            arity,
            batches: batches.into_iter(),
        }
    }
}

impl BatchIter for VecBatchIter {
    fn arity(&self) -> usize {
        self.arity
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Column>>> {
        Ok(self.batches.next())
    }
}

/// Adapts a [`RowIter`] into a [`BatchIter`] by pivoting `batch_size`
/// rows at a time into columns of the given kinds — the fallback bridge
/// for sources without a native columnar path.
pub struct RowBatcher {
    rows: RowIter,
    kinds: Vec<TypeKind>,
    batch_size: usize,
}

impl RowBatcher {
    pub fn new(rows: RowIter, kinds: Vec<TypeKind>, batch_size: usize) -> RowBatcher {
        RowBatcher {
            rows,
            kinds,
            batch_size: batch_size.max(1),
        }
    }
}

impl BatchIter for RowBatcher {
    fn arity(&self) -> usize {
        self.kinds.len()
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Column>>> {
        let mut cols: Vec<Column> = self
            .kinds
            .iter()
            .map(|k| Column::for_kind_with_capacity(k, self.batch_size))
            .collect();
        let mut n = 0;
        for row in self.rows.by_ref().take(self.batch_size) {
            for (c, d) in cols.iter_mut().zip(row) {
                c.push(d);
            }
            n += 1;
        }
        if n == 0 {
            Ok(None)
        } else {
            Ok(Some(cols))
        }
    }
}

/// A [`BatchIter`] over whole-table column vectors, yielding contiguous
/// `batch_size`-row slices one pull at a time. Only the slice being
/// served is copied; the backing columns are shared (typically behind an
/// `Arc` snapshot taken by the table).
pub struct SlicedColumns<S> {
    source: S,
    arity: usize,
    len: usize,
    pos: usize,
    batch_size: usize,
}

impl<S: AsRef<[Column]> + Send> SlicedColumns<S> {
    pub fn new(source: S, batch_size: usize) -> SlicedColumns<S> {
        let cols = source.as_ref();
        let (arity, len) = (cols.len(), cols.first().map_or(0, Column::len));
        SlicedColumns {
            source,
            arity,
            len,
            pos: 0,
            batch_size: batch_size.max(1),
        }
    }
}

impl<S: AsRef<[Column]> + Send> BatchIter for SlicedColumns<S> {
    fn arity(&self) -> usize {
        self.arity
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Column>>> {
        if self.pos >= self.len {
            return Ok(None);
        }
        let take = self.batch_size.min(self.len - self.pos);
        let cols = self
            .source
            .as_ref()
            .iter()
            .map(|c| c.slice(self.pos, take))
            .collect();
        self.pos += take;
        Ok(Some(cols))
    }
}

/// Drains a [`BatchIter`] into rows (errors surface eagerly, matching the
/// materializing style of the row executors).
pub fn collect_batches_to_rows(mut it: Box<dyn BatchIter>) -> Result<Vec<Row>> {
    let mut out = vec![];
    while let Some(cols) = it.next_batch()? {
        out.extend(columns_to_rows(&cols));
    }
    Ok(out)
}

/// Executes plan subtrees belonging to one calling convention.
pub trait ConventionExecutor: Send + Sync {
    fn convention(&self) -> Convention;

    /// Executes `rel` (whose convention is this executor's). Children in
    /// foreign conventions are executed through `ctx`.
    fn execute(&self, rel: &Rel, ctx: &ExecContext) -> Result<RowIter>;
}

/// Registry of executors, one per convention, plus the dynamic-parameter
/// bindings of the current execution (empty outside prepared statements).
#[derive(Default, Clone)]
pub struct ExecContext {
    executors: HashMap<Convention, Arc<dyn ConventionExecutor>>,
    params: Arc<Vec<Datum>>,
}

impl ExecContext {
    pub fn new() -> ExecContext {
        ExecContext::default()
    }

    pub fn register(&mut self, executor: Arc<dyn ConventionExecutor>) {
        self.executors.insert(executor.convention(), executor);
    }

    /// A context sharing this one's executors with dynamic-parameter
    /// bindings attached. The prepared-statement layer calls this once
    /// per execution; engines read the values back through [`Self::bind`].
    pub fn with_params(&self, params: Vec<Datum>) -> ExecContext {
        ExecContext {
            executors: self.executors.clone(),
            params: Arc::new(params),
        }
    }

    /// The current execution's parameter bindings (empty by default).
    pub fn params(&self) -> &[Datum] {
        &self.params
    }

    /// Resolves an expression against this execution's bindings: every
    /// `DynamicParam` becomes the bound literal. Engines call this on
    /// each expression they are about to evaluate, so one compiled plan
    /// serves many executions with different bindings.
    pub fn bind(&self, e: &crate::rex::RexNode) -> Result<crate::rex::RexNode> {
        if e.has_dynamic_params() {
            e.bind_params(&self.params)
        } else {
            Ok(e.clone())
        }
    }

    pub fn has_convention(&self, conv: &Convention) -> bool {
        self.executors.contains_key(conv)
    }

    pub fn conventions(&self) -> Vec<Convention> {
        self.executors.keys().cloned().collect()
    }

    /// Executes a plan node, dispatching on its convention. `Convert`
    /// nodes are handled here: they execute their input in its own
    /// convention and pass rows through (the iterator interface *is* the
    /// transfer).
    pub fn execute(&self, rel: &Rel) -> Result<RowIter> {
        if let RelOp::Convert { .. } = &rel.op {
            return self.execute(rel.input(0));
        }
        let ex = self.executors.get(&rel.convention).ok_or_else(|| {
            CalciteError::execution(format!(
                "no executor registered for convention '{}' (node {})",
                rel.convention,
                rel.op.payload_digest()
            ))
        })?;
        ex.execute(rel, self)
    }

    /// Executes and materializes all rows.
    pub fn execute_collect(&self, rel: &Rel) -> Result<Vec<Row>> {
        Ok(self.execute(rel)?.collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemTable, TableRef};
    use crate::datum::Datum;
    use crate::rel::{self, RelNode};
    use crate::types::{RowTypeBuilder, TypeKind};

    struct ScanOnly(Convention);

    impl ConventionExecutor for ScanOnly {
        fn convention(&self) -> Convention {
            self.0.clone()
        }
        fn execute(&self, rel: &Rel, _ctx: &ExecContext) -> Result<RowIter> {
            match &rel.op {
                RelOp::Scan { table } => table.table.scan(),
                other => Err(CalciteError::execution(format!(
                    "ScanOnly cannot execute {other:?}"
                ))),
            }
        }
    }

    fn scan_in(conv: &Convention) -> Rel {
        let t = MemTable::new(
            RowTypeBuilder::new().add("a", TypeKind::Integer).build(),
            vec![vec![Datum::Int(1)], vec![Datum::Int(2)]],
        );
        rel::scan(TableRef::new("s", "t", t)).with_convention(conv.clone())
    }

    #[test]
    fn dispatch_by_convention() {
        let conv = Convention::new("test");
        let mut ctx = ExecContext::new();
        ctx.register(Arc::new(ScanOnly(conv.clone())));
        let rows = ctx.execute_collect(&scan_in(&conv)).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn missing_executor_is_an_error() {
        let ctx = ExecContext::new();
        let err = ctx.execute_collect(&scan_in(&Convention::new("nope")));
        assert!(matches!(err, Err(CalciteError::Execution(_))));
    }

    #[test]
    fn row_batcher_pivots_and_round_trips() {
        let rows: Vec<Row> = (0..10)
            .map(|i| {
                vec![
                    Datum::Int(i),
                    if i % 3 == 0 {
                        Datum::Null
                    } else {
                        Datum::str(format!("s{i}"))
                    },
                ]
            })
            .collect();
        let kinds = vec![TypeKind::Integer, TypeKind::Varchar];
        let mut it = RowBatcher::new(Box::new(rows.clone().into_iter()), kinds, 4);
        assert_eq!(it.arity(), 2);
        let b1 = it.next_batch().unwrap().unwrap();
        assert_eq!(b1[0].len(), 4);
        let mut collected = columns_to_rows(&b1);
        while let Some(b) = it.next_batch().unwrap() {
            collected.extend(columns_to_rows(&b));
        }
        assert_eq!(collected, rows);
    }

    #[test]
    fn vec_batch_iter_collects() {
        let col = Column::from_datums(&TypeKind::Integer, vec![Datum::Int(1), Datum::Int(2)]);
        let it = VecBatchIter::new(1, vec![vec![col.clone()], vec![col]]);
        let rows = collect_batches_to_rows(Box::new(it)).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[3], vec![Datum::Int(2)]);
    }

    #[test]
    fn operator_combinators_stream() {
        // FilterMap drops batches the kernel rejects; Chain opens children
        // lazily and concatenates.
        let evens = FilterMapOp::new(Box::new(BatchesOp::new(vec![1, 2, 3, 4])), |b: i32| {
            Ok((b % 2 == 0).then_some(b * 10))
        });
        let mut chain = ChainOp::new(vec![
            Box::new(evens) as BoxOperator<i32>,
            Box::new(BatchesOp::new(vec![7])),
        ]);
        chain.open().unwrap();
        let mut out = vec![];
        while let Some(b) = chain.next().unwrap() {
            out.push(b);
        }
        assert_eq!(out, vec![20, 40, 7]);
    }

    #[test]
    fn sliced_columns_serves_bounded_slices() {
        let col = Column::from_datums(&TypeKind::Integer, (0..10).map(Datum::Int));
        let mut it = SlicedColumns::new(vec![col], 4);
        assert_eq!(it.arity(), 1);
        let sizes: Vec<usize> =
            std::iter::from_fn(|| it.next_batch().unwrap().map(|cols| cols[0].len())).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn convert_nodes_delegate_to_input_convention() {
        let backend = Convention::new("backend");
        let mut ctx = ExecContext::new();
        ctx.register(Arc::new(ScanOnly(backend.clone())));
        let inner = scan_in(&backend);
        let conv_node = RelNode::new(
            RelOp::Convert {
                from: backend.clone(),
            },
            Convention::enumerable(),
            vec![inner],
        );
        // No enumerable executor registered, but Convert is handled by the
        // context itself.
        let rows = ctx.execute_collect(&conv_node).unwrap();
        assert_eq!(rows.len(), 2);
    }
}
