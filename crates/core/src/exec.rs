//! Execution SPI. Core plans; it does not execute (the paper's Calcite
//! "omits ... algorithms to process data"). Engines — the enumerable
//! convention, adapters — register a [`ConventionExecutor`] per calling
//! convention, and the [`ExecContext`] dispatches plan subtrees to the
//! engine named by each node's convention trait.

use crate::datum::{columns_to_rows, Column, Datum, Row};
use crate::error::{CalciteError, Result};
use crate::rel::{Rel, RelOp};
use crate::traits::Convention;
use crate::types::TypeKind;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Iterator of rows produced by an executor.
pub type RowIter = Box<dyn Iterator<Item = Row> + Send>;

/// Pull-based stream of column batches — the batch-mode sibling of
/// [`RowIter`]. Each batch is a vector of equal-length [`Column`]s (one
/// per output field). Batch-capable executors produce these so operators
/// can run tight loops over typed vectors instead of paying per-row
/// dispatch.
pub trait BatchIter: Send {
    /// Number of columns in every batch.
    fn arity(&self) -> usize;

    /// The next batch, or `None` when the stream is exhausted.
    fn next_batch(&mut self) -> Result<Option<Vec<Column>>>;
}

/// The operator-level contract for streaming batch engines: a pull-based
/// tree where `open` prepares an operator to produce (pipeline breakers
/// run their build phase here — hash-table build, Top-K fill) and `next`
/// yields one batch at a time. `B` is the engine's batch type, so the
/// combinators below work for any columnar representation.
///
/// Protocol: the driver calls `open` exactly once on the root before the
/// first `next`; each operator is responsible for opening the children it
/// pulls (usually inside its own `open`, lazily for deferred inputs).
pub trait Operator<B>: Send {
    /// Prepares the operator: opens children, runs any build phase.
    fn open(&mut self) -> Result<()> {
        Ok(())
    }

    /// The next batch, or `None` when the stream is exhausted.
    fn next(&mut self) -> Result<Option<B>>;
}

/// A boxed streaming operator.
pub type BoxOperator<B> = Box<dyn Operator<B>>;

// ---------------------------------------------------------------------
// Exchange operators: morsel-driven parallelism over Operator<B>
// ---------------------------------------------------------------------

/// Default number of rows per morsel (the unit of work a parallel worker
/// claims at a time).
pub const DEFAULT_MORSEL_SIZE: usize = 4096;

/// Parallel-execution settings carried by the [`ExecContext`]: how many
/// worker threads an exchange may spawn and how many rows each claimed
/// morsel covers. `workers == 1` means serial execution (no exchange
/// operators are placed at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    pub workers: usize,
    pub morsel_size: usize,
}

impl Parallelism {
    pub fn new(workers: usize, morsel_size: usize) -> Parallelism {
        Parallelism {
            workers: workers.max(1),
            morsel_size: morsel_size.max(1),
        }
    }

    /// Serial execution: one worker, default morsel size.
    pub fn serial() -> Parallelism {
        Parallelism::new(1, DEFAULT_MORSEL_SIZE)
    }

    pub fn is_parallel(&self) -> bool {
        self.workers > 1
    }
}

impl Default for Parallelism {
    fn default() -> Parallelism {
        Parallelism::serial()
    }
}

/// Position of an exchange item in the serial order: (morsel index,
/// chunk within the morsel). Morsel indexes are dense — every index in
/// `0..total` is claimed by exactly one worker — and one worker emits a
/// morsel's chunks in order, so the pair reconstructs the exact batch
/// sequence serial execution would have produced.
pub type ExchangeTag = (usize, usize);

/// One message from an exchange worker to the gather side.
pub enum ExchangeItem<B> {
    /// A produced batch at this position in the serial order.
    Batch(ExchangeTag, B),
    /// A kernel error at this position. Ordered like a batch, so the
    /// gather surfaces exactly the error serial execution would have hit
    /// first — and never surfaces an error positioned after the point
    /// where a consumer (e.g. LIMIT) stops pulling.
    Error(ExchangeTag, CalciteError),
    /// All of this morsel's items have been emitted.
    MorselEnd(usize),
}

enum Buffered<B> {
    Batch(B),
    Error(CalciteError),
}

/// Order-preserving exchange consumer: runs one worker operator subtree
/// per partition on its own `std::thread` and reassembles their tagged
/// output in morsel order, so the merged stream is byte-identical to
/// what serial execution of the same subtree would produce.
///
/// The channel between workers and the gather is bounded, which gives
/// backpressure: when the consumer stops pulling (a satisfied LIMIT),
/// workers block after a bounded amount of prefetch and are shut down
/// when the gather is dropped. While the consumer is *waiting* for a
/// slow in-order morsel, however, faster workers keep draining into
/// the reorder buffer — under heavy per-morsel cost skew that buffer
/// can grow toward the skewed portion of the output (credit-based
/// flow control is future work, tracked with spill-to-disk).
pub struct OrderedGatherOp<B> {
    workers: Vec<BoxOperator<ExchangeItem<B>>>,
    channel_cap: usize,
    state: Option<OrderedGatherState<B>>,
    failed: bool,
}

struct OrderedGatherState<B> {
    rx: Option<mpsc::Receiver<ExchangeItem<B>>>,
    handles: Vec<JoinHandle<()>>,
    buffered: BTreeMap<ExchangeTag, Buffered<B>>,
    ended: BTreeSet<usize>,
    next: ExchangeTag,
}

impl<B> Drop for OrderedGatherState<B> {
    fn drop(&mut self) {
        // Disconnect first so workers blocked on a full channel wake up
        // with a send error and exit, then reap the threads.
        self.rx = None;
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl<B: Send + 'static> OrderedGatherOp<B> {
    pub fn new(workers: Vec<BoxOperator<ExchangeItem<B>>>) -> OrderedGatherOp<B> {
        let n = workers.len().max(1);
        OrderedGatherOp {
            workers,
            channel_cap: n * 4,
            state: None,
            failed: false,
        }
    }
}

/// Spawns one driver thread per worker operator; each opens its subtree
/// and forwards every item into the shared bounded channel until the
/// stream ends or the receiver goes away.
fn spawn_exchange_workers<B: Send + 'static>(
    workers: Vec<BoxOperator<ExchangeItem<B>>>,
    cap: usize,
) -> (mpsc::Receiver<ExchangeItem<B>>, Vec<JoinHandle<()>>) {
    let (tx, rx) = mpsc::sync_channel::<ExchangeItem<B>>(cap);
    let handles = workers
        .into_iter()
        .map(|mut op| {
            let tx = tx.clone();
            std::thread::spawn(move || {
                if let Err(e) = op.open() {
                    let _ = tx.send(ExchangeItem::Error((0, 0), e));
                    return;
                }
                loop {
                    match op.next() {
                        Ok(Some(item)) => {
                            if tx.send(item).is_err() {
                                return; // consumer went away
                            }
                        }
                        Ok(None) => return,
                        Err(e) => {
                            // Exchange workers embed kernel errors as
                            // tagged items; an untagged error here means
                            // the worker subtree itself failed.
                            let _ = tx.send(ExchangeItem::Error((0, 0), e));
                            return;
                        }
                    }
                }
            })
        })
        .collect();
    (rx, handles)
}

impl<B: Send + 'static> Operator<B> for OrderedGatherOp<B> {
    fn open(&mut self) -> Result<()> {
        let workers = std::mem::take(&mut self.workers);
        let (rx, handles) = spawn_exchange_workers(workers, self.channel_cap);
        self.state = Some(OrderedGatherState {
            rx: Some(rx),
            handles,
            buffered: BTreeMap::new(),
            ended: BTreeSet::new(),
            next: (0, 0),
        });
        Ok(())
    }

    fn next(&mut self) -> Result<Option<B>> {
        if self.failed {
            return Ok(None);
        }
        // Taken out while working; put back on the success paths. The
        // error paths leave it out, which drops the receiver and reaps
        // the worker threads.
        let mut st = self.state.take().expect("OrderedGatherOp not opened");
        loop {
            // Serve the next in-order item if it is already buffered.
            if let Some(item) = st.buffered.remove(&st.next) {
                st.next.1 += 1;
                match item {
                    Buffered::Batch(b) => {
                        self.state = Some(st);
                        return Ok(Some(b));
                    }
                    Buffered::Error(e) => {
                        self.failed = true;
                        return Err(e);
                    }
                }
            }
            // The current morsel is complete: advance to the next one.
            if st.ended.remove(&st.next.0) {
                st.next = (st.next.0 + 1, 0);
                continue;
            }
            let Some(rx) = st.rx.as_ref() else {
                self.state = Some(st);
                return Ok(None);
            };
            match rx.recv() {
                Ok(ExchangeItem::Batch(tag, b)) => {
                    st.buffered.insert(tag, Buffered::Batch(b));
                }
                Ok(ExchangeItem::Error(tag, e)) => {
                    st.buffered.insert(tag, Buffered::Error(e));
                }
                Ok(ExchangeItem::MorselEnd(m)) => {
                    st.ended.insert(m);
                }
                Err(_) => {
                    // All workers finished. Anything still buffered is
                    // emitted in order above; a tagged leftover without
                    // its MorselEnd means a worker died mid-morsel.
                    if st.buffered.is_empty() && st.ended.is_empty() {
                        let mut panicked = false;
                        for h in st.handles.drain(..) {
                            panicked |= h.join().is_err();
                        }
                        st.rx = None;
                        if panicked {
                            self.failed = true;
                            return Err(CalciteError::execution(
                                "parallel exchange worker thread panicked",
                            ));
                        }
                        self.state = Some(st);
                        return Ok(None);
                    }
                    if !st.buffered.contains_key(&st.next) && !st.ended.contains(&st.next.0) {
                        self.failed = true;
                        return Err(CalciteError::execution(
                            "parallel exchange worker died mid-morsel",
                        ));
                    }
                }
            }
        }
    }
}

/// Unordered gather: runs one worker operator per partition on its own
/// thread and yields results in arrival order. Used where the consumer
/// recombines worker outputs itself (partial-aggregate merge, sorted-run
/// merge) and ordering is re-established there.
pub struct GatherOp<B> {
    workers: Vec<BoxOperator<B>>,
    channel_cap: usize,
    state: Option<GatherState<B>>,
    failed: bool,
}

struct GatherState<B> {
    rx: Option<mpsc::Receiver<Result<B>>>,
    handles: Vec<JoinHandle<()>>,
}

impl<B> Drop for GatherState<B> {
    fn drop(&mut self) {
        self.rx = None;
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl<B: Send + 'static> GatherOp<B> {
    pub fn new(workers: Vec<BoxOperator<B>>) -> GatherOp<B> {
        let n = workers.len().max(1);
        GatherOp {
            workers,
            channel_cap: n * 2,
            state: None,
            failed: false,
        }
    }
}

impl<B: Send + 'static> Operator<B> for GatherOp<B> {
    fn open(&mut self) -> Result<()> {
        let (tx, rx) = mpsc::sync_channel::<Result<B>>(self.channel_cap);
        let handles = std::mem::take(&mut self.workers)
            .into_iter()
            .map(|mut op| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    if let Err(e) = op.open() {
                        let _ = tx.send(Err(e));
                        return;
                    }
                    loop {
                        match op.next() {
                            Ok(Some(b)) => {
                                if tx.send(Ok(b)).is_err() {
                                    return;
                                }
                            }
                            Ok(None) => return,
                            Err(e) => {
                                let _ = tx.send(Err(e));
                                return;
                            }
                        }
                    }
                })
            })
            .collect();
        self.state = Some(GatherState {
            rx: Some(rx),
            handles,
        });
        Ok(())
    }

    fn next(&mut self) -> Result<Option<B>> {
        if self.failed {
            return Ok(None);
        }
        let st = self.state.as_mut().expect("GatherOp not opened");
        let Some(rx) = st.rx.as_ref() else {
            return Ok(None);
        };
        match rx.recv() {
            Ok(Ok(b)) => Ok(Some(b)),
            Ok(Err(e)) => {
                // Dropping the state disconnects and reaps the workers;
                // further pulls end the stream instead of panicking.
                self.failed = true;
                self.state = None;
                Err(e)
            }
            Err(_) => {
                let mut panicked = false;
                for h in st.handles.drain(..) {
                    panicked |= h.join().is_err();
                }
                st.rx = None;
                if panicked {
                    self.failed = true;
                    Err(CalciteError::execution(
                        "parallel gather worker thread panicked",
                    ))
                } else {
                    Ok(None)
                }
            }
        }
    }
}

/// Routes one source batch to its destination partitions. The `usize`
/// argument is the batch's sequence number in the source stream; the
/// returned pairs are (partition, piece). Round-robin routers forward
/// whole batches; hash routers split a batch into per-partition pieces.
pub type Router<B> = Box<dyn FnMut(usize, B) -> Vec<(usize, B)> + Send>;

/// A round-robin router: batch `i` goes to partition `i % n` whole.
pub fn round_robin_router<B>(n: usize) -> Router<B> {
    let n = n.max(1);
    Box::new(move |seq, b| vec![(seq % n, b)])
}

/// The messages a scatter partition receives: (source batch sequence,
/// the routed piece or the source's error at that position).
pub type ScatterMsg<B> = (usize, Result<B>);

struct ScatterSeed<B> {
    child: BoxOperator<B>,
    router: Router<B>,
    txs: Vec<mpsc::SyncSender<ScatterMsg<B>>>,
}

struct ScatterShared<B> {
    seed: Mutex<Option<ScatterSeed<B>>>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl<B> Drop for ScatterShared<B> {
    fn drop(&mut self) {
        if let Some(h) = self.handle.lock().expect("scatter lock").take() {
            let _ = h.join();
        }
    }
}

/// One output partition of a [`ScatterOp::split`]: a stream of routed
/// `(sequence, batch)` pieces, fed by a shared feeder thread that pulls
/// the child once and routes each batch.
pub struct ScatterPartition<B> {
    // Field order matters: `rx` must drop before `shared`, whose Drop
    // joins the feeder thread — a feeder blocked sending to this very
    // partition would otherwise never observe the disconnect.
    rx: mpsc::Receiver<ScatterMsg<B>>,
    shared: Arc<ScatterShared<B>>,
}

impl<B: Send + 'static> Operator<ScatterMsg<B>> for ScatterPartition<B> {
    fn open(&mut self) -> Result<()> {
        // The first partition to open starts the shared feeder.
        let seed = self.shared.seed.lock().expect("scatter lock").take();
        if let Some(mut seed) = seed {
            let handle = std::thread::spawn(move || {
                if let Err(e) = seed.child.open() {
                    let _ = seed.txs[0].send((0, Err(e)));
                    return;
                }
                let mut seq = 0usize;
                loop {
                    match seed.child.next() {
                        Ok(Some(b)) => {
                            for (p, piece) in (seed.router)(seq, b) {
                                if seed.txs[p].send((seq, Ok(piece))).is_err() {
                                    return;
                                }
                            }
                        }
                        Ok(None) => return,
                        Err(e) => {
                            // Surface the error at its position in the
                            // stream, on the partition that sequence
                            // routes to.
                            let p = seq % seed.txs.len();
                            let _ = seed.txs[p].send((seq, Err(e)));
                            return;
                        }
                    }
                    seq += 1;
                }
            });
            *self.shared.handle.lock().expect("scatter lock") = Some(handle);
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<ScatterMsg<B>>> {
        match self.rx.recv() {
            Ok(msg) => Ok(Some(msg)),
            Err(_) => Ok(None),
        }
    }
}

/// The partitioning half of an exchange: splits a child's batch stream
/// into `n` worker queues through a [`Router`] (round-robin for
/// stateless stages, hash-partitioned on key columns when the consumer
/// needs co-location). The feeder runs on its own thread with bounded
/// queues, so partitions exert backpressure on the child.
pub struct ScatterOp;

impl ScatterOp {
    /// Splits `child` into `n` partitions. Opening any returned
    /// partition starts the shared feeder thread (exactly once).
    pub fn split<B: Send + 'static>(
        child: BoxOperator<B>,
        n: usize,
        router: Router<B>,
    ) -> Vec<ScatterPartition<B>> {
        let n = n.max(1);
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = mpsc::sync_channel::<ScatterMsg<B>>(4);
            txs.push(tx);
            rxs.push(rx);
        }
        let shared = Arc::new(ScatterShared {
            seed: Mutex::new(Some(ScatterSeed { child, router, txs })),
            handle: Mutex::new(None),
        });
        rxs.into_iter()
            .map(|rx| ScatterPartition {
                shared: shared.clone(),
                rx,
            })
            .collect()
    }
}

/// Streams pre-built batches — the tail of a build-then-stream operator
/// (aggregate and sort results, the outer-join padding batch).
pub struct BatchesOp<B> {
    batches: std::collections::VecDeque<B>,
}

impl<B> BatchesOp<B> {
    pub fn new(batches: impl IntoIterator<Item = B>) -> BatchesOp<B> {
        BatchesOp {
            batches: batches.into_iter().collect(),
        }
    }
}

impl<B: Send> Operator<B> for BatchesOp<B> {
    fn next(&mut self) -> Result<Option<B>> {
        Ok(self.batches.pop_front())
    }
}

/// Applies a per-batch kernel to a child stream. The kernel may drop a
/// batch entirely (`Ok(None)`, e.g. a filter that selected nothing), in
/// which case the next child batch is pulled — so downstream operators
/// never see empty batches.
pub struct FilterMapOp<B, F> {
    child: BoxOperator<B>,
    kernel: F,
}

impl<B, F> FilterMapOp<B, F>
where
    F: FnMut(B) -> Result<Option<B>> + Send,
{
    pub fn new(child: BoxOperator<B>, kernel: F) -> FilterMapOp<B, F> {
        FilterMapOp { child, kernel }
    }
}

impl<B: Send, F> Operator<B> for FilterMapOp<B, F>
where
    F: FnMut(B) -> Result<Option<B>> + Send,
{
    fn open(&mut self) -> Result<()> {
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<B>> {
        while let Some(b) = self.child.next()? {
            if let Some(out) = (self.kernel)(b)? {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }
}

/// Concatenates child streams in order (UNION ALL). Children are opened
/// lazily, right before their first pull, so no child runs its build
/// phase until the stream actually reaches it.
pub struct ChainOp<B> {
    children: Vec<BoxOperator<B>>,
    current: usize,
    opened: bool,
}

impl<B> ChainOp<B> {
    pub fn new(children: Vec<BoxOperator<B>>) -> ChainOp<B> {
        ChainOp {
            children,
            current: 0,
            opened: false,
        }
    }
}

impl<B: Send> Operator<B> for ChainOp<B> {
    fn next(&mut self) -> Result<Option<B>> {
        while self.current < self.children.len() {
            if !self.opened {
                self.children[self.current].open()?;
                self.opened = true;
            }
            if let Some(b) = self.children[self.current].next()? {
                return Ok(Some(b));
            }
            self.current += 1;
            self.opened = false;
        }
        Ok(None)
    }
}

/// A materialized [`BatchIter`] over pre-built batches.
pub struct VecBatchIter {
    arity: usize,
    batches: std::vec::IntoIter<Vec<Column>>,
}

impl VecBatchIter {
    pub fn new(arity: usize, batches: Vec<Vec<Column>>) -> VecBatchIter {
        VecBatchIter {
            arity,
            batches: batches.into_iter(),
        }
    }
}

impl BatchIter for VecBatchIter {
    fn arity(&self) -> usize {
        self.arity
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Column>>> {
        Ok(self.batches.next())
    }
}

/// Adapts a [`RowIter`] into a [`BatchIter`] by pivoting `batch_size`
/// rows at a time into columns of the given kinds — the fallback bridge
/// for sources without a native columnar path.
pub struct RowBatcher {
    rows: RowIter,
    kinds: Vec<TypeKind>,
    batch_size: usize,
}

impl RowBatcher {
    pub fn new(rows: RowIter, kinds: Vec<TypeKind>, batch_size: usize) -> RowBatcher {
        RowBatcher {
            rows,
            kinds,
            batch_size: batch_size.max(1),
        }
    }
}

impl BatchIter for RowBatcher {
    fn arity(&self) -> usize {
        self.kinds.len()
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Column>>> {
        let mut cols: Vec<Column> = self
            .kinds
            .iter()
            .map(|k| Column::for_kind_with_capacity(k, self.batch_size))
            .collect();
        let mut n = 0;
        for row in self.rows.by_ref().take(self.batch_size) {
            for (c, d) in cols.iter_mut().zip(row) {
                c.push(d);
            }
            n += 1;
        }
        if n == 0 {
            Ok(None)
        } else {
            Ok(Some(cols))
        }
    }
}

/// A [`BatchIter`] over whole-table column vectors, yielding contiguous
/// `batch_size`-row slices one pull at a time. Only the slice being
/// served is copied; the backing columns are shared (typically behind an
/// `Arc` snapshot taken by the table).
pub struct SlicedColumns<S> {
    source: S,
    arity: usize,
    len: usize,
    pos: usize,
    batch_size: usize,
}

impl<S: AsRef<[Column]> + Send> SlicedColumns<S> {
    pub fn new(source: S, batch_size: usize) -> SlicedColumns<S> {
        let cols = source.as_ref();
        let (arity, len) = (cols.len(), cols.first().map_or(0, Column::len));
        SlicedColumns {
            source,
            arity,
            len,
            pos: 0,
            batch_size: batch_size.max(1),
        }
    }

    /// A slicer over the row window `[start, start + len)` — the shape a
    /// morsel-driven scan serves: each worker streams its claimed range
    /// of the shared (typically `Arc`-snapshot) columns.
    pub fn new_range(source: S, batch_size: usize, start: usize, len: usize) -> SlicedColumns<S> {
        let cols = source.as_ref();
        let arity = cols.len();
        let total = cols.first().map_or(0, Column::len);
        let start = start.min(total);
        let end = start.saturating_add(len).min(total);
        SlicedColumns {
            source,
            arity,
            len: end,
            pos: start,
            batch_size: batch_size.max(1),
        }
    }
}

impl<S: AsRef<[Column]> + Send> BatchIter for SlicedColumns<S> {
    fn arity(&self) -> usize {
        self.arity
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Column>>> {
        if self.pos >= self.len {
            return Ok(None);
        }
        let take = self.batch_size.min(self.len - self.pos);
        let cols = self
            .source
            .as_ref()
            .iter()
            .map(|c| c.slice(self.pos, take))
            .collect();
        self.pos += take;
        Ok(Some(cols))
    }
}

/// Drains a [`BatchIter`] into rows (errors surface eagerly, matching the
/// materializing style of the row executors).
pub fn collect_batches_to_rows(mut it: Box<dyn BatchIter>) -> Result<Vec<Row>> {
    let mut out = vec![];
    while let Some(cols) = it.next_batch()? {
        out.extend(columns_to_rows(&cols));
    }
    Ok(out)
}

/// Executes plan subtrees belonging to one calling convention.
pub trait ConventionExecutor: Send + Sync {
    fn convention(&self) -> Convention;

    /// Executes `rel` (whose convention is this executor's). Children in
    /// foreign conventions are executed through `ctx`.
    fn execute(&self, rel: &Rel, ctx: &ExecContext) -> Result<RowIter>;
}

/// Registry of executors, one per convention, plus the dynamic-parameter
/// bindings of the current execution (empty outside prepared statements),
/// the parallel-execution settings engines consult when shaping their
/// operator trees, and the spill environment (memory budget, tracker,
/// temp-file provider, buffer pool) build-then-stream operators use to
/// degrade to out-of-core execution.
#[derive(Clone)]
pub struct ExecContext {
    executors: HashMap<Convention, Arc<dyn ConventionExecutor>>,
    params: Arc<Vec<Datum>>,
    parallelism: Parallelism,
    spill: crate::buffer::SpillEnv,
}

impl Default for ExecContext {
    /// The default context honors the `RCALCITE_TEST_MEM_BUDGET`
    /// environment hook (bytes), so the CI spill matrix drives every
    /// suite's build operators through the out-of-core paths.
    fn default() -> ExecContext {
        let mut spill = crate::buffer::SpillEnv::default();
        if let Some(budget) = crate::buffer::MemoryBudget::from_env() {
            spill.budget = budget;
        }
        ExecContext {
            executors: HashMap::new(),
            params: Arc::new(vec![]),
            parallelism: Parallelism::default(),
            spill,
        }
    }
}

impl ExecContext {
    pub fn new() -> ExecContext {
        ExecContext::default()
    }

    pub fn register(&mut self, executor: Arc<dyn ConventionExecutor>) {
        self.executors.insert(executor.convention(), executor);
    }

    /// Sets the worker count and morsel size parallel-capable engines
    /// use when executing through this context.
    pub fn set_parallelism(&mut self, p: Parallelism) {
        self.parallelism = p;
    }

    /// The current parallel-execution settings.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Caps the bytes build-then-stream operators may hold in memory;
    /// beyond it they spill to disk. Unbounded by default.
    pub fn set_memory_budget(&mut self, budget: crate::buffer::MemoryBudget) {
        self.spill.budget = budget;
    }

    /// The memory budget of this context.
    pub fn memory_budget(&self) -> &crate::buffer::MemoryBudget {
        &self.spill.budget
    }

    /// Replaces the scratch-file source spill runs are written through.
    pub fn set_temp_provider(&mut self, temp: Arc<dyn crate::buffer::TempFileProvider>) {
        self.spill.temp = temp;
    }

    /// The recorder of spill decisions and bytes moved.
    pub fn spill_tracker(&self) -> &crate::buffer::SpillTracker {
        &self.spill.tracker
    }

    /// The full spill environment, cloned into operators at build time.
    pub fn spill_env(&self) -> &crate::buffer::SpillEnv {
        &self.spill
    }

    /// A context sharing this one's executors with dynamic-parameter
    /// bindings attached. The prepared-statement layer calls this once
    /// per execution; engines read the values back through [`Self::bind`].
    pub fn with_params(&self, params: Vec<Datum>) -> ExecContext {
        ExecContext {
            executors: self.executors.clone(),
            params: Arc::new(params),
            parallelism: self.parallelism,
            spill: self.spill.clone(),
        }
    }

    /// The current execution's parameter bindings (empty by default).
    pub fn params(&self) -> &[Datum] {
        &self.params
    }

    /// Resolves an expression against this execution's bindings: every
    /// `DynamicParam` becomes the bound literal. Engines call this on
    /// each expression they are about to evaluate, so one compiled plan
    /// serves many executions with different bindings.
    pub fn bind(&self, e: &crate::rex::RexNode) -> Result<crate::rex::RexNode> {
        if e.has_dynamic_params() {
            e.bind_params(&self.params)
        } else {
            Ok(e.clone())
        }
    }

    pub fn has_convention(&self, conv: &Convention) -> bool {
        self.executors.contains_key(conv)
    }

    pub fn conventions(&self) -> Vec<Convention> {
        self.executors.keys().cloned().collect()
    }

    /// Executes a plan node, dispatching on its convention. `Convert`
    /// nodes are handled here: they execute their input in its own
    /// convention and pass rows through (the iterator interface *is* the
    /// transfer).
    pub fn execute(&self, rel: &Rel) -> Result<RowIter> {
        if let RelOp::Convert { .. } = &rel.op {
            return self.execute(rel.input(0));
        }
        let ex = self.executors.get(&rel.convention).ok_or_else(|| {
            CalciteError::execution(format!(
                "no executor registered for convention '{}' (node {})",
                rel.convention,
                rel.op.payload_digest()
            ))
        })?;
        ex.execute(rel, self)
    }

    /// Executes and materializes all rows.
    pub fn execute_collect(&self, rel: &Rel) -> Result<Vec<Row>> {
        Ok(self.execute(rel)?.collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemTable, TableRef};
    use crate::datum::Datum;
    use crate::rel::{self, RelNode};
    use crate::types::{RowTypeBuilder, TypeKind};

    struct ScanOnly(Convention);

    impl ConventionExecutor for ScanOnly {
        fn convention(&self) -> Convention {
            self.0.clone()
        }
        fn execute(&self, rel: &Rel, _ctx: &ExecContext) -> Result<RowIter> {
            match &rel.op {
                RelOp::Scan { table } => table.table.scan(),
                other => Err(CalciteError::execution(format!(
                    "ScanOnly cannot execute {other:?}"
                ))),
            }
        }
    }

    fn scan_in(conv: &Convention) -> Rel {
        let t = MemTable::new(
            RowTypeBuilder::new().add("a", TypeKind::Integer).build(),
            vec![vec![Datum::Int(1)], vec![Datum::Int(2)]],
        );
        rel::scan(TableRef::new("s", "t", t)).with_convention(conv.clone())
    }

    #[test]
    fn dispatch_by_convention() {
        let conv = Convention::new("test");
        let mut ctx = ExecContext::new();
        ctx.register(Arc::new(ScanOnly(conv.clone())));
        let rows = ctx.execute_collect(&scan_in(&conv)).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn missing_executor_is_an_error() {
        let ctx = ExecContext::new();
        let err = ctx.execute_collect(&scan_in(&Convention::new("nope")));
        assert!(matches!(err, Err(CalciteError::Execution(_))));
    }

    #[test]
    fn row_batcher_pivots_and_round_trips() {
        let rows: Vec<Row> = (0..10)
            .map(|i| {
                vec![
                    Datum::Int(i),
                    if i % 3 == 0 {
                        Datum::Null
                    } else {
                        Datum::str(format!("s{i}"))
                    },
                ]
            })
            .collect();
        let kinds = vec![TypeKind::Integer, TypeKind::Varchar];
        let mut it = RowBatcher::new(Box::new(rows.clone().into_iter()), kinds, 4);
        assert_eq!(it.arity(), 2);
        let b1 = it.next_batch().unwrap().unwrap();
        assert_eq!(b1[0].len(), 4);
        let mut collected = columns_to_rows(&b1);
        while let Some(b) = it.next_batch().unwrap() {
            collected.extend(columns_to_rows(&b));
        }
        assert_eq!(collected, rows);
    }

    #[test]
    fn vec_batch_iter_collects() {
        let col = Column::from_datums(&TypeKind::Integer, vec![Datum::Int(1), Datum::Int(2)]);
        let it = VecBatchIter::new(1, vec![vec![col.clone()], vec![col]]);
        let rows = collect_batches_to_rows(Box::new(it)).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[3], vec![Datum::Int(2)]);
    }

    #[test]
    fn operator_combinators_stream() {
        // FilterMap drops batches the kernel rejects; Chain opens children
        // lazily and concatenates.
        let evens = FilterMapOp::new(Box::new(BatchesOp::new(vec![1, 2, 3, 4])), |b: i32| {
            Ok((b % 2 == 0).then_some(b * 10))
        });
        let mut chain = ChainOp::new(vec![
            Box::new(evens) as BoxOperator<i32>,
            Box::new(BatchesOp::new(vec![7])),
        ]);
        chain.open().unwrap();
        let mut out = vec![];
        while let Some(b) = chain.next().unwrap() {
            out.push(b);
        }
        assert_eq!(out, vec![20, 40, 7]);
    }

    #[test]
    fn sliced_columns_serves_bounded_slices() {
        let col = Column::from_datums(&TypeKind::Integer, (0..10).map(Datum::Int));
        let mut it = SlicedColumns::new(vec![col], 4);
        assert_eq!(it.arity(), 1);
        let sizes: Vec<usize> =
            std::iter::from_fn(|| it.next_batch().unwrap().map(|cols| cols[0].len())).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    /// A worker that claims morsels from a shared counter and emits
    /// tagged squares — the miniature of a morsel-driven scan chain.
    struct SquareWorker {
        counter: Arc<std::sync::atomic::AtomicUsize>,
        total: usize,
        pending: Option<ExchangeItem<i64>>,
    }

    impl Operator<ExchangeItem<i64>> for SquareWorker {
        fn next(&mut self) -> Result<Option<ExchangeItem<i64>>> {
            if let Some(item) = self.pending.take() {
                return Ok(Some(item));
            }
            let m = self
                .counter
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if m >= self.total {
                return Ok(None);
            }
            self.pending = Some(ExchangeItem::MorselEnd(m));
            Ok(Some(ExchangeItem::Batch((m, 0), (m * m) as i64)))
        }
    }

    #[test]
    fn ordered_gather_reassembles_serial_order() {
        let counter = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let workers: Vec<BoxOperator<ExchangeItem<i64>>> = (0..4)
            .map(|_| {
                Box::new(SquareWorker {
                    counter: counter.clone(),
                    total: 50,
                    pending: None,
                }) as BoxOperator<ExchangeItem<i64>>
            })
            .collect();
        let mut gather = OrderedGatherOp::new(workers);
        gather.open().unwrap();
        let mut out = vec![];
        while let Some(v) = gather.next().unwrap() {
            out.push(v);
        }
        let expect: Vec<i64> = (0..50).map(|m: i64| m * m).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn ordered_gather_surfaces_errors_in_serial_position() {
        // Worker items arrive out of order; the error tagged at morsel 1
        // must surface after morsel 0's batch and before morsel 2's.
        struct Scripted(Vec<ExchangeItem<i64>>);
        impl Operator<ExchangeItem<i64>> for Scripted {
            fn next(&mut self) -> Result<Option<ExchangeItem<i64>>> {
                Ok(if self.0.is_empty() {
                    None
                } else {
                    Some(self.0.remove(0))
                })
            }
        }
        let w1 = Scripted(vec![
            ExchangeItem::Batch((2, 0), 20),
            ExchangeItem::MorselEnd(2),
            ExchangeItem::Error((1, 0), CalciteError::execution("boom")),
            ExchangeItem::MorselEnd(1),
        ]);
        let w2 = Scripted(vec![
            ExchangeItem::Batch((0, 0), 0),
            ExchangeItem::MorselEnd(0),
        ]);
        let mut gather = OrderedGatherOp::new(vec![
            Box::new(w1) as BoxOperator<ExchangeItem<i64>>,
            Box::new(w2) as BoxOperator<ExchangeItem<i64>>,
        ]);
        gather.open().unwrap();
        assert_eq!(gather.next().unwrap(), Some(0));
        assert!(gather.next().is_err());
        // After the error the stream is closed.
        assert_eq!(gather.next().unwrap(), None);
    }

    #[test]
    fn unordered_gather_collects_every_worker() {
        let mut gather = GatherOp::new(
            (0..3)
                .map(|i| Box::new(BatchesOp::new(vec![i, i + 10])) as BoxOperator<i32>)
                .collect(),
        );
        gather.open().unwrap();
        let mut out = vec![];
        while let Some(v) = gather.next().unwrap() {
            out.push(v);
        }
        out.sort();
        assert_eq!(out, vec![0, 1, 2, 10, 11, 12]);
    }

    #[test]
    fn scatter_round_robins_batches_with_sequence_tags() {
        let child: BoxOperator<i32> = Box::new(BatchesOp::new(vec![100, 101, 102, 103, 104]));
        let parts = ScatterOp::split(child, 2, round_robin_router(2));
        let mut outs: Vec<Vec<(usize, i32)>> = vec![];
        let mut parts = parts;
        for p in &mut parts {
            p.open().unwrap();
        }
        for p in &mut parts {
            let mut got = vec![];
            while let Some((seq, v)) = p.next().unwrap() {
                got.push((seq, v.unwrap()));
            }
            outs.push(got);
        }
        assert_eq!(outs[0], vec![(0, 100), (2, 102), (4, 104)]);
        assert_eq!(outs[1], vec![(1, 101), (3, 103)]);
    }

    #[test]
    fn scatter_shuts_down_when_partitions_drop_early() {
        // A large stream with small queues: dropping the partitions must
        // unblock and terminate the feeder (the Drop impl joins it).
        let child: BoxOperator<i32> = Box::new(BatchesOp::new((0..10_000).collect::<Vec<_>>()));
        let mut parts = ScatterOp::split(child, 2, round_robin_router(2));
        parts[0].open().unwrap();
        assert!(parts[0].next().unwrap().is_some());
        drop(parts); // must not hang
    }

    #[test]
    fn sliced_columns_range_serves_a_window() {
        let col = Column::from_datums(&TypeKind::Integer, (0..10).map(Datum::Int));
        let mut it = SlicedColumns::new_range(vec![col], 3, 4, 5);
        let mut rows = vec![];
        while let Some(cols) = it.next_batch().unwrap() {
            rows.extend(columns_to_rows(&cols));
        }
        let expect: Vec<Row> = (4..9).map(|i| vec![Datum::Int(i)]).collect();
        assert_eq!(rows, expect);
        // Out-of-bounds windows clamp.
        let col = Column::from_datums(&TypeKind::Integer, (0..4).map(Datum::Int));
        let mut it = SlicedColumns::new_range(vec![col], 8, 2, 100);
        assert_eq!(it.next_batch().unwrap().unwrap()[0].len(), 2);
        assert!(it.next_batch().unwrap().is_none());
    }

    #[test]
    fn parallelism_defaults_and_clamps() {
        let p = Parallelism::default();
        assert_eq!(p.workers, 1);
        assert_eq!(p.morsel_size, DEFAULT_MORSEL_SIZE);
        assert!(!p.is_parallel());
        let p = Parallelism::new(0, 0);
        assert_eq!((p.workers, p.morsel_size), (1, 1));
        let mut ctx = ExecContext::new();
        ctx.set_parallelism(Parallelism::new(4, 64));
        let ctx2 = ctx.with_params(vec![Datum::Int(1)]);
        assert_eq!(ctx2.parallelism(), Parallelism::new(4, 64));
    }

    #[test]
    fn convert_nodes_delegate_to_input_convention() {
        let backend = Convention::new("backend");
        let mut ctx = ExecContext::new();
        ctx.register(Arc::new(ScanOnly(backend.clone())));
        let inner = scan_in(&backend);
        let conv_node = RelNode::new(
            RelOp::Convert {
                from: backend.clone(),
            },
            Convention::enumerable(),
            vec![inner],
        );
        // No enumerable executor registered, but Convert is handled by the
        // context itself.
        let rows = ctx.execute_collect(&conv_node).unwrap();
        assert_eq!(rows.len(), 2);
    }
}
