//! Physical traits (paper §4). Calcite describes the physical properties of
//! an operator with *traits* rather than separate logical/physical operator
//! entities. rcalcite follows the same design: the **calling convention**
//! trait names the data processing system that will execute an operator,
//! and **collation** describes sort order.

use std::fmt;
use std::sync::Arc;

/// The calling-convention trait: "the data processing system where the
/// expression will be executed" (§4). Conventions are interned names so
/// adapters can mint their own (e.g. `jdbc:mysql`, `splunk`).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Convention(Arc<str>);

impl Convention {
    pub fn new(name: impl AsRef<str>) -> Convention {
        Convention(Arc::from(name.as_ref()))
    }

    /// The logical convention: no implementation has been chosen yet.
    pub fn none() -> Convention {
        Convention::new("logical")
    }

    /// The built-in convention whose operators "simply operate over tuples
    /// via an iterator interface" (§5).
    pub fn enumerable() -> Convention {
        Convention::new("enumerable")
    }

    pub fn name(&self) -> &str {
        &self.0
    }

    pub fn is_none(&self) -> bool {
        self.name() == "logical"
    }

    pub fn is_enumerable(&self) -> bool {
        self.name() == "enumerable"
    }
}

impl fmt::Display for Convention {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Convention {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Convention({})", self.0)
    }
}

/// Sort direction of one field.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FieldCollation {
    pub field: usize,
    pub descending: bool,
    pub nulls_first: bool,
}

impl FieldCollation {
    /// Ascending, NULLs last. NULLS LAST is the default for both
    /// directions so every sort implementation (the row executor's
    /// `compare_rows`, the batch sort kernel, and memdb's pushed-down
    /// ORDER BY) agrees on where NULLs land.
    pub fn asc(field: usize) -> FieldCollation {
        FieldCollation {
            field,
            descending: false,
            nulls_first: false,
        }
    }

    /// Descending, NULLs last.
    pub fn desc(field: usize) -> FieldCollation {
        FieldCollation {
            field,
            descending: true,
            nulls_first: false,
        }
    }
}

impl fmt::Display for FieldCollation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.field)?;
        if self.descending {
            write!(f, " DESC")?;
        }
        Ok(())
    }
}

/// An ordering of rows: the collation trait.
pub type Collation = Vec<FieldCollation>;

/// True when rows ordered by `actual` are also ordered by `required`
/// (prefix satisfaction) — the condition under which "the sort operation
/// can be removed" (§4).
pub fn collation_satisfies(actual: &Collation, required: &Collation) -> bool {
    if required.len() > actual.len() {
        return false;
    }
    actual
        .iter()
        .zip(required.iter())
        .all(|(a, r)| a.field == r.field && a.descending == r.descending)
}

/// Renders a collation for digests and EXPLAIN output.
pub fn collation_to_string(c: &Collation) -> String {
    let parts: Vec<String> = c.iter().map(|f| f.to_string()).collect();
    parts.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convention_identity() {
        assert_eq!(Convention::none(), Convention::new("logical"));
        assert_ne!(Convention::none(), Convention::enumerable());
        assert!(Convention::none().is_none());
        assert!(Convention::enumerable().is_enumerable());
        assert_eq!(Convention::new("jdbc:mysql").name(), "jdbc:mysql");
    }

    #[test]
    fn prefix_satisfaction() {
        let actual = vec![FieldCollation::asc(0), FieldCollation::asc(1)];
        let req = vec![FieldCollation::asc(0)];
        assert!(collation_satisfies(&actual, &req));
        assert!(!collation_satisfies(&req, &actual));
        // Direction matters.
        let req_desc = vec![FieldCollation::desc(0)];
        assert!(!collation_satisfies(&actual, &req_desc));
    }

    #[test]
    fn empty_required_is_always_satisfied() {
        assert!(collation_satisfies(&vec![], &vec![]));
        assert!(collation_satisfies(&vec![FieldCollation::asc(2)], &vec![]));
    }

    #[test]
    fn display() {
        let c = vec![FieldCollation::asc(0), FieldCollation::desc(3)];
        assert_eq!(collation_to_string(&c), "$0, $3 DESC");
    }
}
