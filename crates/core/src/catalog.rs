//! The catalog SPI: tables, schemas and statistics. Calcite "provides a
//! mechanism to define table schemas and views in external storage engines
//! via adapters" (§3) — this module is that mechanism's core interface.

use crate::datum::{Column, Row};
use crate::error::{CalciteError, Result};
use crate::exec::{BatchIter, RowBatcher, SlicedColumns};
use crate::index::{
    seek_rows, BoundProbe, IndexData, IndexDef, IndexProbe, RowsAccess, RowsRef, SnapshotProbe,
};
use crate::traits::{Collation, Convention};
use crate::types::RowType;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Statistics a table exposes to the optimizer. Per §6, "for many
/// \[systems\], it is sufficient to provide statistics about their input
/// data ... and Calcite will do the rest of the work".
#[derive(Debug, Clone)]
pub struct Statistic {
    /// Estimated number of rows.
    pub row_count: f64,
    /// Sets of columns that are unique keys.
    pub keys: Vec<Vec<usize>>,
    /// Orderings the physical data already has (lets the optimizer drop
    /// redundant sorts).
    pub collations: Vec<Collation>,
}

impl Statistic {
    pub fn unknown() -> Statistic {
        Statistic {
            row_count: 100.0,
            keys: vec![],
            collations: vec![],
        }
    }

    pub fn of_rows(row_count: f64) -> Statistic {
        Statistic {
            row_count,
            keys: vec![],
            collations: vec![],
        }
    }

    pub fn with_key(mut self, key: Vec<usize>) -> Statistic {
        self.keys.push(key);
        self
    }

    pub fn with_collation(mut self, collation: Collation) -> Statistic {
        self.collations.push(collation);
        self
    }
}

/// The minimal interface an adapter must implement: expose a row type and a
/// full table scan (§5: "If an adapter implements the table scan operator,
/// the Calcite optimizer is then able to use client-side operators ... to
/// execute arbitrary SQL queries against these tables").
pub trait Table: Send + Sync {
    fn row_type(&self) -> RowType;

    fn statistic(&self) -> Statistic {
        Statistic::unknown()
    }

    /// Enumerates all rows. Backends with richer access paths expose them
    /// through adapter rules instead.
    fn scan(&self) -> Result<Box<dyn Iterator<Item = Row> + Send>>;

    /// Columnar scan: the whole table as typed column vectors, one per
    /// field. Batch executors use this to feed column batches without
    /// per-row pivoting; `None` means the table only supports row
    /// iteration and callers must bridge through [`Table::scan`].
    fn scan_columns(&self) -> Option<Result<Vec<Column>>> {
        None
    }

    /// Streaming columnar scan: a pull-based [`BatchIter`] serving at most
    /// `batch_size` rows per batch. This is what the streaming batch
    /// executor pulls from, one batch per `next_batch`, so memory stays
    /// bounded by the pipeline depth rather than the table size.
    ///
    /// The default bridges through [`Table::scan_columns`] (slicing the
    /// materialized vectors lazily) or, failing that, pivots
    /// [`Table::scan`] through a [`RowBatcher`]. Backends with a native
    /// columnar store override this to serve slices without materializing
    /// whole columns up front (see the memdb backend). Zero-column tables
    /// cannot be represented as column batches (a `Vec<Column>` carries
    /// no row count without columns) — callers must route those through
    /// [`Table::scan`].
    fn scan_batches(&self, batch_size: usize) -> Result<Box<dyn BatchIter>> {
        if let Some(cols) = self.scan_columns() {
            let cols = cols?;
            if !cols.is_empty() {
                return Ok(Box::new(SlicedColumns::new(cols, batch_size)));
            }
        }
        let kinds = self
            .row_type()
            .fields
            .iter()
            .map(|f| f.ty.kind.clone())
            .collect();
        Ok(Box::new(RowBatcher::new(self.scan()?, kinds, batch_size)))
    }

    /// Number of rows a range-partitioned scan of this table would
    /// cover, when the table supports one — the gate morsel-driven
    /// parallel executors check before splitting a scan into per-worker
    /// ranges. `None` (the default) means only whole-table scans are
    /// available and the scan stays serial. Must be cheap: planners and
    /// EXPLAIN call it without scanning.
    fn range_scan_rows(&self) -> Option<usize> {
        None
    }

    /// Takes a consistent snapshot supporting positional range scans,
    /// for morsel-driven parallel execution: every worker slices its
    /// claimed `[start, start + len)` ranges out of the *same* snapshot,
    /// so a concurrent insert cannot tear the scan between morsels.
    ///
    /// The default materializes [`Table::scan_columns`] once into a
    /// [`ColumnsSnapshot`]; backends with a native columnar store
    /// override this to hand out zero-copy `Arc` snapshots (see memdb).
    /// `Ok(None)` means range scans are unsupported (matching a `None`
    /// from [`Table::range_scan_rows`]).
    fn scan_snapshot(&self) -> Result<Option<Arc<dyn RangeScan>>> {
        match self.scan_columns() {
            Some(cols) => {
                let cols = cols?;
                if cols.is_empty() {
                    Ok(None)
                } else {
                    Ok(Some(Arc::new(ColumnsSnapshot::new(cols))))
                }
            }
            None => Ok(None),
        }
    }

    /// The calling convention in which scans of this table naturally start.
    /// Adapter tables return their backend convention; plain tables return
    /// the logical convention.
    fn convention(&self) -> Convention {
        Convention::none()
    }

    /// Whether this table is a stream (time-ordered, unbounded; §7.2).
    fn is_stream(&self) -> bool {
        false
    }

    /// Downcast hook for the built-in writable store; lets DML (INSERT)
    /// reach `MemTable` storage without `Any` plumbing. Adapter tables are
    /// read-only and keep the default.
    fn as_mem_table(&self) -> Option<&MemTable> {
        None
    }

    /// Native statistics collection for `ANALYZE`. `None` (the default)
    /// means the backend has no cheaper path and the caller falls back to
    /// [`crate::stats::analyze_table`], which scans through the generic
    /// columnar surface. Backends with a columnar mirror override this to
    /// compute statistics zero-copy (see the memdb backend).
    fn analyze(&self) -> Option<Result<crate::stats::TableStats>> {
        None
    }

    // ----- secondary-index SPI (§5: adapters expose access paths; the
    // ----- optimizer picks among them by cost) -----

    /// The secondary indexes currently defined on this table. Planner
    /// rules enumerate these to propose seek access paths; the default
    /// (no indexes) keeps plain tables on full scans.
    fn indexes(&self) -> Vec<IndexDef> {
        vec![]
    }

    /// Takes a consistent point-in-time snapshot for probing `index`:
    /// positions, rows and index state all refer to the same data, so
    /// concurrent INSERTs cannot tear a multi-probe seek or an in-flight
    /// index-nested-loop join. `Ok(None)` means the index does not exist
    /// (e.g. it was dropped after the plan was cached) — callers fall
    /// back to a scan.
    fn index_probe_snapshot(&self, index: &str) -> Result<Option<Arc<dyn IndexProbe>>> {
        let _ = index;
        Ok(None)
    }

    /// Seeks `index` with `probes`, returning matching rows in table
    /// order (deduped across probes) — the same rows, in the same order,
    /// a filtered full scan would produce. `Ok(None)` means the index
    /// does not exist.
    fn index_seek(
        &self,
        index: &str,
        probes: &[BoundProbe],
    ) -> Result<Option<Box<dyn Iterator<Item = Row> + Send>>> {
        match self.index_probe_snapshot(index)? {
            None => Ok(None),
            Some(snap) => Ok(Some(Box::new(seek_rows(snap.as_ref(), probes).into_iter()))),
        }
    }

    /// Creates a secondary index. `Ok(false)` means this table kind does
    /// not support indexes; duplicate names are an error.
    fn create_index(&self, def: &IndexDef) -> Result<bool> {
        let _ = def;
        Ok(false)
    }

    /// Drops an index by name; `Ok(true)` if it existed. Tables without
    /// index support report `Ok(false)`.
    fn drop_index(&self, name: &str) -> Result<bool> {
        let _ = name;
        Ok(false)
    }

    // ----- transactional write SPI (MVCC + WAL; `core::txn`) -----

    /// Captures an immutable version of this table (rows, stable row ids
    /// and index state at one instant) for snapshot-isolated reads.
    /// `None` (the default) means the table is not MVCC-capable and
    /// transactions leave it alone.
    fn txn_snapshot(&self) -> Option<Arc<dyn crate::txn::TxnVersion>> {
        None
    }

    /// Applies a committed delta (keyed by stable row ids) to the live
    /// table state, maintaining secondary indexes incrementally inside
    /// the copy-on-write swap so open snapshots keep serving pre-delta
    /// data. Returns the number of operations applied.
    fn apply_delta(&self, ops: &[crate::txn::DeltaOp]) -> Result<usize> {
        let _ = ops;
        Err(CalciteError::unsupported(
            "table does not support transactional writes",
        ))
    }

    /// Reserves `n` consecutive row ids for upcoming inserts, returning
    /// the first. Ids are never reused.
    fn reserve_row_ids(&self, n: usize) -> Result<u64> {
        let _ = n;
        Err(CalciteError::unsupported(
            "table does not support transactional writes",
        ))
    }

    /// A counter that advances on every mutation of this table's data
    /// (insert, delta apply, bulk replace), whatever path the write took
    /// — including ones that bypass the transaction manager, like WAL
    /// replay or direct [`MemTable::insert`] calls. Incremental view
    /// maintenance records the versions of a view's base tables after
    /// each successful maintenance pass; a mismatch on a later read
    /// means the view can no longer be trusted and substitution must
    /// skip it. `None` (the default) means the table cannot report
    /// change versions, so views over it cannot be freshness-tracked.
    fn data_version(&self) -> Option<u64> {
        None
    }
}

/// A consistent, positionally-addressable view of a table taken at scan
/// open, from which morsel workers slice their claimed row ranges.
/// Implementations are immutable snapshots (shared behind `Arc`), so
/// concurrent range scans need no locking.
pub trait RangeScan: Send + Sync {
    /// Total rows in the snapshot (morsel ranges partition `0..rows`).
    fn row_count(&self) -> usize;

    /// Streams rows `[start, start + len)` as batches of at most
    /// `batch_size` rows. Out-of-range windows clamp.
    fn scan_range(
        self: Arc<Self>,
        batch_size: usize,
        start: usize,
        len: usize,
    ) -> Result<Box<dyn BatchIter>>;
}

/// The default [`RangeScan`]: whole-table column vectors materialized
/// once at snapshot time, sliced per range without further copying.
pub struct ColumnsSnapshot {
    columns: Vec<Column>,
    rows: usize,
}

impl ColumnsSnapshot {
    pub fn new(columns: Vec<Column>) -> ColumnsSnapshot {
        let rows = columns.first().map_or(0, Column::len);
        ColumnsSnapshot { columns, rows }
    }
}

/// View of an `Arc<ColumnsSnapshot>` as a column slice for
/// [`SlicedColumns`].
struct SnapshotCols(Arc<ColumnsSnapshot>);

impl AsRef<[Column]> for SnapshotCols {
    fn as_ref(&self) -> &[Column] {
        &self.0.columns
    }
}

impl RangeScan for ColumnsSnapshot {
    fn row_count(&self) -> usize {
        self.rows
    }

    fn scan_range(
        self: Arc<Self>,
        batch_size: usize,
        start: usize,
        len: usize,
    ) -> Result<Box<dyn BatchIter>> {
        Ok(Box::new(SlicedColumns::new_range(
            SnapshotCols(self),
            batch_size,
            start,
            len,
        )))
    }
}

/// A resolved reference to a table in the catalog; carried by scan nodes.
#[derive(Clone)]
pub struct TableRef {
    pub schema: String,
    pub name: String,
    pub table: Arc<dyn Table>,
}

impl TableRef {
    pub fn new(schema: impl Into<String>, name: impl Into<String>, table: Arc<dyn Table>) -> Self {
        TableRef {
            schema: schema.into(),
            name: name.into(),
            table,
        }
    }

    pub fn qualified_name(&self) -> String {
        format!("{}.{}", self.schema, self.name)
    }
}

impl fmt::Debug for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TableRef({})", self.qualified_name())
    }
}

impl PartialEq for TableRef {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.name == other.name
            && Arc::ptr_eq(
                &(self.table.clone() as Arc<dyn Table>),
                &(other.table.clone() as Arc<dyn Table>),
            )
    }
}

/// An in-memory table: the simplest `Table` implementation, used by tests,
/// examples and as the backing store for materialized views.
pub struct MemTable {
    row_type: RowType,
    /// Copy-on-write row store: scans and index-probe snapshots take an
    /// `Arc` clone (O(1)), and a later write that finds the `Arc` shared
    /// copies before mutating, so open snapshots keep their version.
    rows: RwLock<Arc<Vec<Row>>>,
    /// Stable row ids, parallel to `rows` (same copy-on-write swap, same
    /// lock order: rows, then ids, then indexes). Assigned at insert,
    /// never reused — the addressing MVCC deltas and the WAL use.
    row_ids: RwLock<Arc<Vec<u64>>>,
    next_row_id: std::sync::atomic::AtomicU64,
    statistic: RwLock<Option<Statistic>>,
    /// Secondary indexes, maintained incrementally on insert. Guarded by
    /// the same lock discipline as `rows` (rows lock taken first), so an
    /// index never refers to positions that are not yet in `rows`.
    indexes: RwLock<Vec<Arc<IndexData>>>,
    /// Monotonic data version, bumped on every mutation (while the rows
    /// write lock is held, so version order matches write order). Serves
    /// [`Table::data_version`] for view-freshness tracking.
    version: std::sync::atomic::AtomicU64,
}

impl MemTable {
    pub fn new(row_type: RowType, rows: Vec<Row>) -> Arc<MemTable> {
        let n = rows.len() as u64;
        Arc::new(MemTable {
            row_type,
            rows: RwLock::new(Arc::new(rows)),
            row_ids: RwLock::new(Arc::new((0..n).collect())),
            next_row_id: std::sync::atomic::AtomicU64::new(n),
            statistic: RwLock::new(None),
            indexes: RwLock::new(vec![]),
            version: std::sync::atomic::AtomicU64::new(0),
        })
    }

    pub fn with_statistic(self: Arc<Self>, s: Statistic) -> Arc<Self> {
        *self.statistic.write() = Some(s);
        self
    }

    pub fn rows(&self) -> Vec<Row> {
        self.rows.read().as_ref().clone()
    }

    pub fn insert(&self, row: Row) {
        let mut guard = self.rows.write();
        self.version
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        Arc::make_mut(&mut guard).push(row);
        let id = self
            .next_row_id
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        Arc::make_mut(&mut self.row_ids.write()).push(id);
        let access = RowsRef {
            rows: guard.as_slice(),
            arity: self.row_type.arity(),
        };
        for idx in self.indexes.write().iter_mut() {
            Arc::make_mut(idx).insert(&access, access.rows.len() - 1);
        }
    }

    pub fn replace_all(&self, rows: Vec<Row>) {
        let mut guard = self.rows.write();
        self.version
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let n = rows.len() as u64;
        let start = self
            .next_row_id
            .fetch_add(n, std::sync::atomic::Ordering::SeqCst);
        *guard = Arc::new(rows);
        *self.row_ids.write() = Arc::new((start..start + n).collect());
        let access = RowsRef {
            rows: guard.as_slice(),
            arity: self.row_type.arity(),
        };
        for idx in self.indexes.write().iter_mut() {
            let rebuilt = IndexData::build(idx.def.clone(), &access)
                .expect("existing index definition must stay valid");
            *Arc::make_mut(idx) = rebuilt;
        }
    }

    /// Stable ids of the current rows, parallel to [`MemTable::rows`].
    pub fn row_ids(&self) -> Vec<u64> {
        self.row_ids.read().as_ref().clone()
    }

    pub fn len(&self) -> usize {
        self.rows.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.read().is_empty()
    }
}

impl Table for MemTable {
    fn row_type(&self) -> RowType {
        self.row_type.clone()
    }

    fn statistic(&self) -> Statistic {
        self.statistic
            .read()
            .clone()
            .unwrap_or_else(|| Statistic::of_rows(self.rows.read().len() as f64))
    }

    fn scan(&self) -> Result<Box<dyn Iterator<Item = Row> + Send>> {
        // O(1) snapshot: rows are cloned lazily as the iterator advances,
        // off a shared `Arc` that later writes copy away from.
        let rows = Arc::clone(&self.rows.read());
        Ok(Box::new((0..rows.len()).map(move |i| rows[i].clone())))
    }

    fn scan_columns(&self) -> Option<Result<Vec<Column>>> {
        let rows = self.rows.read();
        Some(Ok(self
            .row_type
            .fields
            .iter()
            .enumerate()
            .map(|(i, f)| Column::from_rows(&f.ty.kind, &rows, i))
            .collect()))
    }

    fn range_scan_rows(&self) -> Option<usize> {
        if self.row_type.arity() == 0 {
            return None; // zero-arity rows can't be column batches
        }
        Some(self.rows.read().len())
    }

    fn as_mem_table(&self) -> Option<&MemTable> {
        Some(self)
    }

    fn indexes(&self) -> Vec<IndexDef> {
        self.indexes.read().iter().map(|i| i.def.clone()).collect()
    }

    fn index_probe_snapshot(&self, index: &str) -> Result<Option<Arc<dyn IndexProbe>>> {
        // Rows lock first, then indexes: same order as `insert`, so the
        // snapshot pairs the index state with exactly the rows it covers.
        let rows = self.rows.read();
        let Some(idx) = self
            .indexes
            .read()
            .iter()
            .find(|i| i.def.name == index)
            .cloned()
        else {
            return Ok(None);
        };
        Ok(Some(Arc::new(SnapshotProbe {
            data: RowsAccess {
                rows: Arc::clone(&rows),
                arity: self.row_type.arity(),
            },
            index: idx,
        })))
    }

    fn create_index(&self, def: &IndexDef) -> Result<bool> {
        let rows = self.rows.read();
        let mut indexes = self.indexes.write();
        if indexes.iter().any(|i| i.def.name == def.name) {
            return Err(CalciteError::validate(format!(
                "index '{}' already exists",
                def.name
            )));
        }
        let access = RowsRef {
            rows: rows.as_slice(),
            arity: self.row_type.arity(),
        };
        indexes.push(Arc::new(IndexData::build(def.clone(), &access)?));
        Ok(true)
    }

    fn drop_index(&self, name: &str) -> Result<bool> {
        let mut indexes = self.indexes.write();
        let before = indexes.len();
        indexes.retain(|i| i.def.name != name);
        Ok(indexes.len() < before)
    }

    fn txn_snapshot(&self) -> Option<Arc<dyn crate::txn::TxnVersion>> {
        // Hold the rows guard while cloning ids and indexes (same lock
        // order as `apply_delta`, which takes all three writes together):
        // a commit must not land between the clones, or the version would
        // pair pre-delta rows with post-delta ids/indexes.
        let rows_guard = self.rows.read();
        let rows = Arc::clone(&rows_guard);
        let ids = Arc::clone(&self.row_ids.read());
        let indexes = self.indexes.read().clone();
        drop(rows_guard);
        Some(Arc::new(MemTableVersion {
            arity: self.row_type.arity(),
            rows,
            ids,
            indexes,
        }))
    }

    fn apply_delta(&self, ops: &[crate::txn::DeltaOp]) -> Result<usize> {
        let mut rows_guard = self.rows.write();
        self.version
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let mut ids_guard = self.row_ids.write();
        let mut idx_guard = self.indexes.write();
        let rows = Arc::make_mut(&mut rows_guard);
        let ids = Arc::make_mut(&mut ids_guard);
        let outcome = crate::txn::apply_ops_to_rows(rows, ids, ops, self.row_type.arity())?;
        if let Some(max_id) = outcome.max_inserted_id {
            self.next_row_id
                .fetch_max(max_id + 1, std::sync::atomic::Ordering::SeqCst);
        }
        let access = RowsRef {
            rows: rows.as_slice(),
            arity: self.row_type.arity(),
        };
        for idx in idx_guard.iter_mut() {
            Arc::make_mut(idx).apply_delta(&access, &outcome.remap, &outcome.reinserted);
        }
        Ok(outcome.applied)
    }

    fn reserve_row_ids(&self, n: usize) -> Result<u64> {
        Ok(self
            .next_row_id
            .fetch_add(n as u64, std::sync::atomic::Ordering::SeqCst))
    }

    fn data_version(&self) -> Option<u64> {
        Some(self.version.load(std::sync::atomic::Ordering::SeqCst))
    }
}

/// A [`crate::txn::TxnVersion`] of a [`MemTable`]: three `Arc` clones
/// taken under one lock pass, pinned for the life of the transaction.
struct MemTableVersion {
    arity: usize,
    rows: Arc<Vec<Row>>,
    ids: Arc<Vec<u64>>,
    indexes: Vec<Arc<IndexData>>,
}

impl crate::txn::TxnVersion for MemTableVersion {
    fn row_count(&self) -> usize {
        self.rows.len()
    }

    fn row(&self, pos: usize) -> Row {
        self.rows[pos].clone()
    }

    fn row_id(&self, pos: usize) -> u64 {
        self.ids[pos]
    }

    fn index_defs(&self) -> Vec<IndexDef> {
        self.indexes.iter().map(|i| i.def.clone()).collect()
    }

    fn index_probe(&self, index: &str) -> Option<Arc<dyn IndexProbe>> {
        let idx = self.indexes.iter().find(|i| i.def.name == index)?.clone();
        Some(Arc::new(SnapshotProbe {
            data: RowsAccess {
                rows: Arc::clone(&self.rows),
                arity: self.arity,
            },
            index: idx,
        }))
    }
}

/// A named collection of tables, typically produced by an adapter's schema
/// factory from a model (§5, Figure 3). Interior-mutable so DDL (§9 future
/// work, implemented here) can add and drop tables on a live catalog.
#[derive(Default)]
pub struct Schema {
    tables: RwLock<HashMap<String, Arc<dyn Table>>>,
}

impl Schema {
    pub fn new() -> Schema {
        Schema::default()
    }

    pub fn add_table(&self, name: impl Into<String>, table: Arc<dyn Table>) {
        self.tables
            .write()
            .insert(name.into().to_ascii_lowercase(), table);
    }

    /// Removes a table; returns whether it existed.
    pub fn remove_table(&self, name: &str) -> bool {
        self.tables
            .write()
            .remove(&name.to_ascii_lowercase())
            .is_some()
    }

    pub fn table(&self, name: &str) -> Option<Arc<dyn Table>> {
        self.tables.read().get(&name.to_ascii_lowercase()).cloned()
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }
}

/// The root catalog: a set of named schemas plus a default search schema,
/// and the `ANALYZE`d statistics store the planner's stats-backed
/// metadata provider reads from.
pub struct Catalog {
    schemas: RwLock<HashMap<String, Arc<Schema>>>,
    default_schema: RwLock<Option<String>>,
    stats: Arc<crate::stats::StatsRegistry>,
    txns: Arc<crate::txn::TxnManager>,
    /// Incremental-view-maintenance registry, subscribed to the commit
    /// change feed so committed base-table deltas keep materialized
    /// views up to date.
    ivm: Arc<crate::ivm::IvmRegistry>,
    /// DDL generation counter, shared by every connection over this
    /// catalog: plans cached at generation `g` are discarded once the
    /// counter moves past `g`. Lives here (not per-connection) so
    /// core-level events — a maintained view going stale, a view
    /// dropped on another connection — invalidate every cache.
    generation: Arc<std::sync::atomic::AtomicU64>,
}

impl Default for Catalog {
    fn default() -> Catalog {
        let stats = Arc::new(crate::stats::StatsRegistry::default());
        let txns = Arc::new(crate::txn::TxnManager::default());
        let generation = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let ivm = Arc::new(crate::ivm::IvmRegistry::new(
            Arc::clone(&stats),
            Arc::clone(&generation),
        ));
        txns.register_observer(Arc::clone(&ivm) as Arc<dyn crate::txn::CommitObserver>);
        Catalog {
            schemas: RwLock::new(HashMap::new()),
            default_schema: RwLock::new(None),
            stats,
            txns,
            ivm,
            generation,
        }
    }
}

impl Catalog {
    pub fn new() -> Arc<Catalog> {
        Arc::new(Catalog::default())
    }

    /// The catalog's statistics store (qualified table name → stats),
    /// populated by `ANALYZE` and generation-stamped against the plan
    /// cache's DDL counter.
    pub fn stats(&self) -> &crate::stats::StatsRegistry {
        &self.stats
    }

    /// The maintained-view registry fed by this catalog's commit feed.
    pub fn ivm(&self) -> &Arc<crate::ivm::IvmRegistry> {
        &self.ivm
    }

    /// Current DDL/staleness generation. Cached plans carry the value
    /// current when they were built and are re-planned once it moves.
    pub fn generation(&self) -> u64 {
        self.generation.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Invalidates every plan cached against this catalog (DDL, ANALYZE,
    /// view freshness transitions).
    pub fn bump_generation(&self) -> u64 {
        self.generation
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst)
            + 1
    }

    /// The transaction manager every connection over this catalog
    /// shares: one timestamp clock, one commit lock, one conflict
    /// history, one (optional) write-ahead log.
    pub fn txns(&self) -> &Arc<crate::txn::TxnManager> {
        &self.txns
    }

    /// Every table in the catalog, resolved. Transactions capture their
    /// BEGIN snapshots from this set.
    pub fn all_tables(&self) -> Vec<TableRef> {
        let mut out = vec![];
        for schema_name in self.schema_names() {
            if let Some(schema) = self.schema(&schema_name) {
                for table_name in schema.table_names() {
                    if let Some(table) = schema.table(&table_name) {
                        out.push(TableRef::new(schema_name.clone(), table_name, table));
                    }
                }
            }
        }
        out
    }

    pub fn add_schema(&self, name: impl Into<String>, schema: Schema) {
        let name = name.into().to_ascii_lowercase();
        let mut schemas = self.schemas.write();
        let is_first = schemas.is_empty();
        schemas.insert(name.clone(), Arc::new(schema));
        if is_first {
            *self.default_schema.write() = Some(name);
        }
    }

    pub fn set_default_schema(&self, name: impl Into<String>) {
        *self.default_schema.write() = Some(name.into().to_ascii_lowercase());
    }

    pub fn default_schema_name(&self) -> Option<String> {
        self.default_schema.read().clone()
    }

    pub fn schema(&self, name: &str) -> Option<Arc<Schema>> {
        self.schemas.read().get(&name.to_ascii_lowercase()).cloned()
    }

    pub fn schema_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.schemas.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Resolves `[schema.]table` against the default schema.
    pub fn resolve(&self, parts: &[&str]) -> Result<TableRef> {
        match parts {
            [table] => {
                let default = self.default_schema.read().clone().ok_or_else(|| {
                    CalciteError::validate(format!(
                        "no default schema while resolving table '{table}'"
                    ))
                })?;
                self.resolve(&[&default, table])
            }
            [schema, table] => {
                let s = self.schema(schema).ok_or_else(|| {
                    CalciteError::validate(format!("schema '{schema}' not found"))
                })?;
                let t = s.table(table).ok_or_else(|| {
                    CalciteError::validate(format!("table '{schema}.{table}' not found"))
                })?;
                Ok(TableRef::new(
                    schema.to_ascii_lowercase(),
                    table.to_ascii_lowercase(),
                    t,
                ))
            }
            _ => Err(CalciteError::validate(format!(
                "cannot resolve table name {:?}",
                parts
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::Datum;
    use crate::types::{RowTypeBuilder, TypeKind};

    fn emp_table() -> Arc<MemTable> {
        MemTable::new(
            RowTypeBuilder::new()
                .add_not_null("deptno", TypeKind::Integer)
                .add("sal", TypeKind::Double)
                .build(),
            vec![
                vec![Datum::Int(10), Datum::Double(1000.0)],
                vec![Datum::Int(20), Datum::Double(2000.0)],
            ],
        )
    }

    #[test]
    fn mem_table_scan_and_stats() {
        let t = emp_table();
        let rows: Vec<Row> = t.scan().unwrap().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(t.statistic().row_count, 2.0);
        t.insert(vec![Datum::Int(30), Datum::Double(3000.0)]);
        assert_eq!(t.statistic().row_count, 3.0);
    }

    #[test]
    fn catalog_resolution() {
        let cat = Catalog::new();
        let s = Schema::new();
        s.add_table("emp", emp_table());
        cat.add_schema("hr", s);

        // Qualified.
        let r = cat.resolve(&["hr", "emp"]).unwrap();
        assert_eq!(r.qualified_name(), "hr.emp");
        // Unqualified falls back to the default (first) schema.
        let r = cat.resolve(&["emp"]).unwrap();
        assert_eq!(r.schema, "hr");
        // Case-insensitive.
        let r = cat.resolve(&["HR", "EMP"]).unwrap();
        assert_eq!(r.name, "emp");
    }

    #[test]
    fn catalog_errors() {
        let cat = Catalog::new();
        assert!(cat.resolve(&["nope"]).is_err());
        let s = Schema::new();
        s.add_table("emp", emp_table());
        cat.add_schema("hr", s);
        assert!(cat.resolve(&["hr", "nothere"]).is_err());
        assert!(cat.resolve(&["badschema", "emp"]).is_err());
    }

    #[test]
    fn default_schema_switch() {
        let cat = Catalog::new();
        let a = Schema::new();
        a.add_table("t", emp_table());
        cat.add_schema("a", a);
        let b = Schema::new();
        b.add_table("u", emp_table());
        cat.add_schema("b", b);
        assert!(cat.resolve(&["t"]).is_ok());
        cat.set_default_schema("b");
        assert!(cat.resolve(&["u"]).is_ok());
        assert!(cat.resolve(&["t"]).is_err());
    }

    #[test]
    fn snapshot_serves_consistent_ranges() {
        let t = MemTable::new(
            RowTypeBuilder::new()
                .add_not_null("v", TypeKind::Integer)
                .build(),
            (0..20).map(|i| vec![Datum::Int(i)]).collect(),
        );
        assert_eq!(t.range_scan_rows(), Some(20));
        let snap = t.scan_snapshot().unwrap().unwrap();
        assert_eq!(snap.row_count(), 20);
        // A row inserted after the snapshot is invisible to its ranges.
        t.insert(vec![Datum::Int(99)]);
        let mut it = snap.clone().scan_range(8, 10, 10).unwrap();
        let mut got = vec![];
        while let Some(cols) = it.next_batch().unwrap() {
            for i in 0..cols[0].len() {
                got.push(cols[0].get(i));
            }
        }
        assert_eq!(got, (10..20).map(Datum::Int).collect::<Vec<_>>());
        // But a fresh snapshot (and range_scan_rows) see it.
        assert_eq!(t.range_scan_rows(), Some(21));
        assert_eq!(t.scan_snapshot().unwrap().unwrap().row_count(), 21);
    }

    #[test]
    fn statistic_builders() {
        let s = Statistic::of_rows(50.0)
            .with_key(vec![0])
            .with_collation(vec![crate::traits::FieldCollation::asc(1)]);
        assert_eq!(s.row_count, 50.0);
        assert_eq!(s.keys, vec![vec![0]]);
        assert_eq!(s.collations.len(), 1);
    }
}
