//! Out-of-core execution support: the buffer-pool/spill layer.
//!
//! Three pieces cooperate here:
//!
//! * [`MemoryBudget`] — a shared accounting handle threaded through
//!   [`crate::exec::ExecContext`]. Operators that materialize build state
//!   (hash-join build side, aggregate state, sort runs) reserve bytes
//!   against it and degrade to their spilling variants when a reservation
//!   fails. The default budget is unbounded, so in-memory execution pays
//!   nothing.
//! * [`BufferPool`] — a fixed-size-page cache over spill files with a
//!   pluggable eviction policy ([`LruPolicy`] or [`ClockPolicy`]). All
//!   spill-file reads go through the pool page by page; repeated chunk
//!   scans (the hybrid-hash join re-reads build partitions) hit cached
//!   pages instead of the disk.
//! * [`RunWriter`]/[`Run`] — sorted-run storage: sequences of
//!   `(u64 key, Row)` entries framed into serialized column chunks (the
//!   on-disk form of a [`Column`] batch), appended to a [`SpillFile`]
//!   obtained from a [`TempFileProvider`].
//!
//! A [`SpillTracker`] records every spill decision and byte moved, so the
//! EXPLAIN surface and the differential tests can observe exactly when
//! execution left memory.

use crate::datum::{columns_to_rows, Column, Datum, Row};
use crate::error::{CalciteError, Result};
use crate::types::TypeKind;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Fixed page size of the buffer pool and the spill-file address space.
pub const PAGE_SIZE: usize = 32 * 1024;

/// Default buffer-pool capacity in pages (1 MiB): a bounded constant
/// overhead on top of the operator budget, not part of it.
pub const DEFAULT_POOL_PAGES: usize = 32;

/// Rows per serialized run chunk. One chunk is the unit of spill IO and
/// of deserialization on read-back.
pub const RUN_CHUNK_ROWS: usize = 1024;

// ---------------------------------------------------------------------
// Memory budget
// ---------------------------------------------------------------------

#[derive(Debug)]
struct BudgetInner {
    /// `usize::MAX` means unbounded.
    limit: usize,
    used: AtomicUsize,
    peak: AtomicUsize,
}

/// Byte-accounting handle shared by every operator of one execution.
/// Cloning shares the counters, so a plan's build operators compete for
/// one pool of memory the way they would in a real server.
#[derive(Clone, Debug)]
pub struct MemoryBudget {
    inner: Arc<BudgetInner>,
}

impl Default for MemoryBudget {
    fn default() -> MemoryBudget {
        MemoryBudget::unbounded()
    }
}

impl MemoryBudget {
    pub fn unbounded() -> MemoryBudget {
        MemoryBudget::with_limit(usize::MAX)
    }

    /// A budget of `n` bytes for all build-then-stream state of an
    /// execution.
    pub fn bytes(n: usize) -> MemoryBudget {
        MemoryBudget::with_limit(n)
    }

    fn with_limit(limit: usize) -> MemoryBudget {
        MemoryBudget {
            inner: Arc::new(BudgetInner {
                limit,
                used: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
            }),
        }
    }

    /// Test hook: a budget forced by the `RCALCITE_TEST_MEM_BUDGET`
    /// environment variable (bytes). The CI spill matrix sets it low so
    /// the whole suite runs its build operators through the spill paths.
    pub fn from_env() -> Option<MemoryBudget> {
        std::env::var("RCALCITE_TEST_MEM_BUDGET")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(MemoryBudget::bytes)
    }

    pub fn is_bounded(&self) -> bool {
        self.inner.limit != usize::MAX
    }

    /// The byte limit, `None` when unbounded.
    pub fn limit(&self) -> Option<usize> {
        self.is_bounded().then_some(self.inner.limit)
    }

    /// Tries to reserve `n` bytes; `false` means the caller must spill
    /// (or fail) instead of growing. Unbounded budgets always succeed.
    pub fn try_reserve(&self, n: usize) -> bool {
        let mut cur = self.inner.used.load(Ordering::Relaxed);
        loop {
            let next = match cur.checked_add(n) {
                Some(v) if v <= self.inner.limit => v,
                _ => return false,
            };
            match self.inner.used.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner.peak.fetch_max(next, Ordering::Relaxed);
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Returns `n` bytes to the budget.
    pub fn release(&self, n: usize) {
        let prev = self.inner.used.fetch_sub(n, Ordering::Relaxed);
        debug_assert!(prev >= n, "memory budget released more than reserved");
    }

    pub fn used(&self) -> usize {
        self.inner.used.load(Ordering::Relaxed)
    }

    pub fn peak(&self) -> usize {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// Spilling needs at least one page of working memory. Operators call
    /// this when they engage a spill path, surfacing a clear error for a
    /// budget that cannot hold a single page.
    pub fn require_spillable(&self) -> Result<()> {
        match self.limit() {
            Some(limit) if limit < PAGE_SIZE => Err(CalciteError::execution(format!(
                "memory budget of {limit} bytes is too small to hold one {PAGE_SIZE}-byte spill page"
            ))),
            _ => Ok(()),
        }
    }
}

/// RAII accounting handle over a [`MemoryBudget`]: grows/shrinks a
/// single reservation and releases whatever is still held on drop, so an
/// operator abandoned mid-stream (e.g. under a satisfied LIMIT) never
/// leaks budget from the shared pool.
pub struct MemoryReservation {
    budget: MemoryBudget,
    bytes: usize,
}

impl MemoryReservation {
    pub fn new(budget: MemoryBudget) -> MemoryReservation {
        MemoryReservation { budget, bytes: 0 }
    }

    /// Currently reserved bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Tries to reserve `n` more bytes; `false` means spill.
    pub fn try_grow(&mut self, n: usize) -> bool {
        if self.budget.try_reserve(n) {
            self.bytes += n;
            true
        } else {
            false
        }
    }

    /// Returns `n` bytes (saturating at the reservation size).
    pub fn shrink(&mut self, n: usize) {
        let n = n.min(self.bytes);
        self.budget.release(n);
        self.bytes -= n;
    }

    /// Returns everything held.
    pub fn release_all(&mut self) {
        self.budget.release(self.bytes);
        self.bytes = 0;
    }
}

impl Drop for MemoryReservation {
    fn drop(&mut self) {
        self.release_all();
    }
}

// ---------------------------------------------------------------------
// Spill statistics
// ---------------------------------------------------------------------

/// One spill decision: `spilled` of `total` partitions (or runs) of an
/// operator left memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpillEvent {
    pub op: &'static str,
    pub spilled: usize,
    pub total: usize,
}

#[derive(Default)]
struct TrackerInner {
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    runs: AtomicU64,
    chunks: AtomicU64,
    events: Mutex<Vec<SpillEvent>>,
}

/// Shared recorder of spill activity for one connection/context. The
/// differential suite asserts `bytes_written() == 0` under generous
/// budgets; EXPLAIN and logs render the per-operator events.
#[derive(Clone, Default)]
pub struct SpillTracker {
    inner: Arc<TrackerInner>,
}

impl SpillTracker {
    pub fn new() -> SpillTracker {
        SpillTracker::default()
    }

    /// Records a spill decision of `op` ("hash_join", "aggregate",
    /// "sort"): `spilled` of `total` partitions/runs went to disk.
    pub fn record(&self, op: &'static str, spilled: usize, total: usize) {
        self.inner
            .events
            .lock()
            .push(SpillEvent { op, spilled, total });
    }

    pub fn add_written(&self, n: u64) {
        self.inner.bytes_written.fetch_add(n, Ordering::Relaxed);
        self.inner.chunks.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_read(&self, n: u64) {
        self.inner.bytes_read.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_run(&self) {
        self.inner.runs.fetch_add(1, Ordering::Relaxed);
    }

    pub fn bytes_written(&self) -> u64 {
        self.inner.bytes_written.load(Ordering::Relaxed)
    }

    pub fn bytes_read(&self) -> u64 {
        self.inner.bytes_read.load(Ordering::Relaxed)
    }

    pub fn runs(&self) -> u64 {
        self.inner.runs.load(Ordering::Relaxed)
    }

    pub fn events(&self) -> Vec<SpillEvent> {
        self.inner.events.lock().clone()
    }

    /// True iff no spill file was ever written through this tracker.
    pub fn stayed_in_memory(&self) -> bool {
        self.bytes_written() == 0
    }

    pub fn reset(&self) {
        self.inner.bytes_written.store(0, Ordering::Relaxed);
        self.inner.bytes_read.store(0, Ordering::Relaxed);
        self.inner.runs.store(0, Ordering::Relaxed);
        self.inner.chunks.store(0, Ordering::Relaxed);
        self.inner.events.lock().clear();
    }
}

// ---------------------------------------------------------------------
// Temp files and spill files
// ---------------------------------------------------------------------

/// Source of scratch files for spill runs. The standard provider hands
/// out unlinked files in the OS temp dir; backends may provide rooted
/// directories (useful to inspect spill traffic in tests).
pub trait TempFileProvider: Send + Sync {
    /// Creates a fresh read/write scratch file. `label` names the
    /// consumer ("hash_join", "sort", ...) for observability.
    fn create_file(&self, label: &str) -> Result<File>;

    /// Human-readable location description for EXPLAIN/docs.
    fn describe(&self) -> String;
}

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Default provider: files in [`std::env::temp_dir`], unlinked as soon
/// as they are created, so spill space is reclaimed by the OS even if
/// the process dies mid-query.
#[derive(Default, Clone, Copy, Debug)]
pub struct StdTempProvider;

impl TempFileProvider for StdTempProvider {
    fn create_file(&self, label: &str) -> Result<File> {
        let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "rcalcite-spill-{}-{n}-{label}.run",
            std::process::id()
        ));
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| CalciteError::execution(format!("cannot create spill file: {e}")))?;
        // Unlink immediately: the handle keeps the data alive, the
        // directory entry never outlives the query.
        let _ = std::fs::remove_file(&path);
        Ok(file)
    }

    fn describe(&self) -> String {
        format!("{} (unlinked)", std::env::temp_dir().display())
    }
}

static FILE_IDS: AtomicU64 = AtomicU64::new(0);

/// One spill file: append-only writes, page-addressed reads (served
/// through the [`BufferPool`]).
pub struct SpillFile {
    id: u64,
    file: Mutex<File>,
    len: AtomicU64,
    tracker: SpillTracker,
}

impl SpillFile {
    pub fn create(
        temp: &dyn TempFileProvider,
        label: &str,
        tracker: SpillTracker,
    ) -> Result<Arc<SpillFile>> {
        Ok(Arc::new(SpillFile {
            id: FILE_IDS.fetch_add(1, Ordering::Relaxed),
            file: Mutex::new(temp.create_file(label)?),
            len: AtomicU64::new(0),
            tracker,
        }))
    }

    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a serialized blob, returning its offset.
    pub fn append(&self, bytes: &[u8]) -> Result<u64> {
        let mut f = self.file.lock();
        let off = self.len.load(Ordering::Relaxed);
        f.seek(SeekFrom::Start(off))
            .and_then(|_| f.write_all(bytes))
            .map_err(|e| CalciteError::execution(format!("spill write failed: {e}")))?;
        self.len.store(off + bytes.len() as u64, Ordering::Relaxed);
        self.tracker.add_written(bytes.len() as u64);
        Ok(off)
    }

    /// Reads the page at `page_no` straight from disk (the pool's miss
    /// path). Short pages at the tail are returned at their actual size.
    fn read_page(&self, page_no: u64) -> Result<Vec<u8>> {
        let off = page_no * PAGE_SIZE as u64;
        let len = self.len();
        if off >= len {
            return Ok(vec![]);
        }
        let n = PAGE_SIZE.min((len - off) as usize);
        let mut buf = vec![0u8; n];
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(off))
            .and_then(|_| f.read_exact(&mut buf))
            .map_err(|e| CalciteError::execution(format!("spill read failed: {e}")))?;
        self.tracker.add_read(n as u64);
        Ok(buf)
    }
}

// ---------------------------------------------------------------------
// Eviction policies and the buffer pool
// ---------------------------------------------------------------------

/// Cache key of one page: (spill-file id, page number).
pub type PageKey = (u64, u64);

/// Chooses which cached page to drop when the pool is full. Policies see
/// inserts and touches and surrender victims one at a time.
pub trait EvictionPolicy: Send {
    fn record_insert(&mut self, key: PageKey);
    fn record_touch(&mut self, key: PageKey);
    fn evict(&mut self) -> Option<PageKey>;
    fn name(&self) -> &'static str;
}

/// Exact LRU: a monotonic stamp per touch, victim is the smallest stamp.
#[derive(Default)]
pub struct LruPolicy {
    clock: u64,
    stamps: HashMap<PageKey, u64>,
}

impl EvictionPolicy for LruPolicy {
    fn record_insert(&mut self, key: PageKey) {
        self.record_touch(key);
    }

    fn record_touch(&mut self, key: PageKey) {
        self.clock += 1;
        self.stamps.insert(key, self.clock);
    }

    fn evict(&mut self) -> Option<PageKey> {
        let victim = *self.stamps.iter().min_by_key(|(_, &s)| s)?.0;
        self.stamps.remove(&victim);
        Some(victim)
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

/// Second-chance clock: one reference bit per page, a hand that sweeps
/// the ring clearing bits until it finds an unreferenced victim.
#[derive(Default)]
pub struct ClockPolicy {
    ring: Vec<PageKey>,
    referenced: HashMap<PageKey, bool>,
    hand: usize,
}

impl EvictionPolicy for ClockPolicy {
    fn record_insert(&mut self, key: PageKey) {
        self.ring.push(key);
        self.referenced.insert(key, true);
    }

    fn record_touch(&mut self, key: PageKey) {
        if let Some(r) = self.referenced.get_mut(&key) {
            *r = true;
        }
    }

    fn evict(&mut self) -> Option<PageKey> {
        if self.ring.is_empty() {
            return None;
        }
        loop {
            if self.hand >= self.ring.len() {
                self.hand = 0;
            }
            let key = self.ring[self.hand];
            let bit = self.referenced.get_mut(&key)?;
            if *bit {
                *bit = false;
                self.hand += 1;
            } else {
                self.ring.remove(self.hand);
                self.referenced.remove(&key);
                return Some(key);
            }
        }
    }

    fn name(&self) -> &'static str {
        "clock"
    }
}

struct PoolInner {
    frames: HashMap<PageKey, Arc<Vec<u8>>>,
    policy: Box<dyn EvictionPolicy>,
    hits: u64,
    misses: u64,
}

/// Fixed-capacity cache of spill-file pages. All run reads flow through
/// here; the pool is a bounded constant overhead outside the operator
/// byte budget (its size is pages, not data).
pub struct BufferPool {
    capacity: usize,
    inner: Mutex<PoolInner>,
}

impl Default for BufferPool {
    fn default() -> BufferPool {
        BufferPool::new(DEFAULT_POOL_PAGES, Box::<LruPolicy>::default())
    }
}

impl BufferPool {
    pub fn new(capacity: usize, policy: Box<dyn EvictionPolicy>) -> BufferPool {
        BufferPool {
            capacity: capacity.max(1),
            inner: Mutex::new(PoolInner {
                frames: HashMap::new(),
                policy,
                hits: 0,
                misses: 0,
            }),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn policy_name(&self) -> &'static str {
        self.inner.lock().policy.name()
    }

    /// (cache hits, cache misses) so far.
    pub fn hit_stats(&self) -> (u64, u64) {
        let g = self.inner.lock();
        (g.hits, g.misses)
    }

    /// The page at `page_no` of `file`, from cache or disk.
    pub fn page(&self, file: &SpillFile, page_no: u64) -> Result<Arc<Vec<u8>>> {
        let key = (file.id, page_no);
        {
            let mut g = self.inner.lock();
            if let Some(p) = g.frames.get(&key).cloned() {
                g.hits += 1;
                g.policy.record_touch(key);
                return Ok(p);
            }
            g.misses += 1;
        }
        let data = Arc::new(file.read_page(page_no)?);
        let mut g = self.inner.lock();
        while g.frames.len() >= self.capacity {
            match g.policy.evict() {
                Some(victim) => {
                    g.frames.remove(&victim);
                }
                None => break,
            }
        }
        g.frames.insert(key, data.clone());
        g.policy.record_insert(key);
        Ok(data)
    }

    /// Reads an arbitrary byte range by assembling the overlapping pages.
    pub fn read_range(&self, file: &SpillFile, offset: u64, len: usize) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(len);
        let mut pos = offset;
        let end = offset + len as u64;
        while pos < end {
            let page_no = pos / PAGE_SIZE as u64;
            let page = self.page(file, page_no)?;
            let in_page = (pos % PAGE_SIZE as u64) as usize;
            if in_page >= page.len() {
                return Err(CalciteError::execution(
                    "spill read past end of file (corrupt run index)",
                ));
            }
            let take = page.len().min(in_page + (end - pos) as usize) - in_page;
            out.extend_from_slice(&page[in_page..in_page + take]);
            pos += take as u64;
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// Serialization of datums, columns and run chunks
// ---------------------------------------------------------------------

/// Growable little-endian byte sink for spill serialization.
#[derive(Default)]
pub struct ByteWriter {
    pub buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn bools(&mut self, bs: &[bool]) {
        self.buf.extend(bs.iter().map(|&b| b as u8));
    }

    /// Serializes one datum (tag byte + payload). Extension values have
    /// no stable byte form and refuse to spill.
    pub fn datum(&mut self, d: &Datum) -> Result<()> {
        match d {
            Datum::Null => self.u8(0),
            Datum::Bool(b) => {
                self.u8(1);
                self.u8(*b as u8);
            }
            Datum::Int(v) => {
                self.u8(2);
                self.i64(*v);
            }
            Datum::Double(v) => {
                self.u8(3);
                self.f64(*v);
            }
            Datum::Str(s) => {
                self.u8(4);
                self.str(s);
            }
            Datum::Date(v) => {
                self.u8(5);
                self.i64(*v as i64);
            }
            Datum::Timestamp(v) => {
                self.u8(6);
                self.i64(*v);
            }
            Datum::Interval(v) => {
                self.u8(7);
                self.i64(*v);
            }
            Datum::Array(items) => {
                self.u8(8);
                self.u32(items.len() as u32);
                for it in items.iter() {
                    self.datum(it)?;
                }
            }
            Datum::Map(entries) => {
                self.u8(9);
                self.u32(entries.len() as u32);
                for (k, v) in entries.iter() {
                    self.str(k);
                    self.datum(v)?;
                }
            }
            Datum::Ext(_) => {
                return Err(CalciteError::execution(
                    "cannot spill extension-typed values to disk",
                ))
            }
        }
        Ok(())
    }

    /// Serializes a column in its typed representation.
    pub fn column(&mut self, c: &Column) -> Result<()> {
        match c {
            Column::Int { values, valid } => {
                self.u8(0);
                self.u32(values.len() as u32);
                for v in values {
                    self.i64(*v);
                }
                self.bools(valid);
            }
            Column::Double { values, valid } => {
                self.u8(1);
                self.u32(values.len() as u32);
                for v in values {
                    self.f64(*v);
                }
                self.bools(valid);
            }
            Column::Bool { values, valid } => {
                self.u8(2);
                self.u32(values.len() as u32);
                self.bools(values);
                self.bools(valid);
            }
            Column::Str { values, valid } => {
                self.u8(3);
                self.u32(values.len() as u32);
                for v in values {
                    self.str(v);
                }
                self.bools(valid);
            }
            Column::Generic(datums) => {
                self.u8(4);
                self.u32(datums.len() as u32);
                for d in datums {
                    self.datum(d)?;
                }
            }
        }
        Ok(())
    }
}

/// Cursor over serialized spill bytes; every read is bounds-checked so a
/// corrupt run surfaces as an execution error, never a panic.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn corrupt() -> CalciteError {
    CalciteError::execution("corrupt spill chunk (truncated read)")
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt());
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn str(&mut self) -> Result<&'a str> {
        let n = self.u32()? as usize;
        std::str::from_utf8(self.take(n)?).map_err(|_| corrupt())
    }

    pub fn bools(&mut self, n: usize) -> Result<Vec<bool>> {
        Ok(self.take(n)?.iter().map(|&b| b != 0).collect())
    }

    pub fn datum(&mut self) -> Result<Datum> {
        Ok(match self.u8()? {
            0 => Datum::Null,
            1 => Datum::Bool(self.u8()? != 0),
            2 => Datum::Int(self.i64()?),
            3 => Datum::Double(self.f64()?),
            4 => Datum::str(self.str()?),
            5 => Datum::Date(self.i64()? as i32),
            6 => Datum::Timestamp(self.i64()?),
            7 => Datum::Interval(self.i64()?),
            8 => {
                let n = self.u32()? as usize;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.datum()?);
                }
                Datum::array(items)
            }
            9 => {
                let n = self.u32()? as usize;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = self.str()?.to_string();
                    entries.push((k, self.datum()?));
                }
                Datum::map(entries)
            }
            _ => return Err(corrupt()),
        })
    }

    pub fn column(&mut self) -> Result<Column> {
        Ok(match self.u8()? {
            0 => {
                let n = self.u32()? as usize;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(self.i64()?);
                }
                Column::Int {
                    values,
                    valid: self.bools(n)?,
                }
            }
            1 => {
                let n = self.u32()? as usize;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(self.f64()?);
                }
                Column::Double {
                    values,
                    valid: self.bools(n)?,
                }
            }
            2 => {
                let n = self.u32()? as usize;
                Column::Bool {
                    values: self.bools(n)?,
                    valid: self.bools(n)?,
                }
            }
            3 => {
                let n = self.u32()? as usize;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(Arc::from(self.str()?));
                }
                Column::Str {
                    values,
                    valid: self.bools(n)?,
                }
            }
            4 => {
                let n = self.u32()? as usize;
                let mut datums = Vec::with_capacity(n);
                for _ in 0..n {
                    datums.push(self.datum()?);
                }
                Column::Generic(datums)
            }
            _ => return Err(corrupt()),
        })
    }
}

/// Rough heap footprint of a datum, for budget accounting. Estimates err
/// a little high on purpose: reserving too much spills early, reserving
/// too little defeats the budget.
pub fn datum_bytes(d: &Datum) -> usize {
    16 + match d {
        Datum::Str(s) => s.len(),
        Datum::Array(items) => items.iter().map(datum_bytes).sum(),
        Datum::Map(entries) => entries.iter().map(|(k, v)| k.len() + datum_bytes(v)).sum(),
        _ => 0,
    }
}

/// Rough heap footprint of a row.
pub fn row_bytes(r: &Row) -> usize {
    24 + r.iter().map(datum_bytes).sum::<usize>()
}

/// Rough heap footprint of a column's contents.
pub fn column_bytes(c: &Column) -> usize {
    match c {
        Column::Int { values, .. } => values.len() * 9,
        Column::Double { values, .. } => values.len() * 9,
        Column::Bool { values, .. } => values.len() * 2,
        Column::Str { values, .. } => values.iter().map(|s| 24 + s.len()).sum(),
        Column::Generic(ds) => ds.iter().map(datum_bytes).sum(),
    }
}

// ---------------------------------------------------------------------
// Runs: (key, row) sequences framed into serialized column chunks
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
struct ChunkMeta {
    offset: u64,
    len: usize,
    rows: usize,
}

/// Writes a run of `(u64 key, Row)` entries to a spill file. Entries are
/// buffered to [`RUN_CHUNK_ROWS`] and flushed as one serialized column
/// chunk (keys vector + one [`Column`] per field), so the on-disk form
/// mirrors the in-memory batch representation.
pub struct RunWriter {
    file: Arc<SpillFile>,
    kinds: Arc<Vec<TypeKind>>,
    keys: Vec<u64>,
    rows: Vec<Row>,
    chunks: Vec<ChunkMeta>,
    total_rows: usize,
    total_bytes: usize,
}

impl RunWriter {
    pub fn new(file: Arc<SpillFile>, kinds: Arc<Vec<TypeKind>>) -> RunWriter {
        RunWriter {
            file,
            kinds,
            keys: vec![],
            rows: vec![],
            chunks: vec![],
            total_rows: 0,
            total_bytes: 0,
        }
    }

    /// Rows written (including the buffered tail).
    pub fn rows(&self) -> usize {
        self.total_rows
    }

    pub fn push(&mut self, key: u64, row: Row) -> Result<()> {
        self.keys.push(key);
        self.rows.push(row);
        self.total_rows += 1;
        if self.rows.len() >= RUN_CHUNK_ROWS {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> Result<()> {
        if self.rows.is_empty() {
            return Ok(());
        }
        let rows = std::mem::take(&mut self.rows);
        let keys = std::mem::take(&mut self.keys);
        let mut w = ByteWriter::new();
        w.u32(rows.len() as u32);
        w.u32(self.kinds.len() as u32);
        for k in &keys {
            w.u64(*k);
        }
        for (i, kind) in self.kinds.iter().enumerate() {
            let col = Column::from_datums(kind, rows.iter().map(|r| r[i].clone()));
            w.column(&col)?;
        }
        let offset = self.file.append(&w.buf)?;
        self.total_bytes += w.buf.len();
        self.chunks.push(ChunkMeta {
            offset,
            len: w.buf.len(),
            rows: rows.len(),
        });
        Ok(())
    }

    /// Flushes the tail and seals the run.
    pub fn finish(mut self) -> Result<Run> {
        self.flush_chunk()?;
        self.file.tracker.add_run();
        Ok(Run {
            file: self.file,
            kinds: self.kinds,
            chunks: self.chunks,
            total_rows: self.total_rows,
            total_bytes: self.total_bytes,
        })
    }
}

/// A sealed run: an ordered sequence of `(key, Row)` entries on disk.
/// Cursors stream it chunk by chunk through the buffer pool; a run can
/// be re-scanned by opening a new cursor.
#[derive(Clone)]
pub struct Run {
    file: Arc<SpillFile>,
    kinds: Arc<Vec<TypeKind>>,
    chunks: Vec<ChunkMeta>,
    total_rows: usize,
    total_bytes: usize,
}

impl Run {
    pub fn rows(&self) -> usize {
        self.total_rows
    }

    /// Serialized size on disk — the load-back estimate hybrid joins use
    /// to decide whether a partition now fits in memory.
    pub fn bytes(&self) -> usize {
        self.total_bytes
    }

    pub fn is_empty(&self) -> bool {
        self.total_rows == 0
    }

    pub fn cursor(&self) -> RunCursor {
        RunCursor {
            run: self.clone(),
            chunk: 0,
            buffered: std::collections::VecDeque::new(),
        }
    }
}

/// Streaming reader over a [`Run`]: holds one deserialized chunk at a
/// time.
pub struct RunCursor {
    run: Run,
    chunk: usize,
    buffered: std::collections::VecDeque<(u64, Row)>,
}

impl RunCursor {
    pub fn next(&mut self, pool: &BufferPool) -> Result<Option<(u64, Row)>> {
        loop {
            if let Some(e) = self.buffered.pop_front() {
                return Ok(Some(e));
            }
            let Some(meta) = self.run.chunks.get(self.chunk) else {
                return Ok(None);
            };
            self.chunk += 1;
            let bytes = pool.read_range(&self.run.file, meta.offset, meta.len)?;
            let mut r = ByteReader::new(&bytes);
            let n = r.u32()? as usize;
            let arity = r.u32()? as usize;
            if n != meta.rows || arity != self.run.kinds.len() {
                return Err(corrupt());
            }
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                keys.push(r.u64()?);
            }
            let mut cols = Vec::with_capacity(arity);
            for _ in 0..arity {
                cols.push(r.column()?);
            }
            let rows = if arity == 0 {
                vec![vec![]; n]
            } else {
                columns_to_rows(&cols)
            };
            if rows.len() != n {
                return Err(corrupt());
            }
            self.buffered.extend(keys.into_iter().zip(rows));
        }
    }
}

// ---------------------------------------------------------------------
// SpillEnv: the bundle execution engines thread to their operators
// ---------------------------------------------------------------------

/// Everything a spilling operator needs, cloned off the `ExecContext`:
/// the budget, the stats recorder, the temp-file source and the shared
/// page pool.
#[derive(Clone)]
pub struct SpillEnv {
    pub budget: MemoryBudget,
    pub tracker: SpillTracker,
    pub temp: Arc<dyn TempFileProvider>,
    pub pool: Arc<BufferPool>,
}

impl Default for SpillEnv {
    fn default() -> SpillEnv {
        SpillEnv {
            budget: MemoryBudget::unbounded(),
            tracker: SpillTracker::new(),
            temp: Arc::new(StdTempProvider),
            pool: Arc::new(BufferPool::default()),
        }
    }
}

impl SpillEnv {
    /// Creates a run writer over a fresh spill file.
    pub fn run_writer(&self, label: &str, kinds: Arc<Vec<TypeKind>>) -> Result<RunWriter> {
        let file = SpillFile::create(self.temp.as_ref(), label, self.tracker.clone())?;
        Ok(RunWriter::new(file, kinds))
    }

    /// Creates a bare spill file for custom (non-run) chunk formats.
    pub fn spill_file(&self, label: &str) -> Result<Arc<SpillFile>> {
        SpillFile::create(self.temp.as_ref(), label, self.tracker.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_reserve_release_peak() {
        let b = MemoryBudget::bytes(100);
        assert!(b.is_bounded());
        assert!(b.try_reserve(60));
        assert!(!b.try_reserve(50));
        assert!(b.try_reserve(40));
        assert_eq!(b.used(), 100);
        b.release(70);
        assert_eq!(b.used(), 30);
        assert_eq!(b.peak(), 100);
        assert!(MemoryBudget::unbounded().try_reserve(usize::MAX / 2));
    }

    #[test]
    fn budget_too_small_for_a_page_errors() {
        assert!(MemoryBudget::bytes(PAGE_SIZE - 1)
            .require_spillable()
            .is_err());
        assert!(MemoryBudget::bytes(PAGE_SIZE).require_spillable().is_ok());
        assert!(MemoryBudget::unbounded().require_spillable().is_ok());
    }

    fn sample_rows(n: usize) -> Vec<(u64, Row)> {
        (0..n)
            .map(|i| {
                (
                    i as u64,
                    vec![
                        Datum::Int(i as i64),
                        if i % 7 == 0 {
                            Datum::Null
                        } else {
                            Datum::str(format!("value-{i}"))
                        },
                        Datum::Double(i as f64 * 0.5),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn run_round_trips_across_chunks() {
        let env = SpillEnv::default();
        let kinds = Arc::new(vec![TypeKind::Integer, TypeKind::Varchar, TypeKind::Double]);
        let mut w = env.run_writer("test", kinds).unwrap();
        let entries = sample_rows(RUN_CHUNK_ROWS * 2 + 37);
        for (k, r) in &entries {
            w.push(*k, r.clone()).unwrap();
        }
        let run = w.finish().unwrap();
        assert_eq!(run.rows(), entries.len());
        assert!(env.tracker.bytes_written() > 0);
        let mut cur = run.cursor();
        let mut got = vec![];
        while let Some(e) = cur.next(&env.pool).unwrap() {
            got.push(e);
        }
        assert_eq!(got, entries);
        // Rewind: a fresh cursor reads the same entries, served from the
        // pool cache this time.
        let (_, misses_before) = env.pool.hit_stats();
        let mut cur = run.cursor();
        let mut again = vec![];
        while let Some(e) = cur.next(&env.pool).unwrap() {
            again.push(e);
        }
        assert_eq!(again, entries);
        let (hits, misses) = env.pool.hit_stats();
        assert!(hits > 0, "rescan should hit the page cache");
        assert!(misses >= misses_before);
    }

    #[test]
    fn datum_serialization_round_trips() {
        let samples = vec![
            Datum::Null,
            Datum::Bool(true),
            Datum::Int(-42),
            Datum::Double(2.75),
            Datum::str("héllo"),
            Datum::Date(17000),
            Datum::Timestamp(1_528_632_000_000),
            Datum::Interval(3_600_000),
            Datum::array(vec![Datum::Int(1), Datum::Null, Datum::str("x")]),
            Datum::map(vec![("k".to_string(), Datum::Int(9))]),
        ];
        let mut w = ByteWriter::new();
        for d in &samples {
            w.datum(d).unwrap();
        }
        let mut r = ByteReader::new(&w.buf);
        for d in &samples {
            assert_eq!(&r.datum().unwrap(), d);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn zero_arity_run_round_trips() {
        let env = SpillEnv::default();
        let mut w = env.run_writer("zero", Arc::new(vec![])).unwrap();
        for i in 0..10u64 {
            w.push(i, vec![]).unwrap();
        }
        let run = w.finish().unwrap();
        let mut cur = run.cursor();
        let mut n = 0;
        while let Some((k, row)) = cur.next(&env.pool).unwrap() {
            assert_eq!(k, n);
            assert!(row.is_empty());
            n += 1;
        }
        assert_eq!(n, 10);
    }

    fn exercise_policy(policy: Box<dyn EvictionPolicy>) {
        let pool = BufferPool::new(2, policy);
        let env = SpillEnv::default();
        let file = env.spill_file("evict").unwrap();
        // Three pages of data; capacity two forces evictions.
        file.append(&vec![7u8; PAGE_SIZE * 3]).unwrap();
        for page in [0u64, 1, 2, 0, 1, 2] {
            let p = pool.page(&file, page).unwrap();
            assert_eq!(p.len(), PAGE_SIZE);
            assert!(p.iter().all(|&b| b == 7));
        }
        let (_, misses) = pool.hit_stats();
        assert!(misses >= 4, "capacity 2 over 3 pages must evict");
    }

    #[test]
    fn lru_and_clock_policies_evict_correctly() {
        exercise_policy(Box::<LruPolicy>::default());
        exercise_policy(Box::<ClockPolicy>::default());
    }

    #[test]
    fn ext_values_refuse_to_spill() {
        #[derive(Debug)]
        struct Fake;
        impl std::fmt::Display for Fake {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "fake")
            }
        }
        impl crate::datum::ExtValue for Fake {
            fn type_name(&self) -> &'static str {
                "fake"
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn ext_eq(&self, _other: &dyn crate::datum::ExtValue) -> bool {
                false
            }
        }
        let mut w = ByteWriter::new();
        assert!(w.datum(&Datum::Ext(Arc::new(Fake))).is_err());
    }

    #[test]
    fn tracker_records_events() {
        let t = SpillTracker::new();
        assert!(t.stayed_in_memory());
        t.record("hash_join", 3, 8);
        t.add_written(100);
        assert!(!t.stayed_in_memory());
        assert_eq!(
            t.events(),
            vec![SpillEvent {
                op: "hash_join",
                spilled: 3,
                total: 8
            }]
        );
        t.reset();
        assert!(t.stayed_in_memory());
        assert!(t.events().is_empty());
    }
}
