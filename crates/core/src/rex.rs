//! Row expressions (`RexNode`), the scalar expression language used inside
//! relational operators, together with type derivation, evaluation and the
//! structural utilities optimizer rules rely on (conjunct splitting, input
//! remapping, ...).

use crate::datum::{parse_date, parse_timestamp, Datum};
use crate::error::{CalciteError, Result};
use crate::types::{RelType, TypeKind};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// A user-defined scalar function (extension point; `rcalcite-geo` registers
/// the `ST_*` family through this type).
pub struct ScalarUdf {
    pub name: String,
    /// Derives the return type from argument types.
    pub ret_type: fn(&[RelType]) -> RelType,
    /// Evaluates the function on materialized arguments. NULL handling is
    /// the function's responsibility.
    pub eval: fn(&[Datum]) -> Result<Datum>,
}

impl fmt::Debug for ScalarUdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ScalarUdf({})", self.name)
    }
}

impl PartialEq for ScalarUdf {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}
impl Eq for ScalarUdf {}

/// Registry of user-defined scalar functions, consulted by the SQL
/// validator and the expression evaluator. Extensions (e.g. the geospatial
/// `ST_*` family, §7.3) register here.
#[derive(Default, Clone)]
pub struct FunctionRegistry {
    fns: std::collections::HashMap<String, Arc<ScalarUdf>>,
}

impl FunctionRegistry {
    pub fn new() -> FunctionRegistry {
        FunctionRegistry::default()
    }

    pub fn register(&mut self, udf: ScalarUdf) {
        self.fns
            .insert(udf.name.to_ascii_uppercase(), Arc::new(udf));
    }

    pub fn lookup(&self, name: &str) -> Option<Arc<ScalarUdf>> {
        self.fns.get(&name.to_ascii_uppercase()).cloned()
    }

    pub fn names(&self) -> Vec<String> {
        let mut n: Vec<String> = self.fns.keys().cloned().collect();
        n.sort();
        n
    }
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuiltinFn {
    Upper,
    Lower,
    CharLength,
    Substring,
    Abs,
    Floor,
    Ceil,
    Sqrt,
    Power,
    Coalesce,
    NullIf,
}

impl BuiltinFn {
    pub fn name(&self) -> &'static str {
        match self {
            BuiltinFn::Upper => "UPPER",
            BuiltinFn::Lower => "LOWER",
            BuiltinFn::CharLength => "CHAR_LENGTH",
            BuiltinFn::Substring => "SUBSTRING",
            BuiltinFn::Abs => "ABS",
            BuiltinFn::Floor => "FLOOR",
            BuiltinFn::Ceil => "CEIL",
            BuiltinFn::Sqrt => "SQRT",
            BuiltinFn::Power => "POWER",
            BuiltinFn::Coalesce => "COALESCE",
            BuiltinFn::NullIf => "NULLIF",
        }
    }

    pub fn by_name(name: &str) -> Option<BuiltinFn> {
        Some(match name.to_ascii_uppercase().as_str() {
            "UPPER" => BuiltinFn::Upper,
            "LOWER" => BuiltinFn::Lower,
            "CHAR_LENGTH" | "CHARACTER_LENGTH" | "LENGTH" => BuiltinFn::CharLength,
            "SUBSTRING" | "SUBSTR" => BuiltinFn::Substring,
            "ABS" => BuiltinFn::Abs,
            "FLOOR" => BuiltinFn::Floor,
            "CEIL" | "CEILING" => BuiltinFn::Ceil,
            "SQRT" => BuiltinFn::Sqrt,
            "POWER" | "POW" => BuiltinFn::Power,
            "COALESCE" => BuiltinFn::Coalesce,
            "NULLIF" => BuiltinFn::NullIf,
            _ => return None,
        })
    }
}

/// Operator of a [`RexNode::Call`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    Plus,
    Minus,
    Times,
    Divide,
    Mod,
    /// Unary negation.
    Neg,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Not,
    IsNull,
    IsNotNull,
    Like,
    /// `CASE WHEN c1 THEN v1 [WHEN c2 THEN v2 ...] ELSE e END`; arguments
    /// are `[c1, v1, c2, v2, ..., e]` (odd length).
    Case,
    /// CAST to the call's result type.
    Cast,
    /// `expr[index]` item access on ARRAY (0-based, as in the paper's
    /// `_MAP['loc'][0]` example) and MAP values.
    Item,
    /// String concatenation `||`.
    Concat,
    Func(BuiltinFn),
    Udf(Arc<ScalarUdf>),
}

impl Op {
    pub fn is_comparison(&self) -> bool {
        matches!(self, Op::Eq | Op::Ne | Op::Lt | Op::Le | Op::Gt | Op::Ge)
    }

    /// For comparisons: the operator with sides swapped (`<` becomes `>`).
    pub fn swapped(&self) -> Option<Op> {
        Some(match self {
            Op::Eq => Op::Eq,
            Op::Ne => Op::Ne,
            Op::Lt => Op::Gt,
            Op::Le => Op::Ge,
            Op::Gt => Op::Lt,
            Op::Ge => Op::Le,
            _ => return None,
        })
    }

    /// Negated comparison (`<` becomes `>=`).
    pub fn negated(&self) -> Option<Op> {
        Some(match self {
            Op::Eq => Op::Ne,
            Op::Ne => Op::Eq,
            Op::Lt => Op::Ge,
            Op::Le => Op::Gt,
            Op::Gt => Op::Le,
            Op::Ge => Op::Lt,
            _ => return None,
        })
    }

    fn symbol(&self) -> &str {
        match self {
            Op::Plus => "+",
            Op::Minus => "-",
            Op::Times => "*",
            Op::Divide => "/",
            Op::Mod => "%",
            Op::Neg => "-",
            Op::Eq => "=",
            Op::Ne => "<>",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::And => "AND",
            Op::Or => "OR",
            Op::Not => "NOT",
            Op::IsNull => "IS NULL",
            Op::IsNotNull => "IS NOT NULL",
            Op::Like => "LIKE",
            Op::Case => "CASE",
            Op::Cast => "CAST",
            Op::Item => "ITEM",
            Op::Concat => "||",
            Op::Func(_) | Op::Udf(_) => "",
        }
    }
}

/// A scalar row expression.
#[derive(Debug, Clone, PartialEq)]
pub enum RexNode {
    /// Reference to a field of the input row, `$index`.
    InputRef { index: usize, ty: RelType },
    /// A constant.
    Literal { value: Datum, ty: RelType },
    /// A dynamic parameter (`?` placeholder in prepared statements),
    /// numbered by lexical position. The plan is compiled once with
    /// parameters unbound; execution supplies values through the
    /// execution context (`ExecContext::with_params`) and the engines
    /// substitute them via [`RexNode::bind_params`].
    DynamicParam { index: usize, ty: RelType },
    /// An operator or function application.
    Call {
        op: Op,
        args: Vec<RexNode>,
        ty: RelType,
    },
}

impl RexNode {
    // ---------------------------------------------------------------
    // Constructors
    // ---------------------------------------------------------------

    pub fn input(index: usize, ty: RelType) -> RexNode {
        RexNode::InputRef { index, ty }
    }

    pub fn literal(value: Datum, ty: RelType) -> RexNode {
        RexNode::Literal { value, ty }
    }

    /// A dynamic parameter placeholder (`?`), numbered from zero.
    pub fn param(index: usize, ty: RelType) -> RexNode {
        RexNode::DynamicParam { index, ty }
    }

    pub fn lit_int(v: i64) -> RexNode {
        RexNode::literal(Datum::Int(v), RelType::not_null(TypeKind::Integer))
    }

    pub fn lit_double(v: f64) -> RexNode {
        RexNode::literal(Datum::Double(v), RelType::not_null(TypeKind::Double))
    }

    pub fn lit_str(v: impl AsRef<str>) -> RexNode {
        RexNode::literal(Datum::str(v), RelType::not_null(TypeKind::Varchar))
    }

    pub fn lit_bool(v: bool) -> RexNode {
        RexNode::literal(Datum::Bool(v), RelType::not_null(TypeKind::Boolean))
    }

    pub fn lit_null(ty: RelType) -> RexNode {
        RexNode::literal(Datum::Null, ty.with_nullable(true))
    }

    /// TRUE literal, the neutral element of AND.
    pub fn true_lit() -> RexNode {
        RexNode::lit_bool(true)
    }

    pub fn false_lit() -> RexNode {
        RexNode::lit_bool(false)
    }

    /// Builds a call deriving its result type from the arguments.
    pub fn call(op: Op, args: Vec<RexNode>) -> RexNode {
        let ty = derive_type(&op, &args);
        RexNode::Call { op, args, ty }
    }

    /// Builds a call with an explicit result type (CAST, UDFs with
    /// context-dependent types).
    pub fn call_typed(op: Op, args: Vec<RexNode>, ty: RelType) -> RexNode {
        RexNode::Call { op, args, ty }
    }

    pub fn cast(self, ty: RelType) -> RexNode {
        RexNode::call_typed(Op::Cast, vec![self], ty)
    }

    pub fn eq(self, other: RexNode) -> RexNode {
        RexNode::call(Op::Eq, vec![self, other])
    }

    pub fn gt(self, other: RexNode) -> RexNode {
        RexNode::call(Op::Gt, vec![self, other])
    }

    pub fn lt(self, other: RexNode) -> RexNode {
        RexNode::call(Op::Lt, vec![self, other])
    }

    pub fn ge(self, other: RexNode) -> RexNode {
        RexNode::call(Op::Ge, vec![self, other])
    }

    pub fn le(self, other: RexNode) -> RexNode {
        RexNode::call(Op::Le, vec![self, other])
    }

    // Named for SQL's NOT, deliberately mirroring the builder methods
    // around it rather than `std::ops::Not` (which takes `!e` syntax).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> RexNode {
        RexNode::call(Op::Not, vec![self])
    }

    pub fn is_null(self) -> RexNode {
        RexNode::call(Op::IsNull, vec![self])
    }

    pub fn is_not_null(self) -> RexNode {
        RexNode::call(Op::IsNotNull, vec![self])
    }

    /// Conjunction of expressions; TRUE when empty, the sole element when
    /// singleton.
    pub fn and_all(mut exprs: Vec<RexNode>) -> RexNode {
        match exprs.len() {
            0 => RexNode::true_lit(),
            1 => exprs.pop().unwrap(),
            _ => RexNode::call(Op::And, exprs),
        }
    }

    pub fn or_all(mut exprs: Vec<RexNode>) -> RexNode {
        match exprs.len() {
            0 => RexNode::false_lit(),
            1 => exprs.pop().unwrap(),
            _ => RexNode::call(Op::Or, exprs),
        }
    }

    // ---------------------------------------------------------------
    // Accessors
    // ---------------------------------------------------------------

    pub fn ty(&self) -> &RelType {
        match self {
            RexNode::InputRef { ty, .. } => ty,
            RexNode::Literal { ty, .. } => ty,
            RexNode::DynamicParam { ty, .. } => ty,
            RexNode::Call { ty, .. } => ty,
        }
    }

    pub fn is_literal(&self) -> bool {
        matches!(self, RexNode::Literal { .. })
    }

    pub fn as_literal(&self) -> Option<&Datum> {
        match self {
            RexNode::Literal { value, .. } => Some(value),
            _ => None,
        }
    }

    pub fn is_always_true(&self) -> bool {
        matches!(
            self,
            RexNode::Literal {
                value: Datum::Bool(true),
                ..
            }
        )
    }

    pub fn is_always_false(&self) -> bool {
        matches!(
            self,
            RexNode::Literal {
                value: Datum::Bool(false),
                ..
            }
        )
    }

    pub fn as_input_ref(&self) -> Option<usize> {
        match self {
            RexNode::InputRef { index, .. } => Some(*index),
            _ => None,
        }
    }

    // ---------------------------------------------------------------
    // Structural utilities used by rules
    // ---------------------------------------------------------------

    /// Flattens nested ANDs into a conjunct list.
    pub fn conjuncts(&self) -> Vec<RexNode> {
        let mut out = vec![];
        fn walk(e: &RexNode, out: &mut Vec<RexNode>) {
            match e {
                RexNode::Call {
                    op: Op::And, args, ..
                } => {
                    for a in args {
                        walk(a, out);
                    }
                }
                _ => {
                    if !e.is_always_true() {
                        out.push(e.clone());
                    }
                }
            }
        }
        walk(self, &mut out);
        out
    }

    /// The set of input field indexes referenced anywhere in the tree.
    pub fn input_refs(&self) -> BTreeSet<usize> {
        let mut set = BTreeSet::new();
        self.visit(&mut |e| {
            if let RexNode::InputRef { index, .. } = e {
                set.insert(*index);
            }
        });
        set
    }

    /// Pre-order visit.
    pub fn visit(&self, f: &mut impl FnMut(&RexNode)) {
        f(self);
        if let RexNode::Call { args, .. } = self {
            for a in args {
                a.visit(f);
            }
        }
    }

    /// Rewrites every input reference through `f`.
    pub fn map_input_refs(&self, f: &impl Fn(usize) -> usize) -> RexNode {
        match self {
            RexNode::InputRef { index, ty } => RexNode::InputRef {
                index: f(*index),
                ty: ty.clone(),
            },
            RexNode::Literal { .. } | RexNode::DynamicParam { .. } => self.clone(),
            RexNode::Call { op, args, ty } => RexNode::Call {
                op: op.clone(),
                args: args.iter().map(|a| a.map_input_refs(f)).collect(),
                ty: ty.clone(),
            },
        }
    }

    /// Shifts all input references by `delta` (may be negative).
    pub fn shift(&self, delta: isize) -> RexNode {
        self.map_input_refs(&|i| (i as isize + delta) as usize)
    }

    /// Substitutes input references with expressions, used when pulling a
    /// condition above/below a Project: `$i` becomes `exprs[i]`.
    pub fn substitute(&self, exprs: &[RexNode]) -> RexNode {
        match self {
            RexNode::InputRef { index, .. } => exprs[*index].clone(),
            RexNode::Literal { .. } | RexNode::DynamicParam { .. } => self.clone(),
            RexNode::Call { op, args, ty } => RexNode::Call {
                op: op.clone(),
                args: args.iter().map(|a| a.substitute(exprs)).collect(),
                ty: ty.clone(),
            },
        }
    }

    /// Remaps references through a partial map; returns `None` if any
    /// referenced column is absent from the map (the expression cannot be
    /// pushed to that side).
    pub fn try_remap(&self, map: &HashMap<usize, usize>) -> Option<RexNode> {
        match self {
            RexNode::InputRef { index, ty } => map.get(index).map(|i| RexNode::InputRef {
                index: *i,
                ty: ty.clone(),
            }),
            RexNode::Literal { .. } | RexNode::DynamicParam { .. } => Some(self.clone()),
            RexNode::Call { op, args, ty } => {
                let args = args
                    .iter()
                    .map(|a| a.try_remap(map))
                    .collect::<Option<Vec<_>>>()?;
                Some(RexNode::Call {
                    op: op.clone(),
                    args,
                    ty: ty.clone(),
                })
            }
        }
    }

    /// Whether the expression is constant (no input references and no
    /// dynamic parameters — a parameter's value varies per execution).
    pub fn is_constant(&self) -> bool {
        self.input_refs().is_empty() && !self.has_dynamic_params()
    }

    /// Whether the tree contains any dynamic parameter.
    pub fn has_dynamic_params(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, RexNode::DynamicParam { .. }) {
                found = true;
            }
        });
        found
    }

    /// Records the declared type of every dynamic parameter in the tree
    /// into `out`, growing it as needed (`out[i]` is `None` while `?i` is
    /// unseen). Conflicting uses widen to the least restrictive type.
    pub fn collect_params(&self, out: &mut Vec<Option<RelType>>) {
        self.visit(&mut |e| {
            if let RexNode::DynamicParam { index, ty } = e {
                if out.len() <= *index {
                    out.resize(*index + 1, None);
                }
                out[*index] = Some(match &out[*index] {
                    None => ty.clone(),
                    Some(prev) => prev
                        .least_restrictive(ty)
                        .unwrap_or(RelType::nullable(TypeKind::Any)),
                });
            }
        });
    }

    /// Substitutes every dynamic parameter with the corresponding literal
    /// from `params`. Errors when a parameter index has no binding.
    pub fn bind_params(&self, params: &[Datum]) -> Result<RexNode> {
        Ok(match self {
            RexNode::InputRef { .. } | RexNode::Literal { .. } => self.clone(),
            RexNode::DynamicParam { index, ty } => {
                let v = params.get(*index).ok_or_else(|| {
                    CalciteError::execution(format!(
                        "no binding for dynamic parameter ?{index} ({} provided)",
                        params.len()
                    ))
                })?;
                let ty = if v.is_null() {
                    ty.with_nullable(true)
                } else {
                    ty.clone()
                };
                RexNode::Literal {
                    value: v.clone(),
                    ty,
                }
            }
            RexNode::Call { op, args, ty } => RexNode::Call {
                op: op.clone(),
                args: args
                    .iter()
                    .map(|a| a.bind_params(params))
                    .collect::<Result<_>>()?,
                ty: ty.clone(),
            },
        })
    }

    /// Stable textual digest used by planner memo deduplication.
    pub fn digest(&self) -> String {
        self.to_string()
    }

    // ---------------------------------------------------------------
    // Evaluation
    // ---------------------------------------------------------------

    /// Evaluates the expression against an input row.
    pub fn eval(&self, row: &[Datum]) -> Result<Datum> {
        match self {
            RexNode::InputRef { index, .. } => row.get(*index).cloned().ok_or_else(|| {
                CalciteError::execution(format!(
                    "input reference ${index} out of bounds (row arity {})",
                    row.len()
                ))
            }),
            RexNode::Literal { value, .. } => Ok(value.clone()),
            RexNode::DynamicParam { index, .. } => Err(CalciteError::execution(format!(
                "unbound dynamic parameter ?{index}: execute through a prepared \
                 statement (or bind_params) to supply a value"
            ))),
            RexNode::Call { op, args, ty } => eval_call(op, args, ty, row),
        }
    }
}

impl fmt::Display for RexNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RexNode::InputRef { index, .. } => write!(f, "${index}"),
            RexNode::Literal { value, ty } => match value {
                Datum::Str(s) => write!(f, "'{s}'"),
                Datum::Null => write!(f, "NULL:{}", ty.kind),
                v => write!(f, "{v}"),
            },
            RexNode::DynamicParam { index, .. } => write!(f, "?{index}"),
            RexNode::Call { op, args, ty } => match op {
                Op::Plus | Op::Minus | Op::Times | Op::Divide | Op::Mod | Op::Concat
                    if args.len() == 2 =>
                {
                    write!(f, "({} {} {})", args[0], op.symbol(), args[1])
                }
                Op::Eq | Op::Ne | Op::Lt | Op::Le | Op::Gt | Op::Ge | Op::Like => {
                    write!(f, "({} {} {})", args[0], op.symbol(), args[1])
                }
                Op::And | Op::Or => {
                    write!(f, "(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, " {} ", op.symbol())?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")
                }
                Op::Not => write!(f, "NOT({})", args[0]),
                Op::Neg => write!(f, "-({})", args[0]),
                Op::IsNull => write!(f, "({} IS NULL)", args[0]),
                Op::IsNotNull => write!(f, "({} IS NOT NULL)", args[0]),
                Op::Cast => write!(f, "CAST({} AS {})", args[0], ty.kind),
                Op::Item => write!(f, "{}[{}]", args[0], args[1]),
                Op::Case => {
                    write!(f, "CASE")?;
                    let mut i = 0;
                    while i + 1 < args.len() {
                        write!(f, " WHEN {} THEN {}", args[i], args[i + 1])?;
                        i += 2;
                    }
                    if i < args.len() {
                        write!(f, " ELSE {}", args[i])?;
                    }
                    write!(f, " END")
                }
                Op::Func(b) => {
                    write!(f, "{}(", b.name())?;
                    fmt_args(f, args)?;
                    write!(f, ")")
                }
                Op::Udf(u) => {
                    write!(f, "{}(", u.name)?;
                    fmt_args(f, args)?;
                    write!(f, ")")
                }
                // Arithmetic/concat with unexpected arity (defensive).
                other => {
                    write!(f, "{}(", other.symbol())?;
                    fmt_args(f, args)?;
                    write!(f, ")")
                }
            },
        }
    }
}

fn fmt_args(f: &mut fmt::Formatter<'_>, args: &[RexNode]) -> fmt::Result {
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{a}")?;
    }
    Ok(())
}

/// Derives the result type of a call from its operator and arguments.
pub fn derive_type(op: &Op, args: &[RexNode]) -> RelType {
    let any_nullable = args.iter().any(|a| a.ty().nullable);
    match op {
        Op::Plus | Op::Minus | Op::Times | Op::Divide | Op::Mod => {
            let lr = args[0]
                .ty()
                .least_restrictive(args[1].ty())
                .unwrap_or(RelType::nullable(TypeKind::Any));
            // Division of integers produces a double in rcalcite to avoid
            // silent truncation surprises.
            if matches!(op, Op::Divide) && lr.kind == TypeKind::Integer {
                RelType::new(TypeKind::Double, lr.nullable)
            } else {
                lr
            }
        }
        Op::Neg => args[0].ty().clone(),
        Op::Eq | Op::Ne | Op::Lt | Op::Le | Op::Gt | Op::Ge | Op::Like => {
            RelType::new(TypeKind::Boolean, any_nullable)
        }
        Op::And | Op::Or | Op::Not => RelType::new(TypeKind::Boolean, any_nullable),
        Op::IsNull | Op::IsNotNull => RelType::not_null(TypeKind::Boolean),
        Op::Case => {
            // Least restrictive type over the THEN arms and the ELSE arm.
            let mut ty: Option<RelType> = None;
            let mut i = 1;
            while i < args.len() {
                let t = args[i].ty().clone();
                ty = Some(match ty {
                    None => t,
                    Some(prev) => prev
                        .least_restrictive(&t)
                        .unwrap_or(RelType::nullable(TypeKind::Any)),
                });
                i += if i + 1 < args.len() { 2 } else { 1 };
            }
            ty.unwrap_or(RelType::nullable(TypeKind::Any))
        }
        Op::Cast => RelType::nullable(TypeKind::Any), // overridden by call_typed
        Op::Item => {
            // Extract element type when statically known.
            match &args[0].ty().kind {
                TypeKind::Array(e) | TypeKind::Multiset(e) => e.as_ref().with_nullable(true),
                TypeKind::Map(_, v) => v.as_ref().with_nullable(true),
                _ => RelType::nullable(TypeKind::Any),
            }
        }
        Op::Concat => RelType::new(TypeKind::Varchar, any_nullable),
        Op::Func(b) => builtin_ret_type(*b, args),
        Op::Udf(u) => {
            let tys: Vec<RelType> = args.iter().map(|a| a.ty().clone()).collect();
            (u.ret_type)(&tys)
        }
    }
}

fn builtin_ret_type(b: BuiltinFn, args: &[RexNode]) -> RelType {
    let any_nullable = args.iter().any(|a| a.ty().nullable);
    match b {
        BuiltinFn::Upper | BuiltinFn::Lower | BuiltinFn::Substring => {
            RelType::new(TypeKind::Varchar, any_nullable)
        }
        BuiltinFn::CharLength => RelType::new(TypeKind::Integer, any_nullable),
        BuiltinFn::Abs | BuiltinFn::Floor | BuiltinFn::Ceil => args
            .first()
            .map(|a| a.ty().clone())
            .unwrap_or(RelType::nullable(TypeKind::Any)),
        BuiltinFn::Sqrt | BuiltinFn::Power => RelType::new(TypeKind::Double, any_nullable),
        BuiltinFn::Coalesce => {
            let mut ty = args
                .first()
                .map(|a| a.ty().clone())
                .unwrap_or(RelType::nullable(TypeKind::Any));
            for a in &args[1..] {
                ty = ty
                    .least_restrictive(a.ty())
                    .unwrap_or(RelType::nullable(TypeKind::Any));
            }
            // COALESCE is non-null if any argument is non-null... only the
            // last one matters for a guarantee; keep it simple: nullable if
            // all nullable.
            let nullable = args.iter().all(|a| a.ty().nullable);
            ty.with_nullable(nullable)
        }
        BuiltinFn::NullIf => args
            .first()
            .map(|a| a.ty().with_nullable(true))
            .unwrap_or(RelType::nullable(TypeKind::Any)),
    }
}

fn eval_call(op: &Op, args: &[RexNode], ty: &RelType, row: &[Datum]) -> Result<Datum> {
    // Short-circuit / lazy operators first.
    match op {
        Op::And => {
            let mut saw_null = false;
            for a in args {
                match a.eval(row)? {
                    Datum::Bool(false) => return Ok(Datum::Bool(false)),
                    Datum::Null => saw_null = true,
                    Datum::Bool(true) => {}
                    v => {
                        return Err(CalciteError::execution(format!(
                            "AND operand is not boolean: {v}"
                        )))
                    }
                }
            }
            return Ok(if saw_null {
                Datum::Null
            } else {
                Datum::Bool(true)
            });
        }
        Op::Or => {
            let mut saw_null = false;
            for a in args {
                match a.eval(row)? {
                    Datum::Bool(true) => return Ok(Datum::Bool(true)),
                    Datum::Null => saw_null = true,
                    Datum::Bool(false) => {}
                    v => {
                        return Err(CalciteError::execution(format!(
                            "OR operand is not boolean: {v}"
                        )))
                    }
                }
            }
            return Ok(if saw_null {
                Datum::Null
            } else {
                Datum::Bool(false)
            });
        }
        Op::Case => {
            let mut i = 0;
            while i + 1 < args.len() {
                if args[i].eval(row)? == Datum::Bool(true) {
                    return args[i + 1].eval(row);
                }
                i += 2;
            }
            return if i < args.len() {
                args[i].eval(row)
            } else {
                Ok(Datum::Null)
            };
        }
        Op::Func(BuiltinFn::Coalesce) => {
            for a in args {
                let v = a.eval(row)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            return Ok(Datum::Null);
        }
        _ => {}
    }

    let vals: Vec<Datum> = args.iter().map(|a| a.eval(row)).collect::<Result<_>>()?;

    match op {
        Op::IsNull => return Ok(Datum::Bool(vals[0].is_null())),
        Op::IsNotNull => return Ok(Datum::Bool(!vals[0].is_null())),
        _ => {}
    }

    // Remaining operators are strict: NULL in, NULL out.
    if vals.iter().any(Datum::is_null) {
        return Ok(Datum::Null);
    }

    eval_op_strict(op, &vals, ty)
}

/// Applies a strict operator to already-evaluated, non-NULL argument
/// values. Public so the vectorized executor's generic fallback applies
/// exactly the same per-operator semantics as row evaluation; the caller
/// is responsible for the strict NULL-in/NULL-out rule and must not pass
/// the lazy operators (`AND`/`OR`/`CASE`/`COALESCE`) or `IS [NOT] NULL`.
pub fn eval_op_strict(op: &Op, vals: &[Datum], ty: &RelType) -> Result<Datum> {
    match op {
        Op::Plus | Op::Minus | Op::Times | Op::Divide | Op::Mod => {
            eval_arith(op, &vals[0], &vals[1])
        }
        Op::Neg => match &vals[0] {
            Datum::Int(i) => i
                .checked_neg()
                .map(Datum::Int)
                .ok_or_else(|| CalciteError::execution("integer overflow in Neg")),
            Datum::Double(d) => Ok(Datum::Double(-d)),
            Datum::Interval(i) => i
                .checked_neg()
                .map(Datum::Interval)
                .ok_or_else(|| CalciteError::execution("integer overflow in Neg")),
            v => Err(CalciteError::execution(format!("cannot negate {v}"))),
        },
        Op::Eq => Ok(Datum::Bool(vals[0] == vals[1])),
        Op::Ne => Ok(Datum::Bool(vals[0] != vals[1])),
        Op::Lt => Ok(Datum::Bool(vals[0] < vals[1])),
        Op::Le => Ok(Datum::Bool(vals[0] <= vals[1])),
        Op::Gt => Ok(Datum::Bool(vals[0] > vals[1])),
        Op::Ge => Ok(Datum::Bool(vals[0] >= vals[1])),
        Op::Not => match &vals[0] {
            Datum::Bool(b) => Ok(Datum::Bool(!b)),
            v => Err(CalciteError::execution(format!("NOT of non-boolean {v}"))),
        },
        Op::Like => {
            let s = vals[0]
                .as_str()
                .ok_or_else(|| CalciteError::execution("LIKE operand must be string"))?;
            let p = vals[1]
                .as_str()
                .ok_or_else(|| CalciteError::execution("LIKE pattern must be string"))?;
            Ok(Datum::Bool(like_match(s, p)))
        }
        Op::Cast => eval_cast(&vals[0], ty),
        Op::Item => eval_item(&vals[0], &vals[1]),
        Op::Concat => {
            let mut s = String::new();
            for v in vals {
                match v {
                    Datum::Str(x) => s.push_str(x),
                    other => s.push_str(&other.to_string()),
                }
            }
            Ok(Datum::str(s))
        }
        Op::Func(b) => eval_builtin(*b, vals),
        Op::Udf(u) => (u.eval)(vals),
        Op::And | Op::Or | Op::Case | Op::IsNull | Op::IsNotNull => unreachable!(),
    }
}

fn eval_arith(op: &Op, a: &Datum, b: &Datum) -> Result<Datum> {
    use Datum::*;
    // All i64-backed arithmetic — integer and temporal — is checked:
    // overflow is an execution error, the same contract as SUM. Both
    // executors route here (the batch engine's typed kernels mirror
    // this exactly), so overflow surfaces identically everywhere
    // instead of wrapping in release and panicking in debug.
    let overflow = |op: &Op| CalciteError::execution(format!("integer overflow in {op:?}"));
    // Temporal arithmetic.
    match (op, a, b) {
        (Op::Plus, Timestamp(t), Interval(i)) | (Op::Plus, Interval(i), Timestamp(t)) => {
            return t.checked_add(*i).map(Timestamp).ok_or_else(|| overflow(op))
        }
        (Op::Minus, Timestamp(t), Interval(i)) => {
            return t.checked_sub(*i).map(Timestamp).ok_or_else(|| overflow(op))
        }
        (Op::Minus, Timestamp(t1), Timestamp(t2)) => {
            return t1
                .checked_sub(*t2)
                .map(Interval)
                .ok_or_else(|| overflow(op))
        }
        (Op::Plus, Interval(i1), Interval(i2)) => {
            return i1
                .checked_add(*i2)
                .map(Interval)
                .ok_or_else(|| overflow(op))
        }
        (Op::Minus, Interval(i1), Interval(i2)) => {
            return i1
                .checked_sub(*i2)
                .map(Interval)
                .ok_or_else(|| overflow(op))
        }
        // Timestamp % interval: offset into the current tumbling window
        // (used by the TUMBLE desugaring, §7.2).
        (Op::Mod, Timestamp(t), Interval(i)) if *i != 0 => {
            return t
                .checked_rem_euclid(*i)
                .map(Interval)
                .ok_or_else(|| overflow(op))
        }
        _ => {}
    }
    match (a, b) {
        (Int(x), Int(y)) => match op {
            Op::Plus => x.checked_add(*y).map(Int).ok_or_else(|| overflow(op)),
            Op::Minus => x.checked_sub(*y).map(Int).ok_or_else(|| overflow(op)),
            Op::Times => x.checked_mul(*y).map(Int).ok_or_else(|| overflow(op)),
            Op::Divide => {
                if *y == 0 {
                    Err(CalciteError::execution("division by zero"))
                } else {
                    Ok(Double(*x as f64 / *y as f64))
                }
            }
            Op::Mod => {
                if *y == 0 {
                    Err(CalciteError::execution("division by zero"))
                } else {
                    Ok(Int(x % y))
                }
            }
            _ => unreachable!(),
        },
        _ => {
            let x = a
                .as_double()
                .ok_or_else(|| CalciteError::execution(format!("non-numeric operand {a}")))?;
            let y = b
                .as_double()
                .ok_or_else(|| CalciteError::execution(format!("non-numeric operand {b}")))?;
            match op {
                Op::Plus => Ok(Double(x + y)),
                Op::Minus => Ok(Double(x - y)),
                Op::Times => Ok(Double(x * y)),
                Op::Divide => {
                    if y == 0.0 {
                        Err(CalciteError::execution("division by zero"))
                    } else {
                        Ok(Double(x / y))
                    }
                }
                Op::Mod => Ok(Double(x % y)),
                _ => unreachable!(),
            }
        }
    }
}

/// SQL LIKE with `%` and `_` wildcards (no escape character).
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        if p.is_empty() {
            return s.is_empty();
        }
        match p[0] {
            '%' => {
                // Collapse consecutive %.
                let rest = &p[1..];
                (0..=s.len()).any(|i| rec(&s[i..], rest))
            }
            '_' => !s.is_empty() && rec(&s[1..], &p[1..]),
            c => !s.is_empty() && s[0] == c && rec(&s[1..], &p[1..]),
        }
    }
    let sc: Vec<char> = s.chars().collect();
    let pc: Vec<char> = pattern.chars().collect();
    rec(&sc, &pc)
}

fn eval_cast(v: &Datum, ty: &RelType) -> Result<Datum> {
    let fail = || {
        Err(CalciteError::execution(format!(
            "cannot CAST {v} to {}",
            ty.kind
        )))
    };
    match &ty.kind {
        TypeKind::Any | TypeKind::Null => Ok(v.clone()),
        TypeKind::Integer => match v {
            Datum::Int(_) => Ok(v.clone()),
            Datum::Double(d) => Ok(Datum::Int(*d as i64)),
            Datum::Bool(b) => Ok(Datum::Int(*b as i64)),
            Datum::Str(s) => s
                .trim()
                .parse::<i64>()
                .map(Datum::Int)
                .or_else(|_| s.trim().parse::<f64>().map(|d| Datum::Int(d as i64)))
                .map_err(|_| CalciteError::execution(format!("cannot CAST '{s}' to INTEGER"))),
            _ => fail(),
        },
        TypeKind::Double => match v {
            Datum::Double(_) => Ok(v.clone()),
            Datum::Int(i) => Ok(Datum::Double(*i as f64)),
            Datum::Str(s) => s
                .trim()
                .parse::<f64>()
                .map(Datum::Double)
                .map_err(|_| CalciteError::execution(format!("cannot CAST '{s}' to DOUBLE"))),
            _ => fail(),
        },
        TypeKind::Varchar => Ok(Datum::str(v.to_string())),
        TypeKind::Boolean => match v {
            Datum::Bool(_) => Ok(v.clone()),
            Datum::Str(s) => match s.trim().to_ascii_lowercase().as_str() {
                "true" | "t" | "1" => Ok(Datum::Bool(true)),
                "false" | "f" | "0" => Ok(Datum::Bool(false)),
                _ => fail(),
            },
            _ => fail(),
        },
        TypeKind::Date => match v {
            Datum::Date(_) => Ok(v.clone()),
            Datum::Timestamp(ms) => Ok(Datum::Date(ms.div_euclid(86_400_000) as i32)),
            Datum::Str(s) => parse_date(s)
                .map(Datum::Date)
                .ok_or_else(|| CalciteError::execution(format!("cannot CAST '{s}' to DATE"))),
            _ => fail(),
        },
        TypeKind::Timestamp => match v {
            Datum::Timestamp(_) => Ok(v.clone()),
            Datum::Date(d) => Ok(Datum::Timestamp(*d as i64 * 86_400_000)),
            Datum::Int(i) => Ok(Datum::Timestamp(*i)),
            Datum::Str(s) => parse_timestamp(s)
                .map(Datum::Timestamp)
                .ok_or_else(|| CalciteError::execution(format!("cannot CAST '{s}' to TIMESTAMP"))),
            _ => fail(),
        },
        TypeKind::Interval => match v {
            Datum::Interval(_) => Ok(v.clone()),
            Datum::Int(i) => Ok(Datum::Interval(*i)),
            _ => fail(),
        },
        TypeKind::Array(_) | TypeKind::Multiset(_) => match v {
            Datum::Array(_) => Ok(v.clone()),
            _ => fail(),
        },
        TypeKind::Map(_, _) => match v {
            Datum::Map(_) => Ok(v.clone()),
            _ => fail(),
        },
        TypeKind::Geometry => match v {
            Datum::Ext(_) => Ok(v.clone()),
            _ => fail(),
        },
    }
}

fn eval_item(container: &Datum, key: &Datum) -> Result<Datum> {
    match container {
        Datum::Array(items) => {
            let i = key
                .as_int()
                .ok_or_else(|| CalciteError::execution("array index must be integer"))?;
            if i < 0 {
                return Ok(Datum::Null);
            }
            Ok(items.get(i as usize).cloned().unwrap_or(Datum::Null))
        }
        Datum::Map(m) => {
            let k = key
                .as_str()
                .ok_or_else(|| CalciteError::execution("map key must be string"))?;
            Ok(m.get(k).cloned().unwrap_or(Datum::Null))
        }
        other => Err(CalciteError::execution(format!(
            "ITEM access on non-collection value {other}"
        ))),
    }
}

fn eval_builtin(b: BuiltinFn, vals: &[Datum]) -> Result<Datum> {
    let str_arg = |i: usize| -> Result<&str> {
        vals[i]
            .as_str()
            .ok_or_else(|| CalciteError::execution(format!("{} expects a string", b.name())))
    };
    match b {
        BuiltinFn::Upper => Ok(Datum::str(str_arg(0)?.to_uppercase())),
        BuiltinFn::Lower => Ok(Datum::str(str_arg(0)?.to_lowercase())),
        BuiltinFn::CharLength => Ok(Datum::Int(str_arg(0)?.chars().count() as i64)),
        BuiltinFn::Substring => {
            let s: Vec<char> = str_arg(0)?.chars().collect();
            let start = vals[1]
                .as_int()
                .ok_or_else(|| CalciteError::execution("SUBSTRING start must be integer"))?;
            // SQL SUBSTRING is 1-based.
            let begin = (start.max(1) - 1) as usize;
            let end = if vals.len() > 2 {
                let len = vals[2]
                    .as_int()
                    .ok_or_else(|| CalciteError::execution("SUBSTRING length must be integer"))?
                    .max(0) as usize;
                (begin + len).min(s.len())
            } else {
                s.len()
            };
            if begin >= s.len() {
                return Ok(Datum::str(""));
            }
            Ok(Datum::str(s[begin..end].iter().collect::<String>()))
        }
        BuiltinFn::Abs => match &vals[0] {
            Datum::Int(i) => Ok(Datum::Int(i.abs())),
            Datum::Double(d) => Ok(Datum::Double(d.abs())),
            v => Err(CalciteError::execution(format!("ABS of non-numeric {v}"))),
        },
        BuiltinFn::Floor => match &vals[0] {
            Datum::Int(i) => Ok(Datum::Int(*i)),
            Datum::Double(d) => Ok(Datum::Double(d.floor())),
            v => Err(CalciteError::execution(format!("FLOOR of non-numeric {v}"))),
        },
        BuiltinFn::Ceil => match &vals[0] {
            Datum::Int(i) => Ok(Datum::Int(*i)),
            Datum::Double(d) => Ok(Datum::Double(d.ceil())),
            v => Err(CalciteError::execution(format!("CEIL of non-numeric {v}"))),
        },
        BuiltinFn::Sqrt => {
            let d = vals[0]
                .as_double()
                .ok_or_else(|| CalciteError::execution("SQRT of non-numeric"))?;
            Ok(Datum::Double(d.sqrt()))
        }
        BuiltinFn::Power => {
            let base = vals[0]
                .as_double()
                .ok_or_else(|| CalciteError::execution("POWER of non-numeric"))?;
            let exp = vals[1]
                .as_double()
                .ok_or_else(|| CalciteError::execution("POWER of non-numeric"))?;
            Ok(Datum::Double(base.powf(exp)))
        }
        BuiltinFn::Coalesce => unreachable!("handled lazily"),
        BuiltinFn::NullIf => Ok(if vals[0] == vals[1] {
            Datum::Null
        } else {
            vals[0].clone()
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_ty() -> RelType {
        RelType::not_null(TypeKind::Integer)
    }

    #[test]
    fn eval_arithmetic() {
        let e = RexNode::call(
            Op::Plus,
            vec![RexNode::input(0, int_ty()), RexNode::lit_int(5)],
        );
        assert_eq!(e.eval(&[Datum::Int(2)]).unwrap(), Datum::Int(7));
        let e = RexNode::call(Op::Divide, vec![RexNode::lit_int(7), RexNode::lit_int(2)]);
        assert_eq!(e.eval(&[]).unwrap(), Datum::Double(3.5));
    }

    #[test]
    fn integer_overflow_errors() {
        for (op, lhs) in [
            (Op::Plus, i64::MAX),
            (Op::Minus, i64::MIN),
            (Op::Times, i64::MAX / 2 + 1),
        ] {
            let e = RexNode::call(op, vec![RexNode::lit_int(lhs), RexNode::lit_int(2)]);
            assert!(e.eval(&[]).is_err(), "{lhs} should overflow");
        }
        // In-range extremes still evaluate.
        let e = RexNode::call(
            Op::Plus,
            vec![RexNode::lit_int(i64::MAX), RexNode::lit_int(-1)],
        );
        assert_eq!(e.eval(&[]).unwrap(), Datum::Int(i64::MAX - 1));
        let e = RexNode::call(Op::Neg, vec![RexNode::lit_int(i64::MIN)]);
        assert!(e.eval(&[]).is_err());
    }

    #[test]
    fn division_by_zero_errors() {
        let e = RexNode::call(Op::Divide, vec![RexNode::lit_int(1), RexNode::lit_int(0)]);
        assert!(e.eval(&[]).is_err());
    }

    #[test]
    fn three_valued_and_or() {
        let null = RexNode::lit_null(RelType::nullable(TypeKind::Boolean));
        // NULL AND FALSE = FALSE
        let e = RexNode::call(Op::And, vec![null.clone(), RexNode::false_lit()]);
        assert_eq!(e.eval(&[]).unwrap(), Datum::Bool(false));
        // NULL AND TRUE = NULL
        let e = RexNode::call(Op::And, vec![null.clone(), RexNode::true_lit()]);
        assert_eq!(e.eval(&[]).unwrap(), Datum::Null);
        // NULL OR TRUE = TRUE
        let e = RexNode::call(Op::Or, vec![null, RexNode::true_lit()]);
        assert_eq!(e.eval(&[]).unwrap(), Datum::Bool(true));
    }

    #[test]
    fn null_propagates_through_comparison() {
        let null = RexNode::lit_null(RelType::nullable(TypeKind::Integer));
        let e = null.eq(RexNode::lit_int(1));
        assert_eq!(e.eval(&[]).unwrap(), Datum::Null);
    }

    #[test]
    fn is_null_checks() {
        let null = RexNode::lit_null(RelType::nullable(TypeKind::Integer));
        assert_eq!(null.clone().is_null().eval(&[]).unwrap(), Datum::Bool(true));
        assert_eq!(
            RexNode::lit_int(1).is_not_null().eval(&[]).unwrap(),
            Datum::Bool(true)
        );
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("hello", "%"));
        assert!(!like_match("hello", "H%"));
        assert!(!like_match("hello", "h_o"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b"));
    }

    #[test]
    fn case_evaluation() {
        // CASE WHEN $0 > 0 THEN 'pos' ELSE 'neg' END
        let e = RexNode::call(
            Op::Case,
            vec![
                RexNode::input(0, int_ty()).gt(RexNode::lit_int(0)),
                RexNode::lit_str("pos"),
                RexNode::lit_str("neg"),
            ],
        );
        assert_eq!(e.eval(&[Datum::Int(5)]).unwrap(), Datum::str("pos"));
        assert_eq!(e.eval(&[Datum::Int(-5)]).unwrap(), Datum::str("neg"));
    }

    #[test]
    fn cast_string_to_number_and_back() {
        let e = RexNode::lit_str("42").cast(RelType::not_null(TypeKind::Integer));
        assert_eq!(e.eval(&[]).unwrap(), Datum::Int(42));
        let e = RexNode::lit_int(42).cast(RelType::not_null(TypeKind::Varchar));
        assert_eq!(e.eval(&[]).unwrap(), Datum::str("42"));
        let e = RexNode::lit_str("4.5").cast(RelType::not_null(TypeKind::Double));
        assert_eq!(e.eval(&[]).unwrap(), Datum::Double(4.5));
    }

    #[test]
    fn item_access_on_map_and_array() {
        // The paper's _MAP['loc'][0] pattern.
        let map_val = Datum::map(vec![(
            "loc".to_string(),
            Datum::array(vec![Datum::Double(4.9), Datum::Double(52.4)]),
        )]);
        let map_ty = RelType::nullable(TypeKind::Map(
            Box::new(RelType::not_null(TypeKind::Varchar)),
            Box::new(RelType::nullable(TypeKind::Any)),
        ));
        let e = RexNode::call(
            Op::Item,
            vec![
                RexNode::call(
                    Op::Item,
                    vec![RexNode::input(0, map_ty), RexNode::lit_str("loc")],
                ),
                RexNode::lit_int(0),
            ],
        );
        assert_eq!(e.eval(&[map_val]).unwrap(), Datum::Double(4.9));
    }

    #[test]
    fn item_access_missing_key_is_null() {
        let map_val = Datum::map(vec![]);
        let map_ty = RelType::nullable(TypeKind::Any);
        let e = RexNode::call(
            Op::Item,
            vec![RexNode::input(0, map_ty), RexNode::lit_str("city")],
        );
        assert_eq!(e.eval(&[map_val]).unwrap(), Datum::Null);
    }

    #[test]
    fn builtin_functions() {
        let e = RexNode::call(Op::Func(BuiltinFn::Upper), vec![RexNode::lit_str("abc")]);
        assert_eq!(e.eval(&[]).unwrap(), Datum::str("ABC"));
        let e = RexNode::call(
            Op::Func(BuiltinFn::Substring),
            vec![
                RexNode::lit_str("hello"),
                RexNode::lit_int(2),
                RexNode::lit_int(3),
            ],
        );
        assert_eq!(e.eval(&[]).unwrap(), Datum::str("ell"));
        let e = RexNode::call(
            Op::Func(BuiltinFn::Coalesce),
            vec![
                RexNode::lit_null(RelType::nullable(TypeKind::Integer)),
                RexNode::lit_int(9),
            ],
        );
        assert_eq!(e.eval(&[]).unwrap(), Datum::Int(9));
    }

    #[test]
    fn conjunct_flattening() {
        let a = RexNode::input(0, int_ty()).gt(RexNode::lit_int(1));
        let b = RexNode::input(1, int_ty()).lt(RexNode::lit_int(5));
        let c = RexNode::input(2, int_ty()).eq(RexNode::lit_int(3));
        let e = RexNode::and_all(vec![
            a.clone(),
            RexNode::and_all(vec![b.clone(), c.clone()]),
        ]);
        let cj = e.conjuncts();
        assert_eq!(cj.len(), 3);
        assert_eq!(cj[0], a);
        assert_eq!(cj[1], b);
        assert_eq!(cj[2], c);
    }

    #[test]
    fn and_all_identity() {
        assert!(RexNode::and_all(vec![]).is_always_true());
        let one = RexNode::lit_bool(false);
        assert_eq!(RexNode::and_all(vec![one.clone()]), one);
    }

    #[test]
    fn input_refs_and_shift() {
        let e = RexNode::input(1, int_ty()).gt(RexNode::input(3, int_ty()));
        assert_eq!(e.input_refs().into_iter().collect::<Vec<_>>(), vec![1, 3]);
        let shifted = e.shift(-1);
        assert_eq!(
            shifted.input_refs().into_iter().collect::<Vec<_>>(),
            vec![0, 2]
        );
    }

    #[test]
    fn try_remap_fails_on_missing_column() {
        let e = RexNode::input(0, int_ty()).gt(RexNode::input(2, int_ty()));
        let mut map = HashMap::new();
        map.insert(0, 0);
        assert!(e.try_remap(&map).is_none());
        map.insert(2, 1);
        let remapped = e.try_remap(&map).unwrap();
        assert_eq!(
            remapped.input_refs().into_iter().collect::<Vec<_>>(),
            vec![0, 1]
        );
    }

    #[test]
    fn substitute_through_project() {
        // Condition $0 > 10 above Project[$2 + 1] becomes ($2 + 1) > 10.
        let proj = vec![RexNode::call(
            Op::Plus,
            vec![RexNode::input(2, int_ty()), RexNode::lit_int(1)],
        )];
        let cond = RexNode::input(0, int_ty()).gt(RexNode::lit_int(10));
        let pushed = cond.substitute(&proj);
        assert_eq!(pushed.input_refs().into_iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn display_digest_is_stable() {
        let e = RexNode::input(0, int_ty()).eq(RexNode::lit_int(42));
        assert_eq!(e.digest(), "($0 = 42)");
        let e = RexNode::and_all(vec![
            RexNode::input(0, int_ty()).gt(RexNode::lit_int(1)),
            RexNode::input(1, int_ty()).is_not_null(),
        ]);
        assert_eq!(e.digest(), "(($0 > 1) AND ($1 IS NOT NULL))");
    }

    #[test]
    fn timestamp_interval_arithmetic() {
        let e = RexNode::call(
            Op::Plus,
            vec![
                RexNode::literal(
                    Datum::Timestamp(1000),
                    RelType::not_null(TypeKind::Timestamp),
                ),
                RexNode::literal(Datum::Interval(500), RelType::not_null(TypeKind::Interval)),
            ],
        );
        assert_eq!(e.eval(&[]).unwrap(), Datum::Timestamp(1500));
        assert_eq!(e.ty().kind, TypeKind::Timestamp);
    }

    #[test]
    fn type_derivation() {
        let e = RexNode::call(
            Op::Plus,
            vec![
                RexNode::input(0, RelType::nullable(TypeKind::Integer)),
                RexNode::lit_double(1.0),
            ],
        );
        assert_eq!(e.ty().kind, TypeKind::Double);
        assert!(e.ty().nullable);
        let cmp = RexNode::lit_int(1).eq(RexNode::lit_int(2));
        assert_eq!(cmp.ty().kind, TypeKind::Boolean);
        assert!(!cmp.ty().nullable);
    }
}
