//! # rcalcite-core
//!
//! A from-scratch Rust reproduction of the framework described in
//! *"Apache Calcite: A Foundational Framework for Optimized Query
//! Processing Over Heterogeneous Data Sources"* (SIGMOD 2018).
//!
//! This crate is the planning half of the system: the relational algebra
//! with its trait system (§4), the rule-based optimizer with pluggable
//! metadata providers and cost models, the two planner engines (§6), and
//! the materialized-view machinery. Execution engines and adapters live in
//! sibling crates and plug in through [`exec::ConventionExecutor`] and the
//! rule/converter registries.
//!
//! Layer map (paper section → module):
//!
//! | Paper | Module |
//! |-------|--------|
//! | §3 expression builder | [`builder`] |
//! | §4 algebra, traits     | [`rel`], [`rex`], [`traits`], [`types`] |
//! | §5 adapter SPI         | [`catalog`], [`exec`] |
//! | §6 rules               | [`rules`], [`simplify`] |
//! | §6 metadata providers  | [`metadata`], [`cost`] |
//! | §6 planner engines     | [`planner`] |
//! | §6 materialized views  | [`mv`], [`lattice`], [`ivm`] |

pub mod buffer;
pub mod builder;
pub mod catalog;
pub mod cost;
pub mod datum;
pub mod error;
pub mod exec;
pub mod explain;
pub mod index;
pub mod ivm;
pub mod lattice;
pub mod metadata;
pub mod mv;
pub mod planner;
pub mod rel;
pub mod rex;
pub mod rules;
pub mod simplify;
pub mod stats;
pub mod traits;
pub mod txn;
pub mod types;
pub mod wal;

pub use buffer::{MemoryBudget, SpillEnv, SpillEvent, SpillTracker, TempFileProvider};
pub use catalog::{Catalog, MemTable, Schema, Statistic, Table, TableRef};
pub use datum::{Datum, Row};
pub use error::{CalciteError, Result};
pub use exec::{ConventionExecutor, ExecContext, RowIter};
pub use index::{BoundProbe, IndexDef, IndexKind, IndexProbe, SeekProbe, SeekSpec};
pub use ivm::{DeltaPlan, IvmRegistry, MaintainedView};
pub use metadata::{MetadataProvider, MetadataQuery};
pub use rel::{Rel, RelKind, RelNode, RelOp};
pub use rex::RexNode;
pub use stats::{ColumnStats, StatsRegistry, TableStats};
pub use traits::Convention;
pub use txn::{CommitObserver, DeltaOp, SnapshotTable, Transaction, TxnManager, TxnVersion};
pub use types::{RelType, RowType, TypeKind};
pub use wal::{FileWal, MemWal, WalRecord, WalStorage, WalWriter};
