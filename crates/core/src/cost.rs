//! Plan cost. Per §6, "the default cost function implementation combines
//! estimations for CPU, IO, and memory resources used by a given
//! expression"; the cost model is pluggable.

use crate::traits::Convention;
use std::collections::HashMap;
use std::fmt;

/// A resource-vector cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cost {
    /// Estimated output row count (tie-breaking component, as in Volcano).
    pub rows: f64,
    /// CPU work units.
    pub cpu: f64,
    /// IO transfer units (dominates when rows cross engine boundaries).
    pub io: f64,
    /// Peak memory units.
    pub memory: f64,
}

impl Cost {
    pub const ZERO: Cost = Cost {
        rows: 0.0,
        cpu: 0.0,
        io: 0.0,
        memory: 0.0,
    };

    pub fn new(rows: f64, cpu: f64, io: f64, memory: f64) -> Cost {
        Cost {
            rows,
            cpu,
            io,
            memory,
        }
    }

    pub fn infinite() -> Cost {
        Cost {
            rows: f64::INFINITY,
            cpu: f64::INFINITY,
            io: f64::INFINITY,
            memory: f64::INFINITY,
        }
    }

    pub fn is_infinite(&self) -> bool {
        !self.cpu.is_finite() || !self.io.is_finite()
    }

    pub fn plus(&self, other: &Cost) -> Cost {
        Cost {
            rows: self.rows + other.rows,
            cpu: self.cpu + other.cpu,
            io: self.io + other.io,
            memory: self.memory + other.memory,
        }
    }

    pub fn times(&self, factor: f64) -> Cost {
        Cost {
            rows: self.rows * factor,
            cpu: self.cpu * factor,
            io: self.io * factor,
            memory: self.memory * factor,
        }
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{rows: {:.1}, cpu: {:.1}, io: {:.1}, mem: {:.1}}}",
            self.rows, self.cpu, self.io, self.memory
        )
    }
}

/// Pluggable comparison of costs (§6: "Users can add ... cost models").
pub trait CostModel: Send + Sync {
    /// Collapses a cost vector to a comparable scalar.
    fn weigh(&self, cost: &Cost) -> f64;

    /// Relative per-row execution cost of a convention; lets systems teach
    /// the optimizer that a backend executes its native operators faster
    /// (or slower) than the in-process engine.
    fn convention_factor(&self, _convention: &Convention) -> f64 {
        1.0
    }

    /// Per-row cost of shipping rows across a convention boundary.
    fn transfer_factor(&self) -> f64 {
        1.0
    }

    fn is_cheaper(&self, a: &Cost, b: &Cost) -> bool {
        self.weigh(a) < self.weigh(b) - 1e-9
    }
}

/// Default cost model: weighted sum with IO dominating CPU.
pub struct DefaultCostModel {
    pub cpu_weight: f64,
    pub io_weight: f64,
    pub memory_weight: f64,
    factors: HashMap<Convention, f64>,
}

impl DefaultCostModel {
    pub fn new() -> DefaultCostModel {
        DefaultCostModel {
            cpu_weight: 1.0,
            io_weight: 4.0,
            memory_weight: 0.5,
            factors: HashMap::new(),
        }
    }

    /// Registers a convention-specific execution-cost factor.
    pub fn with_convention_factor(mut self, conv: Convention, factor: f64) -> Self {
        self.factors.insert(conv, factor);
        self
    }
}

impl Default for DefaultCostModel {
    fn default() -> Self {
        Self::new()
    }
}

impl CostModel for DefaultCostModel {
    fn weigh(&self, cost: &Cost) -> f64 {
        cost.cpu * self.cpu_weight
            + cost.io * self.io_weight
            + cost.memory * self.memory_weight
            + cost.rows * 1e-6 // tie-break toward smaller outputs
    }

    fn convention_factor(&self, convention: &Convention) -> f64 {
        self.factors.get(convention).copied().unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Cost::new(10.0, 5.0, 2.0, 1.0);
        let b = Cost::new(1.0, 1.0, 1.0, 1.0);
        let s = a.plus(&b);
        assert_eq!(s.rows, 11.0);
        assert_eq!(s.cpu, 6.0);
        let t = a.times(2.0);
        assert_eq!(t.io, 4.0);
    }

    #[test]
    fn infinite_cost_always_loses() {
        let m = DefaultCostModel::new();
        let inf = Cost::infinite();
        let fin = Cost::new(1e9, 1e9, 1e9, 1e9);
        assert!(m.is_cheaper(&fin, &inf));
        assert!(!m.is_cheaper(&inf, &fin));
        assert!(inf.is_infinite());
        assert!(!fin.is_infinite());
    }

    #[test]
    fn io_dominates_cpu() {
        let m = DefaultCostModel::new();
        let io_heavy = Cost::new(0.0, 0.0, 10.0, 0.0);
        let cpu_heavy = Cost::new(0.0, 30.0, 0.0, 0.0);
        assert!(m.is_cheaper(&cpu_heavy, &io_heavy));
    }

    #[test]
    fn convention_factors() {
        let splunk = Convention::new("splunk");
        let m = DefaultCostModel::new().with_convention_factor(splunk.clone(), 0.5);
        assert_eq!(m.convention_factor(&splunk), 0.5);
        assert_eq!(m.convention_factor(&Convention::enumerable()), 1.0);
    }
}
