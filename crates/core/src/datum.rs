//! Runtime values. `Datum` is the single value representation flowing
//! through every convention's executor, and the representation of literals
//! inside row expressions.

use crate::types::{RelType, TypeKind};
use std::any::Any;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Extension point for values whose representation core does not know
/// (e.g. GEOMETRY, provided by `rcalcite-geo`).
pub trait ExtValue: fmt::Debug + fmt::Display + Send + Sync {
    /// Name of the extension type ("geometry", ...).
    fn type_name(&self) -> &'static str;
    /// Downcast support.
    fn as_any(&self) -> &dyn Any;
    /// Equality against another extension value.
    fn ext_eq(&self, other: &dyn ExtValue) -> bool;
}

/// A single SQL value. `Null` is typed dynamically: the static type lives
/// in the enclosing expression.
#[derive(Clone, Debug)]
pub enum Datum {
    Null,
    Bool(bool),
    Int(i64),
    Double(f64),
    Str(Arc<str>),
    /// Days since epoch.
    Date(i32),
    /// Milliseconds since epoch.
    Timestamp(i64),
    /// Duration in milliseconds.
    Interval(i64),
    Array(Arc<Vec<Datum>>),
    Map(Arc<BTreeMap<String, Datum>>),
    Ext(Arc<dyn ExtValue>),
}

/// A materialized tuple.
pub type Row = Vec<Datum>;

impl Datum {
    pub fn str(s: impl AsRef<str>) -> Datum {
        Datum::Str(Arc::from(s.as_ref()))
    }

    pub fn array(items: Vec<Datum>) -> Datum {
        Datum::Array(Arc::new(items))
    }

    pub fn map(entries: impl IntoIterator<Item = (String, Datum)>) -> Datum {
        Datum::Map(Arc::new(entries.into_iter().collect()))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Datum::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(i) => Some(*i),
            Datum::Double(d) if d.fract() == 0.0 => Some(*d as i64),
            _ => None,
        }
    }

    pub fn as_double(&self) -> Option<f64> {
        match self {
            Datum::Int(i) => Some(*i as f64),
            Datum::Double(d) => Some(*d),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Milliseconds-since-epoch view of temporal values.
    pub fn as_millis(&self) -> Option<i64> {
        match self {
            Datum::Timestamp(ms) | Datum::Interval(ms) => Some(*ms),
            Datum::Date(d) => Some(*d as i64 * 86_400_000),
            Datum::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The dynamic kind of this value, used for runtime type checks and
    /// coercion of `ANY`-typed expressions.
    pub fn kind(&self) -> TypeKind {
        match self {
            Datum::Null => TypeKind::Null,
            Datum::Bool(_) => TypeKind::Boolean,
            Datum::Int(_) => TypeKind::Integer,
            Datum::Double(_) => TypeKind::Double,
            Datum::Str(_) => TypeKind::Varchar,
            Datum::Date(_) => TypeKind::Date,
            Datum::Timestamp(_) => TypeKind::Timestamp,
            Datum::Interval(_) => TypeKind::Interval,
            Datum::Array(_) => TypeKind::Array(Box::new(RelType::nullable(TypeKind::Any))),
            Datum::Map(_) => TypeKind::Map(
                Box::new(RelType::not_null(TypeKind::Varchar)),
                Box::new(RelType::nullable(TypeKind::Any)),
            ),
            Datum::Ext(_) => TypeKind::Geometry,
        }
    }

    /// Rank used to totally order values of different kinds (NULL first,
    /// matching `NULLS FIRST` semantics of the default collation).
    fn type_rank(&self) -> u8 {
        match self {
            Datum::Null => 0,
            Datum::Bool(_) => 1,
            Datum::Int(_) | Datum::Double(_) => 2,
            Datum::Str(_) => 3,
            Datum::Date(_) => 4,
            Datum::Timestamp(_) => 5,
            Datum::Interval(_) => 6,
            Datum::Array(_) => 7,
            Datum::Map(_) => 8,
            Datum::Ext(_) => 9,
        }
    }

    /// SQL three-valued comparison: `None` when either side is NULL.
    pub fn sql_cmp(&self, other: &Datum) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp(other))
    }
}

impl PartialEq for Datum {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Datum {}

impl PartialOrd for Datum {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Datum {
    /// Total order over all datums: NULL sorts first; numerics compare by
    /// value across Int/Double; incomparable kinds order by type rank.
    fn cmp(&self, other: &Self) -> Ordering {
        use Datum::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Int(a), Double(b)) => (*a as f64).total_cmp(b),
            (Double(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (Interval(a), Interval(b)) => a.cmp(b),
            (Array(a), Array(b)) => a.cmp(b),
            (Map(a), Map(b)) => a.cmp(b),
            (Ext(a), Ext(b)) => {
                if a.ext_eq(b.as_ref()) {
                    Ordering::Equal
                } else {
                    a.to_string().cmp(&b.to_string())
                }
            }
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Datum {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Datum::Null => 0u8.hash(state),
            Datum::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Double that compare equal must hash equal; hash all
            // numerics through the f64 bit pattern of their value.
            Datum::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Datum::Double(d) => {
                2u8.hash(state);
                d.to_bits().hash(state);
            }
            Datum::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Datum::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
            Datum::Timestamp(t) => {
                5u8.hash(state);
                t.hash(state);
            }
            Datum::Interval(i) => {
                6u8.hash(state);
                i.hash(state);
            }
            Datum::Array(a) => {
                7u8.hash(state);
                a.hash(state);
            }
            Datum::Map(m) => {
                8u8.hash(state);
                for (k, v) in m.iter() {
                    k.hash(state);
                    v.hash(state);
                }
            }
            Datum::Ext(e) => {
                9u8.hash(state);
                e.to_string().hash(state);
            }
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => write!(f, "NULL"),
            Datum::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Datum::Int(i) => write!(f, "{i}"),
            Datum::Double(d) => {
                if d.fract() == 0.0 && d.abs() < 1e15 {
                    write!(f, "{:.1}", d)
                } else {
                    write!(f, "{d}")
                }
            }
            Datum::Str(s) => write!(f, "{s}"),
            Datum::Date(d) => write!(f, "{}", format_date(*d)),
            Datum::Timestamp(ms) => write!(f, "{}", format_timestamp(*ms)),
            Datum::Interval(ms) => write!(f, "INTERVAL {ms}ms"),
            Datum::Array(a) => {
                write!(f, "[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Datum::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            Datum::Ext(e) => write!(f, "{e}"),
        }
    }
}

// ---------------------------------------------------------------------
// Columnar representation
// ---------------------------------------------------------------------

/// One field of a batch of rows as a typed vector. This is the unit the
/// vectorized execution path operates on: kernels loop over the raw
/// `values` vectors instead of dispatching per [`Datum`]. Kinds without a
/// dedicated vector fall back to [`Column::Generic`].
///
/// For the typed variants, `valid[i] == false` marks SQL NULL at row `i`
/// (the corresponding `values[i]` is a don't-care filler).
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    Int {
        values: Vec<i64>,
        valid: Vec<bool>,
    },
    Double {
        values: Vec<f64>,
        valid: Vec<bool>,
    },
    Bool {
        values: Vec<bool>,
        valid: Vec<bool>,
    },
    Str {
        values: Vec<Arc<str>>,
        valid: Vec<bool>,
    },
    /// Row-major fallback for kinds without a typed vector (dates,
    /// intervals, arrays, maps, extension values, mixed columns).
    Generic(Vec<Datum>),
}

impl Column {
    /// An empty column whose representation suits `kind`.
    pub fn for_kind(kind: &TypeKind) -> Column {
        Column::for_kind_with_capacity(kind, 0)
    }

    pub fn for_kind_with_capacity(kind: &TypeKind, cap: usize) -> Column {
        match kind {
            TypeKind::Integer => Column::Int {
                values: Vec::with_capacity(cap),
                valid: Vec::with_capacity(cap),
            },
            TypeKind::Double => Column::Double {
                values: Vec::with_capacity(cap),
                valid: Vec::with_capacity(cap),
            },
            TypeKind::Boolean => Column::Bool {
                values: Vec::with_capacity(cap),
                valid: Vec::with_capacity(cap),
            },
            TypeKind::Varchar => Column::Str {
                values: Vec::with_capacity(cap),
                valid: Vec::with_capacity(cap),
            },
            _ => Column::Generic(Vec::with_capacity(cap)),
        }
    }

    /// Builds a column from datums, choosing the representation by `kind`.
    pub fn from_datums(kind: &TypeKind, datums: impl IntoIterator<Item = Datum>) -> Column {
        let it = datums.into_iter();
        let mut col = Column::for_kind_with_capacity(kind, it.size_hint().0);
        for d in it {
            col.push(d);
        }
        col
    }

    /// Builds a column from field `index` of each row.
    pub fn from_rows(kind: &TypeKind, rows: &[Row], index: usize) -> Column {
        Column::from_datums(kind, rows.iter().map(|r| r[index].clone()))
    }

    pub fn len(&self) -> usize {
        match self {
            Column::Int { values, .. } => values.len(),
            Column::Double { values, .. } => values.len(),
            Column::Bool { values, .. } => values.len(),
            Column::Str { values, .. } => values.len(),
            Column::Generic(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a datum. A value that does not fit the typed variant
    /// demotes the whole column to `Generic` first, so `push` never loses
    /// information.
    pub fn push(&mut self, d: Datum) {
        match (&mut *self, d) {
            (Column::Int { values, valid }, Datum::Int(x)) => {
                values.push(x);
                valid.push(true);
            }
            (Column::Int { values, valid }, Datum::Null) => {
                values.push(0);
                valid.push(false);
            }
            (Column::Double { values, valid }, Datum::Double(x)) => {
                values.push(x);
                valid.push(true);
            }
            (Column::Double { values, valid }, Datum::Null) => {
                values.push(0.0);
                valid.push(false);
            }
            (Column::Bool { values, valid }, Datum::Bool(x)) => {
                values.push(x);
                valid.push(true);
            }
            (Column::Bool { values, valid }, Datum::Null) => {
                values.push(false);
                valid.push(false);
            }
            (Column::Str { values, valid }, Datum::Str(x)) => {
                values.push(x);
                valid.push(true);
            }
            (Column::Str { values, valid }, Datum::Null) => {
                values.push(Arc::from(""));
                valid.push(false);
            }
            (Column::Generic(v), d) => v.push(d),
            (_, d) => {
                self.demote_to_generic();
                self.push(d);
            }
        }
    }

    pub fn push_null(&mut self) {
        self.push(Datum::Null);
    }

    fn demote_to_generic(&mut self) {
        if !matches!(self, Column::Generic(_)) {
            let datums: Vec<Datum> = (0..self.len()).map(|i| self.get(i)).collect();
            *self = Column::Generic(datums);
        }
    }

    /// The datum at row `i` (clones out of the vector).
    pub fn get(&self, i: usize) -> Datum {
        match self {
            Column::Int { values, valid } => {
                if valid[i] {
                    Datum::Int(values[i])
                } else {
                    Datum::Null
                }
            }
            Column::Double { values, valid } => {
                if valid[i] {
                    Datum::Double(values[i])
                } else {
                    Datum::Null
                }
            }
            Column::Bool { values, valid } => {
                if valid[i] {
                    Datum::Bool(values[i])
                } else {
                    Datum::Null
                }
            }
            Column::Str { values, valid } => {
                if valid[i] {
                    Datum::Str(values[i].clone())
                } else {
                    Datum::Null
                }
            }
            Column::Generic(v) => v[i].clone(),
        }
    }

    pub fn is_null(&self, i: usize) -> bool {
        match self {
            Column::Int { valid, .. }
            | Column::Double { valid, .. }
            | Column::Bool { valid, .. }
            | Column::Str { valid, .. } => !valid[i],
            Column::Generic(v) => v[i].is_null(),
        }
    }

    pub fn to_datums(&self) -> Vec<Datum> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// A new column holding `self[idx[0]], self[idx[1]], ...` — the
    /// selection-compaction / join-output primitive.
    pub fn gather(&self, idx: &[usize]) -> Column {
        fn take<T: Clone>(values: &[T], valid: &[bool], idx: &[usize]) -> (Vec<T>, Vec<bool>) {
            (
                idx.iter().map(|&i| values[i].clone()).collect(),
                idx.iter().map(|&i| valid[i]).collect(),
            )
        }
        match self {
            Column::Int { values, valid } => {
                let (values, valid) = take(values, valid, idx);
                Column::Int { values, valid }
            }
            Column::Double { values, valid } => {
                let (values, valid) = take(values, valid, idx);
                Column::Double { values, valid }
            }
            Column::Bool { values, valid } => {
                let (values, valid) = take(values, valid, idx);
                Column::Bool { values, valid }
            }
            Column::Str { values, valid } => {
                let (values, valid) = take(values, valid, idx);
                Column::Str { values, valid }
            }
            Column::Generic(v) => Column::Generic(idx.iter().map(|&i| v[i].clone()).collect()),
        }
    }

    /// A contiguous sub-column `[start, start + len)`.
    pub fn slice(&self, start: usize, len: usize) -> Column {
        let end = (start + len).min(self.len());
        match self {
            Column::Int { values, valid } => Column::Int {
                values: values[start..end].to_vec(),
                valid: valid[start..end].to_vec(),
            },
            Column::Double { values, valid } => Column::Double {
                values: values[start..end].to_vec(),
                valid: valid[start..end].to_vec(),
            },
            Column::Bool { values, valid } => Column::Bool {
                values: values[start..end].to_vec(),
                valid: valid[start..end].to_vec(),
            },
            Column::Str { values, valid } => Column::Str {
                values: values[start..end].to_vec(),
                valid: valid[start..end].to_vec(),
            },
            Column::Generic(v) => Column::Generic(v[start..end].to_vec()),
        }
    }

    /// Appends all rows of `other` (demoting to `Generic` on a
    /// representation mismatch).
    pub fn append(&mut self, other: &Column) {
        match (&mut *self, other) {
            (
                Column::Int { values, valid },
                Column::Int {
                    values: v2,
                    valid: n2,
                },
            ) => {
                values.extend_from_slice(v2);
                valid.extend_from_slice(n2);
            }
            (
                Column::Double { values, valid },
                Column::Double {
                    values: v2,
                    valid: n2,
                },
            ) => {
                values.extend_from_slice(v2);
                valid.extend_from_slice(n2);
            }
            (
                Column::Bool { values, valid },
                Column::Bool {
                    values: v2,
                    valid: n2,
                },
            ) => {
                values.extend_from_slice(v2);
                valid.extend_from_slice(n2);
            }
            (
                Column::Str { values, valid },
                Column::Str {
                    values: v2,
                    valid: n2,
                },
            ) => {
                values.extend_from_slice(v2);
                valid.extend_from_slice(n2);
            }
            _ => {
                for i in 0..other.len() {
                    self.push(other.get(i));
                }
            }
        }
    }

    /// A column of `n` copies of `d`.
    pub fn repeat(d: &Datum, n: usize) -> Column {
        match d {
            Datum::Int(x) => Column::Int {
                values: vec![*x; n],
                valid: vec![true; n],
            },
            Datum::Double(x) => Column::Double {
                values: vec![*x; n],
                valid: vec![true; n],
            },
            Datum::Bool(x) => Column::Bool {
                values: vec![*x; n],
                valid: vec![true; n],
            },
            Datum::Str(x) => Column::Str {
                values: vec![x.clone(); n],
                valid: vec![true; n],
            },
            other => Column::Generic(vec![other.clone(); n]),
        }
    }
}

/// Pivots equal-length columns back into rows.
pub fn columns_to_rows(columns: &[Column]) -> Vec<Row> {
    let n = columns.first().map_or(0, Column::len);
    (0..n)
        .map(|i| columns.iter().map(|c| c.get(i)).collect())
        .collect()
}

/// Days-since-epoch to `YYYY-MM-DD` (proleptic Gregorian).
pub fn format_date(epoch_days: i32) -> String {
    let (y, m, d) = civil_from_days(epoch_days as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Milliseconds-since-epoch to `YYYY-MM-DD HH:MM:SS[.mmm]`.
pub fn format_timestamp(ms: i64) -> String {
    let days = ms.div_euclid(86_400_000);
    let rem = ms.rem_euclid(86_400_000);
    let (y, mo, d) = civil_from_days(days);
    let s = rem / 1000;
    let (h, mi, se) = (s / 3600, (s % 3600) / 60, s % 60);
    let millis = rem % 1000;
    if millis == 0 {
        format!("{y:04}-{mo:02}-{d:02} {h:02}:{mi:02}:{se:02}")
    } else {
        format!("{y:04}-{mo:02}-{d:02} {h:02}:{mi:02}:{se:02}.{millis:03}")
    }
}

/// `YYYY-MM-DD` to days since epoch. Returns `None` on malformed input.
pub fn parse_date(s: &str) -> Option<i32> {
    let mut it = s.split('-');
    let y: i64 = it.next()?.parse().ok()?;
    let m: i64 = it.next()?.parse().ok()?;
    let d: i64 = it.next()?.parse().ok()?;
    if it.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(days_from_civil(y, m, d) as i32)
}

/// `YYYY-MM-DD[ HH:MM[:SS[.mmm]]]` to ms since epoch.
pub fn parse_timestamp(s: &str) -> Option<i64> {
    let (date_part, time_part) = match s.find(' ') {
        Some(i) => (&s[..i], Some(&s[i + 1..])),
        None => (s, None),
    };
    let days = parse_date(date_part)? as i64;
    let mut ms = days * 86_400_000;
    if let Some(t) = time_part {
        let (hms, frac) = match t.find('.') {
            Some(i) => (&t[..i], Some(&t[i + 1..])),
            None => (t, None),
        };
        let mut it = hms.split(':');
        let h: i64 = it.next()?.parse().ok()?;
        let mi: i64 = it.next()?.parse().ok()?;
        let se: i64 = it.next().map(|x| x.parse().ok()).unwrap_or(Some(0))?;
        if h > 23 || mi > 59 || se > 59 {
            return None;
        }
        ms += (h * 3600 + mi * 60 + se) * 1000;
        if let Some(fr) = frac {
            let padded = format!("{:0<3}", fr);
            ms += padded[..3].parse::<i64>().ok()?;
        }
    }
    Some(ms)
}

// Howard Hinnant's civil-days algorithms.
fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

fn civil_from_days(z: i64) -> (i64, i64, i64) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(d: &Datum) -> u64 {
        let mut h = DefaultHasher::new();
        d.hash(&mut h);
        h.finish()
    }

    #[test]
    fn cross_numeric_equality_and_hash() {
        let i = Datum::Int(42);
        let d = Datum::Double(42.0);
        assert_eq!(i, d);
        assert_eq!(hash_of(&i), hash_of(&d));
        assert_ne!(Datum::Int(42), Datum::Double(42.5));
    }

    #[test]
    fn null_sorts_first() {
        let mut v = [Datum::Int(1), Datum::Null, Datum::Int(-5)];
        v.sort();
        assert_eq!(v[0], Datum::Null);
        assert_eq!(v[1], Datum::Int(-5));
    }

    #[test]
    fn sql_cmp_is_three_valued() {
        assert_eq!(Datum::Null.sql_cmp(&Datum::Int(1)), None);
        assert_eq!(Datum::Int(1).sql_cmp(&Datum::Int(2)), Some(Ordering::Less));
    }

    #[test]
    fn date_round_trip() {
        for s in ["1970-01-01", "2018-06-10", "1969-12-31", "2000-02-29"] {
            let d = parse_date(s).unwrap();
            assert_eq!(format_date(d), s);
        }
        assert_eq!(parse_date("1970-01-02"), Some(1));
        assert_eq!(parse_date("1969-12-31"), Some(-1));
        assert!(parse_date("not-a-date").is_none());
        assert!(parse_date("1970-13-01").is_none());
    }

    #[test]
    fn timestamp_round_trip() {
        let ms = parse_timestamp("2018-06-10 12:30:45").unwrap();
        assert_eq!(format_timestamp(ms), "2018-06-10 12:30:45");
        let ms = parse_timestamp("2018-06-10 12:30:45.250").unwrap();
        assert_eq!(format_timestamp(ms), "2018-06-10 12:30:45.250");
        assert_eq!(parse_timestamp("1970-01-01 00:00:00"), Some(0));
    }

    #[test]
    fn array_and_map_display() {
        let a = Datum::array(vec![Datum::Int(1), Datum::str("x")]);
        assert_eq!(a.to_string(), "[1, x]");
        let m = Datum::map(vec![("k".to_string(), Datum::Int(7))]);
        assert_eq!(m.to_string(), "{k: 7}");
    }

    #[test]
    fn as_millis_conversions() {
        assert_eq!(Datum::Date(1).as_millis(), Some(86_400_000));
        assert_eq!(Datum::Timestamp(5).as_millis(), Some(5));
        assert_eq!(Datum::Interval(7).as_millis(), Some(7));
    }

    #[test]
    fn double_display_keeps_decimal_point() {
        assert_eq!(Datum::Double(3.0).to_string(), "3.0");
        assert_eq!(Datum::Double(3.25).to_string(), "3.25");
    }

    #[test]
    fn column_round_trip_per_kind() {
        let cases = vec![
            (
                TypeKind::Integer,
                vec![Datum::Int(1), Datum::Null, Datum::Int(i64::MAX)],
            ),
            (
                TypeKind::Double,
                vec![Datum::Double(1.5), Datum::Null, Datum::Double(-0.0)],
            ),
            (
                TypeKind::Boolean,
                vec![Datum::Bool(true), Datum::Null, Datum::Bool(false)],
            ),
            (
                TypeKind::Varchar,
                vec![Datum::str("a"), Datum::Null, Datum::str("")],
            ),
            (TypeKind::Date, vec![Datum::Date(3), Datum::Null]),
        ];
        for (kind, datums) in cases {
            let col = Column::from_datums(&kind, datums.clone());
            assert_eq!(col.len(), datums.len());
            assert_eq!(col.to_datums(), datums, "kind {kind:?}");
            assert!(col.is_null(1));
        }
    }

    #[test]
    fn column_demotes_on_mismatched_push() {
        let mut col = Column::from_datums(&TypeKind::Integer, vec![Datum::Int(1)]);
        col.push(Datum::str("x"));
        assert!(matches!(col, Column::Generic(_)));
        assert_eq!(col.to_datums(), vec![Datum::Int(1), Datum::str("x")]);
    }

    #[test]
    fn column_gather_slice_append_repeat() {
        let col = Column::from_datums(
            &TypeKind::Integer,
            vec![Datum::Int(10), Datum::Null, Datum::Int(30), Datum::Int(40)],
        );
        assert_eq!(
            col.gather(&[3, 1]).to_datums(),
            vec![Datum::Int(40), Datum::Null]
        );
        assert_eq!(
            col.slice(1, 2).to_datums(),
            vec![Datum::Null, Datum::Int(30)]
        );
        let mut a = col.slice(0, 2);
        a.append(&col.slice(2, 2));
        assert_eq!(a.to_datums(), col.to_datums());
        // Mixed-representation append demotes.
        let mut b = col.slice(0, 1);
        b.append(&Column::repeat(&Datum::str("s"), 2));
        assert_eq!(b.len(), 3);
        assert_eq!(b.get(2), Datum::str("s"));
        assert_eq!(Column::repeat(&Datum::Null, 2).to_datums().len(), 2);
    }

    #[test]
    fn columns_to_rows_pivots() {
        let a = Column::from_datums(&TypeKind::Integer, vec![Datum::Int(1), Datum::Int(2)]);
        let b = Column::from_datums(&TypeKind::Varchar, vec![Datum::str("x"), Datum::Null]);
        assert_eq!(
            columns_to_rows(&[a, b]),
            vec![
                vec![Datum::Int(1), Datum::str("x")],
                vec![Datum::Int(2), Datum::Null],
            ]
        );
        assert!(columns_to_rows(&[]).is_empty());
    }

    #[test]
    fn total_order_across_kinds_is_consistent() {
        // Reflexivity/antisymmetry smoke check over a mixed set.
        let vals = [
            Datum::Null,
            Datum::Bool(false),
            Datum::Int(0),
            Datum::str("a"),
            Datum::Date(0),
        ];
        for a in &vals {
            for b in &vals {
                let ab = a.cmp(b);
                let ba = b.cmp(a);
                assert_eq!(ab, ba.reverse());
            }
        }
    }
}
