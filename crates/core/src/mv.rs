//! Materialized-view rewriting, approach 1 of paper §6: *view
//! substitution*. "The aim is to substitute part of the relational algebra
//! tree with an equivalent expression which makes use of a materialized
//! view"; rewritings may be *partial*, adding residual filters or rollup
//! aggregations on top of the view scan.

use crate::catalog::TableRef;
use crate::rel::{self, AggCall, AggFunc, Rel, RelOp};
use crate::rex::RexNode;
use crate::rules::{Pattern, Rule, RuleCall};
use std::collections::HashSet;
use std::sync::Arc;

/// A registered materialization: a stored table plus the logical plan that
/// defines its contents.
#[derive(Clone)]
pub struct Materialization {
    pub name: String,
    /// The table holding the materialized rows.
    pub table: TableRef,
    /// The view definition as a logical plan over base tables.
    pub plan: Rel,
    /// The incremental-maintenance handle, when this materialization is a
    /// `CREATE MATERIALIZED VIEW` registered with the commit feed. `None`
    /// (manually registered materializations, lattice tiles) keeps the
    /// legacy always-usable behavior.
    pub maintained: Option<Arc<crate::ivm::MaintainedView>>,
}

impl Materialization {
    pub fn new(name: impl Into<String>, table: TableRef, plan: Rel) -> Materialization {
        Materialization {
            name: name.into(),
            table,
            // A top-level rename projection (identity column references in
            // order) does not change stored positions; stripping it lets
            // the unifier see through SELECT-list aliases.
            plan: strip_rename(&plan),
            maintained: None,
        }
    }

    /// Attaches the freshness/maintenance handle.
    pub fn with_maintained(mut self, view: Arc<crate::ivm::MaintainedView>) -> Materialization {
        self.maintained = Some(view);
        self
    }

    /// Whether substitution may serve reads from this materialization
    /// right now: tracked views must be fresh; untracked ones always are.
    pub fn is_usable(&self) -> bool {
        self.maintained.as_ref().is_none_or(|m| m.is_fresh())
    }
}

/// Removes top-level identity (rename-only) projections.
fn strip_rename(plan: &Rel) -> Rel {
    let mut current = plan.clone();
    loop {
        let RelOp::Project { exprs, .. } = &current.op else {
            return current;
        };
        let input = current.input(0).clone();
        let identity = exprs.len() == input.row_type().arity()
            && exprs
                .iter()
                .enumerate()
                .all(|(i, e)| e.as_input_ref() == Some(i));
        if !identity {
            return current;
        }
        current = input;
    }
}

fn same(a: &Rel, b: &Rel) -> bool {
    a.digest() == b.digest()
}

/// Attempts to rewrite `node` (one subtree, not recursively) to use the
/// materialization. Returns the substituted subtree on success.
pub fn unify(node: &Rel, mat: &Materialization) -> Option<Rel> {
    // Exact match.
    if same(node, &mat.plan) {
        return Some(rel::scan(mat.table.clone()));
    }
    match (&node.op, &mat.plan.op) {
        // Query filter over the view's exact input: compensate with the
        // full filter. (The pure-recursion case; cheap win.)
        (RelOp::Filter { condition }, _) if same(node.input(0), &mat.plan) => {
            Some(rel::filter(rel::scan(mat.table.clone()), condition.clone()))
        }

        // Filter vs filter over the same input: residual-predicate
        // rewriting when the view's conjuncts are a subset of the query's.
        (RelOp::Filter { condition: cq }, RelOp::Filter { condition: cv })
            if same(node.input(0), mat.plan.input(0)) =>
        {
            let q: Vec<RexNode> = cq.conjuncts();
            let v: HashSet<String> = cv.conjuncts().iter().map(|c| c.digest()).collect();
            let all_covered = v.iter().all(|d| q.iter().any(|c| &c.digest() == d));
            if !all_covered {
                return None;
            }
            let residual: Vec<RexNode> =
                q.into_iter().filter(|c| !v.contains(&c.digest())).collect();
            Some(rel::filter(
                rel::scan(mat.table.clone()),
                RexNode::and_all(residual),
            ))
        }

        // Project vs project over the same input: column remapping when
        // every query expression appears in the view output.
        (
            RelOp::Project {
                exprs: eq,
                names: nq,
            },
            RelOp::Project { exprs: ev, .. },
        ) if same(node.input(0), mat.plan.input(0)) => {
            let view_rt = mat.table.table.row_type();
            let mut out = vec![];
            for e in eq {
                let pos = ev.iter().position(|ve| ve.digest() == e.digest())?;
                out.push(RexNode::input(pos, view_rt.field(pos).ty.clone()));
            }
            Some(rel::project(rel::scan(mat.table.clone()), out, nq.clone()))
        }

        // Aggregate rollup: query groups by a subset of the view's keys.
        (
            RelOp::Aggregate {
                group: gq,
                aggs: aq,
            },
            RelOp::Aggregate {
                group: gv,
                aggs: av,
            },
        ) if same(node.input(0), mat.plan.input(0)) => rollup(node, mat, gq, aq, gv, av),
        _ => None,
    }
}

/// Builds the rollup aggregation answering a coarser-grained aggregate
/// from a finer-grained materialized aggregate.
fn rollup(
    node: &Rel,
    mat: &Materialization,
    gq: &[usize],
    aq: &[AggCall],
    gv: &[usize],
    av: &[AggCall],
) -> Option<Rel> {
    // Every query group key must be a view group key.
    let mut group_map = vec![];
    for g in gq {
        let pos = gv.iter().position(|v| v == g)?;
        group_map.push(pos); // position within the view's key columns
    }
    let view_rt = mat.table.table.row_type();

    // Derive each query aggregate from a view measure. View output layout:
    // [group keys..., measures...].
    let mut out_aggs = vec![];
    for a in aq {
        if a.distinct {
            return None; // DISTINCT aggregates do not roll up
        }
        let find_measure = |func: AggFunc, args: &[usize]| {
            av.iter()
                .position(|m| m.func == func && m.args == args && !m.distinct)
                .map(|i| gv.len() + i)
        };
        let (func, col) = match a.func {
            // COUNT rolls up as SUM of the stored counts.
            AggFunc::Count => (AggFunc::Sum, find_measure(AggFunc::Count, &a.args)?),
            AggFunc::Sum => (AggFunc::Sum, find_measure(AggFunc::Sum, &a.args)?),
            AggFunc::Min => (AggFunc::Min, find_measure(AggFunc::Min, &a.args)?),
            AggFunc::Max => (AggFunc::Max, find_measure(AggFunc::Max, &a.args)?),
            AggFunc::Avg => return None, // AVG needs SUM+COUNT pair; not derivable alone
        };
        out_aggs.push(AggCall {
            func,
            args: vec![col],
            distinct: false,
            name: a.name.clone(),
            ty: a.ty.clone(),
        });
    }

    let scan = rel::scan(mat.table.clone());
    if group_map.len() == gv.len() && aq.len() == av.len() {
        // Same grain: a projection suffices (group order may differ).
        let mut exprs = vec![];
        let mut names = vec![];
        let node_rt = node.row_type();
        for (i, pos) in group_map.iter().enumerate() {
            exprs.push(RexNode::input(*pos, view_rt.field(*pos).ty.clone()));
            names.push(node_rt.field(i).name.clone());
        }
        for (i, a) in aq.iter().enumerate() {
            let pos = gv.len()
                + av.iter()
                    .position(|m| m.func == a.func && m.args == a.args)?;
            exprs.push(RexNode::input(pos, view_rt.field(pos).ty.clone()));
            names.push(node_rt.field(group_map.len() + i).name.clone());
        }
        return Some(rel::project(scan, exprs, names));
    }
    Some(rel::aggregate(scan, group_map, out_aggs))
}

/// Recursively rewrites a query, substituting every subtree a
/// materialization can answer. Returns alternatives (the original is not
/// included).
pub fn substitute(query: &Rel, mats: &[Materialization]) -> Vec<Rel> {
    let mut alts = vec![];
    // Whole-node rewrites.
    for m in mats {
        if let Some(rw) = unify(query, m) {
            alts.push(rw);
        }
    }
    // Child rewrites (one child substituted at a time, recursively).
    for (i, child) in query.inputs.iter().enumerate() {
        for alt in substitute(child, mats) {
            let mut inputs = query.inputs.clone();
            inputs[i] = alt;
            alts.push(query.with_inputs(inputs));
        }
    }
    alts
}

/// Planner rule wrapping [`substitute`]: in the Volcano engine the view
/// scan and definition plan land in the same equivalence set and cost
/// picks the winner — exactly the paper's registration scheme.
pub struct MaterializedViewRule {
    mats: Vec<Materialization>,
}

impl MaterializedViewRule {
    pub fn new(mats: Vec<Materialization>) -> MaterializedViewRule {
        MaterializedViewRule { mats }
    }
}

impl Rule for MaterializedViewRule {
    fn name(&self) -> &str {
        "MaterializedViewRule"
    }

    fn pattern(&self) -> Pattern {
        Pattern::any()
    }

    fn on_match(&self, call: &mut RuleCall) {
        let node = call.rel(0).clone();
        if !node.convention.is_none() {
            return;
        }
        for m in &self.mats {
            // A stale maintained view must not serve reads; skipping it
            // here makes substitution fall back to the base-table plan.
            if !m.is_usable() {
                continue;
            }
            if let Some(rw) = unify(&node, m) {
                call.transform_to(rw);
            }
        }
    }
}

/// Convenience: wraps materializations in an `Arc<dyn Rule>`.
pub fn materialized_view_rule(mats: Vec<Materialization>) -> Arc<dyn Rule> {
    Arc::new(MaterializedViewRule::new(mats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemTable, TableRef};
    use crate::rel::RelKind;
    use crate::types::{RelType, RowTypeBuilder, TypeKind};

    fn int_ty() -> RelType {
        RelType::not_null(TypeKind::Integer)
    }

    fn base() -> Rel {
        let t = MemTable::new(
            RowTypeBuilder::new()
                .add_not_null("k", TypeKind::Integer)
                .add_not_null("v", TypeKind::Integer)
                .build(),
            vec![],
        );
        rel::scan(TableRef::new("s", "base", t))
    }

    fn view_table(fields: &[(&str, TypeKind)]) -> TableRef {
        let mut b = RowTypeBuilder::new();
        for (n, k) in fields {
            b = b.add_not_null(*n, k.clone());
        }
        TableRef::new("s", "mv", MemTable::new(b.build(), vec![]))
    }

    #[test]
    fn exact_match_substitution() {
        let q = rel::filter(base(), RexNode::input(0, int_ty()).gt(RexNode::lit_int(5)));
        let mat = Materialization::new(
            "mv",
            view_table(&[("k", TypeKind::Integer), ("v", TypeKind::Integer)]),
            q.clone(),
        );
        let rw = unify(&q, &mat).unwrap();
        assert_eq!(rw.kind(), RelKind::Scan);
    }

    #[test]
    fn residual_filter_substitution() {
        // View: k > 5. Query: k > 5 AND v < 3. Residual: v < 3.
        let view = rel::filter(base(), RexNode::input(0, int_ty()).gt(RexNode::lit_int(5)));
        let query = rel::filter(
            base(),
            RexNode::and_all(vec![
                RexNode::input(0, int_ty()).gt(RexNode::lit_int(5)),
                RexNode::input(1, int_ty()).lt(RexNode::lit_int(3)),
            ]),
        );
        let mat = Materialization::new(
            "mv",
            view_table(&[("k", TypeKind::Integer), ("v", TypeKind::Integer)]),
            view,
        );
        let rw = unify(&query, &mat).unwrap();
        assert_eq!(rw.kind(), RelKind::Filter);
        if let RelOp::Filter { condition } = &rw.op {
            assert_eq!(condition.digest(), "($1 < 3)");
        }
        assert_eq!(rw.input(0).kind(), RelKind::Scan);
    }

    #[test]
    fn view_with_extra_predicates_is_rejected() {
        // View filters more than the query: cannot answer.
        let view = rel::filter(
            base(),
            RexNode::and_all(vec![
                RexNode::input(0, int_ty()).gt(RexNode::lit_int(5)),
                RexNode::input(1, int_ty()).lt(RexNode::lit_int(3)),
            ]),
        );
        let query = rel::filter(base(), RexNode::input(0, int_ty()).gt(RexNode::lit_int(5)));
        let mat = Materialization::new(
            "mv",
            view_table(&[("k", TypeKind::Integer), ("v", TypeKind::Integer)]),
            view,
        );
        assert!(unify(&query, &mat).is_none());
    }

    #[test]
    fn aggregate_rollup_count_becomes_sum() {
        let rt = base().row_type().clone();
        // View: GROUP BY k: COUNT(*), SUM(v).
        let view = rel::aggregate(
            base(),
            vec![0],
            vec![
                AggCall::count_star("c"),
                AggCall::new(AggFunc::Sum, vec![1], false, "s", &rt),
            ],
        );
        // Query: global COUNT(*) + SUM(v).
        let query = rel::aggregate(
            base(),
            vec![],
            vec![
                AggCall::count_star("c"),
                AggCall::new(AggFunc::Sum, vec![1], false, "s", &rt),
            ],
        );
        let mat = Materialization::new(
            "mv",
            view_table(&[
                ("k", TypeKind::Integer),
                ("c", TypeKind::Integer),
                ("s", TypeKind::Integer),
            ]),
            view,
        );
        let rw = unify(&query, &mat).unwrap();
        assert_eq!(rw.kind(), RelKind::Aggregate);
        if let RelOp::Aggregate { group, aggs } = &rw.op {
            assert!(group.is_empty());
            // COUNT rolls up as SUM over the view's count column (index 1).
            assert_eq!(aggs[0].func, AggFunc::Sum);
            assert_eq!(aggs[0].args, vec![1]);
            assert_eq!(aggs[1].func, AggFunc::Sum);
            assert_eq!(aggs[1].args, vec![2]);
        }
    }

    #[test]
    fn same_grain_aggregate_becomes_projection() {
        let rt = base().row_type().clone();
        let view = rel::aggregate(
            base(),
            vec![0],
            vec![AggCall::new(AggFunc::Sum, vec![1], false, "s", &rt)],
        );
        let query = rel::aggregate(
            base(),
            vec![0],
            vec![AggCall::new(AggFunc::Sum, vec![1], false, "total", &rt)],
        );
        let mat = Materialization::new(
            "mv",
            view_table(&[("k", TypeKind::Integer), ("s", TypeKind::Integer)]),
            view,
        );
        let rw = unify(&query, &mat).unwrap();
        assert_eq!(rw.kind(), RelKind::Project);
        assert_eq!(rw.row_type().field_names(), vec!["k", "total"]);
    }

    #[test]
    fn avg_does_not_roll_up() {
        let rt = base().row_type().clone();
        let view = rel::aggregate(
            base(),
            vec![0],
            vec![AggCall::new(AggFunc::Avg, vec![1], false, "a", &rt)],
        );
        let query = rel::aggregate(
            base(),
            vec![],
            vec![AggCall::new(AggFunc::Avg, vec![1], false, "a", &rt)],
        );
        let mat = Materialization::new(
            "mv",
            view_table(&[("k", TypeKind::Integer), ("a", TypeKind::Double)]),
            view,
        );
        assert!(unify(&query, &mat).is_none());
    }

    #[test]
    fn substitute_rewrites_nested_subtree() {
        // Query: Sort over (Filter base); view matches the filter subtree.
        let filt = rel::filter(base(), RexNode::input(0, int_ty()).gt(RexNode::lit_int(5)));
        let query = rel::sort(filt.clone(), vec![crate::traits::FieldCollation::asc(0)]);
        let mat = Materialization::new(
            "mv",
            view_table(&[("k", TypeKind::Integer), ("v", TypeKind::Integer)]),
            filt,
        );
        let alts = substitute(&query, &[mat]);
        assert_eq!(alts.len(), 1);
        assert_eq!(alts[0].kind(), RelKind::Sort);
        assert_eq!(alts[0].input(0).kind(), RelKind::Scan);
    }
}
