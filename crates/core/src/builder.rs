//! `RelBuilder`: the "built-in relational expressions builder interface"
//! of paper §3, through which systems with their own query languages (Pig,
//! dataframe APIs, ...) construct operator trees directly. The paper's
//! running example is expressible verbatim:
//!
//! ```
//! # use rcalcite_core::builder::RelBuilder;
//! # use rcalcite_core::catalog::{Catalog, MemTable, Schema};
//! # use rcalcite_core::types::{RowTypeBuilder, TypeKind};
//! # let catalog = Catalog::new();
//! # let s = Schema::new();
//! # s.add_table("employee_data", MemTable::new(RowTypeBuilder::new()
//! #     .add_not_null("deptno", TypeKind::Integer)
//! #     .add("sal", TypeKind::Double).build(), vec![]));
//! # catalog.add_schema("hr", s);
//! let node = RelBuilder::new(&catalog)
//!     .scan("employee_data")
//!     .aggregate_named(
//!         &["deptno"],
//!         vec![
//!             RelBuilder::count(false, "c"),
//!             RelBuilder::sum(false, "s", "sal"),
//!         ],
//!     )
//!     .build()
//!     .unwrap();
//! assert_eq!(node.row_type().field_names(), vec!["deptno", "c", "s"]);
//! ```

use crate::catalog::Catalog;
use crate::datum::Row;
use crate::error::{CalciteError, Result};
use crate::rel::{self, AggCall, AggFunc, JoinKind, Rel};
use crate::rex::RexNode;
use crate::traits::{Collation, FieldCollation};
use crate::types::RowType;

/// Specification of one aggregate call, before resolution against the
/// input row type.
#[derive(Debug, Clone)]
pub struct AggSpec {
    func: AggFunc,
    distinct: bool,
    name: String,
    /// Column name argument; `None` for COUNT(*).
    arg: Option<String>,
}

/// Fluent builder of relational operator trees. Fallible steps record
/// their error and `build()` reports the first one, so chains stay clean.
pub struct RelBuilder<'a> {
    catalog: &'a Catalog,
    stack: Vec<Rel>,
    error: Option<CalciteError>,
}

impl<'a> RelBuilder<'a> {
    pub fn new(catalog: &'a Catalog) -> RelBuilder<'a> {
        RelBuilder {
            catalog,
            stack: vec![],
            error: None,
        }
    }

    // -------------------------------------------------------------
    // Aggregate call factories
    // -------------------------------------------------------------

    pub fn count(distinct: bool, name: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Count,
            distinct,
            name: name.into(),
            arg: None,
        }
    }

    pub fn count_column(
        distinct: bool,
        name: impl Into<String>,
        col: impl Into<String>,
    ) -> AggSpec {
        AggSpec {
            func: AggFunc::Count,
            distinct,
            name: name.into(),
            arg: Some(col.into()),
        }
    }

    pub fn sum(distinct: bool, name: impl Into<String>, col: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Sum,
            distinct,
            name: name.into(),
            arg: Some(col.into()),
        }
    }

    pub fn min(name: impl Into<String>, col: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Min,
            distinct: false,
            name: name.into(),
            arg: Some(col.into()),
        }
    }

    pub fn max(name: impl Into<String>, col: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Max,
            distinct: false,
            name: name.into(),
            arg: Some(col.into()),
        }
    }

    pub fn avg(name: impl Into<String>, col: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Avg,
            distinct: false,
            name: name.into(),
            arg: Some(col.into()),
        }
    }

    // -------------------------------------------------------------
    // Stack inspection
    // -------------------------------------------------------------

    fn fail(mut self, e: CalciteError) -> Self {
        if self.error.is_none() {
            self.error = Some(e);
        }
        self
    }

    /// Row type of the expression on top of the stack.
    pub fn peek_row_type(&self) -> Option<RowType> {
        self.stack.last().map(|r| r.row_type().clone())
    }

    /// A reference to a field of the top expression, by name.
    pub fn field(&self, name: &str) -> Result<RexNode> {
        let top = self
            .stack
            .last()
            .ok_or_else(|| CalciteError::plan("builder stack is empty"))?;
        let rt = top.row_type();
        let idx = rt
            .field_index(name)
            .ok_or_else(|| CalciteError::validate(format!("field '{name}' not found in {rt}")))?;
        Ok(RexNode::input(idx, rt.field(idx).ty.clone()))
    }

    /// A reference to the `i`th field of the top expression.
    pub fn field_at(&self, i: usize) -> Result<RexNode> {
        let top = self
            .stack
            .last()
            .ok_or_else(|| CalciteError::plan("builder stack is empty"))?;
        let rt = top.row_type();
        if i >= rt.arity() {
            return Err(CalciteError::validate(format!(
                "field #{i} out of range for {rt}"
            )));
        }
        Ok(RexNode::input(i, rt.field(i).ty.clone()))
    }

    /// A join-condition reference: field of the left (0) or right (1)
    /// input, offset into the concatenated join row.
    pub fn join_field(&self, side: usize, name: &str) -> Result<RexNode> {
        if self.stack.len() < 2 {
            return Err(CalciteError::plan(
                "join_field needs two inputs on the stack",
            ));
        }
        let left = &self.stack[self.stack.len() - 2];
        let right = &self.stack[self.stack.len() - 1];
        let (rel_, offset) = if side == 0 {
            (left, 0)
        } else {
            (right, left.row_type().arity())
        };
        let rt = rel_.row_type();
        let idx = rt
            .field_index(name)
            .ok_or_else(|| CalciteError::validate(format!("field '{name}' not found in {rt}")))?;
        Ok(RexNode::input(offset + idx, rt.field(idx).ty.clone()))
    }

    // -------------------------------------------------------------
    // Operators
    // -------------------------------------------------------------

    /// Pushes a scan of `[schema.]table`.
    pub fn scan(mut self, name: &str) -> Self {
        let parts: Vec<&str> = name.split('.').collect();
        match self.catalog.resolve(&parts) {
            Ok(t) => {
                self.stack.push(rel::scan(t));
                self
            }
            Err(e) => self.fail(e),
        }
    }

    /// Pushes literal rows.
    pub fn values(mut self, row_type: RowType, rows: Vec<Row>) -> Self {
        self.stack.push(rel::values(row_type, rows));
        self
    }

    pub fn filter(mut self, condition: RexNode) -> Self {
        match self.stack.pop() {
            Some(input) => {
                self.stack.push(rel::filter(input, condition));
                self
            }
            None => self.fail(CalciteError::plan("filter on empty stack")),
        }
    }

    /// Filter built from a closure receiving `self` for field lookups.
    pub fn filter_with(self, f: impl FnOnce(&Self) -> Result<RexNode>) -> Self {
        match f(&self) {
            Ok(cond) => self.filter(cond),
            Err(e) => self.fail(e),
        }
    }

    pub fn project(mut self, exprs: Vec<RexNode>, names: Vec<String>) -> Self {
        match self.stack.pop() {
            Some(input) => {
                self.stack.push(rel::project(input, exprs, names));
                self
            }
            None => self.fail(CalciteError::plan("project on empty stack")),
        }
    }

    /// Projects named columns of the top expression.
    pub fn project_fields(self, names: &[&str]) -> Self {
        let mut exprs = vec![];
        let mut out_names = vec![];
        for n in names {
            match self.field(n) {
                Ok(e) => {
                    exprs.push(e);
                    out_names.push(n.to_string());
                }
                Err(e) => return self.fail(e),
            }
        }
        self.project(exprs, out_names)
    }

    /// Joins the top two expressions (left pushed first).
    pub fn join(mut self, kind: JoinKind, condition: RexNode) -> Self {
        if self.stack.len() < 2 {
            return self.fail(CalciteError::plan("join needs two inputs on the stack"));
        }
        let right = self.stack.pop().unwrap();
        let left = self.stack.pop().unwrap();
        self.stack.push(rel::join(left, right, kind, condition));
        self
    }

    /// Equi-join on same-named columns (the SQL `USING` form).
    pub fn join_using(self, kind: JoinKind, columns: &[&str]) -> Self {
        let mut conds = vec![];
        for c in columns {
            let l = match self.join_field(0, c) {
                Ok(e) => e,
                Err(e) => return self.fail(e),
            };
            let r = match self.join_field(1, c) {
                Ok(e) => e,
                Err(e) => return self.fail(e),
            };
            conds.push(l.eq(r));
        }
        self.join(kind, RexNode::and_all(conds))
    }

    /// Aggregate with group keys given as column indexes of the input.
    pub fn aggregate(mut self, group: Vec<usize>, aggs: Vec<AggCall>) -> Self {
        match self.stack.pop() {
            Some(input) => {
                self.stack.push(rel::aggregate(input, group, aggs));
                self
            }
            None => self.fail(CalciteError::plan("aggregate on empty stack")),
        }
    }

    /// Aggregate with named group keys and aggregate specs, mirroring the
    /// paper's `builder.aggregate(builder.groupKey("deptno"), ...)`.
    pub fn aggregate_named(mut self, group: &[&str], aggs: Vec<AggSpec>) -> Self {
        let input = match self.stack.pop() {
            Some(i) => i,
            None => return self.fail(CalciteError::plan("aggregate on empty stack")),
        };
        let rt = input.row_type().clone();
        let mut group_idx = vec![];
        for g in group {
            match rt.field_index(g) {
                Some(i) => group_idx.push(i),
                None => {
                    return self.fail(CalciteError::validate(format!(
                        "group key '{g}' not found in {rt}"
                    )))
                }
            }
        }
        let mut calls = vec![];
        for spec in aggs {
            let args = match &spec.arg {
                None => vec![],
                Some(col) => match rt.field_index(col) {
                    Some(i) => vec![i],
                    None => {
                        return self.fail(CalciteError::validate(format!(
                            "aggregate argument '{col}' not found in {rt}"
                        )))
                    }
                },
            };
            calls.push(AggCall::new(spec.func, args, spec.distinct, spec.name, &rt));
        }
        self.stack.push(rel::aggregate(input, group_idx, calls));
        self
    }

    /// Sorts by named columns; prefix a name with `-` for descending.
    pub fn sort_by(mut self, columns: &[&str]) -> Self {
        let input = match self.stack.pop() {
            Some(i) => i,
            None => return self.fail(CalciteError::plan("sort on empty stack")),
        };
        let rt = input.row_type().clone();
        let mut collation: Collation = vec![];
        for c in columns {
            let (name, desc) = match c.strip_prefix('-') {
                Some(rest) => (rest, true),
                None => (*c, false),
            };
            match rt.field_index(name) {
                Some(i) => collation.push(if desc {
                    FieldCollation::desc(i)
                } else {
                    FieldCollation::asc(i)
                }),
                None => {
                    return self.fail(CalciteError::validate(format!(
                        "sort key '{name}' not found in {rt}"
                    )))
                }
            }
        }
        self.stack.push(rel::sort(input, collation));
        self
    }

    pub fn sort(mut self, collation: Collation) -> Self {
        match self.stack.pop() {
            Some(input) => {
                self.stack.push(rel::sort(input, collation));
                self
            }
            None => self.fail(CalciteError::plan("sort on empty stack")),
        }
    }

    pub fn limit(mut self, offset: Option<usize>, fetch: Option<usize>) -> Self {
        match self.stack.pop() {
            Some(input) => {
                self.stack
                    .push(rel::sort_limit(input, vec![], offset, fetch));
                self
            }
            None => self.fail(CalciteError::plan("limit on empty stack")),
        }
    }

    /// Combines the top `n` expressions with UNION \[ALL\].
    pub fn union(mut self, all: bool, n: usize) -> Self {
        let have = self.stack.len();
        if have < n || n < 2 {
            return self.fail(CalciteError::plan(format!(
                "union needs {n} inputs, stack has {have}"
            )));
        }
        let inputs = self.stack.split_off(self.stack.len() - n);
        self.stack.push(rel::union(inputs, all));
        self
    }

    /// Marks the top expression as a stream delta (STREAM keyword, §7.2).
    pub fn delta(mut self) -> Self {
        match self.stack.pop() {
            Some(input) => {
                self.stack.push(rel::delta(input));
                self
            }
            None => self.fail(CalciteError::plan("delta on empty stack")),
        }
    }

    /// Pops the finished expression.
    pub fn build(mut self) -> Result<Rel> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.stack
            .pop()
            .ok_or_else(|| CalciteError::plan("builder stack is empty at build()"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemTable, Schema};
    use crate::datum::Datum;
    use crate::rel::RelKind;
    use crate::types::{RowTypeBuilder, TypeKind};

    fn catalog() -> std::sync::Arc<Catalog> {
        let catalog = Catalog::new();
        let s = Schema::new();
        s.add_table(
            "employee_data",
            MemTable::new(
                RowTypeBuilder::new()
                    .add_not_null("deptno", TypeKind::Integer)
                    .add("sal", TypeKind::Double)
                    .build(),
                vec![
                    vec![Datum::Int(10), Datum::Double(100.0)],
                    vec![Datum::Int(10), Datum::Double(200.0)],
                    vec![Datum::Int(20), Datum::Double(300.0)],
                ],
            ),
        );
        s.add_table(
            "dept",
            MemTable::new(
                RowTypeBuilder::new()
                    .add_not_null("deptno", TypeKind::Integer)
                    .add("name", TypeKind::Varchar)
                    .build(),
                vec![],
            ),
        );
        catalog.add_schema("hr", s);
        catalog
    }

    #[test]
    fn paper_pig_example() {
        // The §3 Pig script: GROUP emp BY deptno; COUNT(sal), SUM(sal).
        let cat = catalog();
        let node = RelBuilder::new(&cat)
            .scan("employee_data")
            .aggregate_named(
                &["deptno"],
                vec![
                    RelBuilder::count(false, "c"),
                    RelBuilder::sum(false, "s", "sal"),
                ],
            )
            .build()
            .unwrap();
        assert_eq!(node.kind(), RelKind::Aggregate);
        assert_eq!(node.row_type().field_names(), vec!["deptno", "c", "s"]);
    }

    #[test]
    fn filter_project_chain() {
        let cat = catalog();
        let b = RelBuilder::new(&cat).scan("employee_data");
        let node = b
            .filter_with(|b| Ok(b.field("sal")?.gt(RexNode::lit_double(150.0))))
            .project_fields(&["deptno"])
            .build()
            .unwrap();
        assert_eq!(node.kind(), RelKind::Project);
        assert_eq!(node.input(0).kind(), RelKind::Filter);
        assert_eq!(node.row_type().arity(), 1);
    }

    #[test]
    fn join_using_builds_equi_condition() {
        let cat = catalog();
        let node = RelBuilder::new(&cat)
            .scan("employee_data")
            .scan("dept")
            .join_using(JoinKind::Inner, &["deptno"])
            .build()
            .unwrap();
        assert_eq!(node.kind(), RelKind::Join);
        assert_eq!(node.row_type().arity(), 4);
    }

    #[test]
    fn unknown_table_surfaces_at_build() {
        let cat = catalog();
        let r = RelBuilder::new(&cat).scan("nope").build();
        assert!(matches!(r, Err(CalciteError::Validate(_))));
    }

    #[test]
    fn unknown_field_surfaces_at_build() {
        let cat = catalog();
        let r = RelBuilder::new(&cat)
            .scan("employee_data")
            .project_fields(&["nope"])
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn first_error_wins() {
        let cat = catalog();
        let r = RelBuilder::new(&cat)
            .scan("missing_table")
            .project_fields(&["also_missing"])
            .build();
        match r {
            Err(CalciteError::Validate(msg)) => assert!(msg.contains("missing_table")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sort_and_limit() {
        let cat = catalog();
        let node = RelBuilder::new(&cat)
            .scan("employee_data")
            .sort_by(&["-sal"])
            .limit(None, Some(2))
            .build()
            .unwrap();
        assert_eq!(node.kind(), RelKind::Sort);
    }

    #[test]
    fn union_of_two_scans() {
        let cat = catalog();
        let node = RelBuilder::new(&cat)
            .scan("employee_data")
            .scan("employee_data")
            .union(true, 2)
            .build()
            .unwrap();
        assert_eq!(node.kind(), RelKind::Union);
        assert_eq!(node.inputs.len(), 2);
    }
}
