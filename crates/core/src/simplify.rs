//! Row-expression simplification: constant folding and logical rewrites.
//! Used by `ReduceExpressionsRule` and by the SQL-to-rel converter so plans
//! enter the planner in canonical form.

use crate::datum::Datum;
use crate::rex::{Op, RexNode};

/// Simplifies an expression bottom-up. The result is semantically
/// equivalent on every input row (verified by property tests).
pub fn simplify(expr: &RexNode) -> RexNode {
    match expr {
        RexNode::InputRef { .. } | RexNode::Literal { .. } | RexNode::DynamicParam { .. } => {
            expr.clone()
        }
        RexNode::Call { op, args, ty } => {
            let args: Vec<RexNode> = args.iter().map(simplify).collect();
            simplify_call(op, args, ty.clone())
        }
    }
}

fn simplify_call(op: &Op, args: Vec<RexNode>, ty: crate::types::RelType) -> RexNode {
    match op {
        Op::And => simplify_and(args),
        Op::Or => simplify_or(args),
        Op::Not => simplify_not(args),
        Op::IsNull => {
            let a = &args[0];
            if a.is_literal() {
                return RexNode::lit_bool(a.as_literal().unwrap().is_null());
            }
            if !a.ty().nullable {
                return RexNode::false_lit();
            }
            RexNode::Call {
                op: Op::IsNull,
                args,
                ty,
            }
        }
        Op::IsNotNull => {
            let a = &args[0];
            if a.is_literal() {
                return RexNode::lit_bool(!a.as_literal().unwrap().is_null());
            }
            if !a.ty().nullable {
                return RexNode::true_lit();
            }
            RexNode::Call {
                op: Op::IsNotNull,
                args,
                ty,
            }
        }
        Op::Case => simplify_case(args, ty),
        Op::Cast => {
            // CAST to the identical type is a no-op.
            if args[0].ty() == &ty {
                return args.into_iter().next().unwrap();
            }
            try_fold(&Op::Cast, args, ty)
        }
        Op::Eq | Op::Ne | Op::Lt | Op::Le | Op::Gt | Op::Ge => {
            // x = x is TRUE for non-nullable x (NULL = NULL is NULL, so we
            // must not rewrite nullable comparisons).
            if args[0] == args[1] && !args[0].ty().nullable && !args[1].ty().nullable {
                return RexNode::lit_bool(matches!(op, Op::Eq | Op::Le | Op::Ge));
            }
            try_fold(op, args, ty)
        }
        _ => try_fold(op, args, ty),
    }
}

/// Folds a call whose arguments are all literals by evaluating it.
/// Evaluation errors (e.g. division by zero) leave the call in place so
/// the error surfaces at run time, preserving semantics.
fn try_fold(op: &Op, args: Vec<RexNode>, ty: crate::types::RelType) -> RexNode {
    if args.iter().all(|a| a.is_literal()) {
        let call = RexNode::Call {
            op: op.clone(),
            args: args.clone(),
            ty: ty.clone(),
        };
        if let Ok(v) = call.eval(&[]) {
            return RexNode::Literal { value: v, ty };
        }
    }
    RexNode::Call {
        op: op.clone(),
        args,
        ty,
    }
}

fn simplify_and(args: Vec<RexNode>) -> RexNode {
    let mut out: Vec<RexNode> = vec![];
    let mut seen = std::collections::HashSet::new();
    for a in args {
        // Flatten nested ANDs.
        let parts = if let RexNode::Call {
            op: Op::And, args, ..
        } = &a
        {
            args.clone()
        } else {
            vec![a]
        };
        for p in parts {
            if p.is_always_false() {
                return RexNode::false_lit();
            }
            if p.is_always_true() {
                continue;
            }
            if seen.insert(p.digest()) {
                out.push(p);
            }
        }
    }
    RexNode::and_all(out)
}

fn simplify_or(args: Vec<RexNode>) -> RexNode {
    let mut out: Vec<RexNode> = vec![];
    let mut seen = std::collections::HashSet::new();
    for a in args {
        let parts = if let RexNode::Call {
            op: Op::Or, args, ..
        } = &a
        {
            args.clone()
        } else {
            vec![a]
        };
        for p in parts {
            if p.is_always_true() {
                return RexNode::true_lit();
            }
            if p.is_always_false() {
                continue;
            }
            if seen.insert(p.digest()) {
                out.push(p);
            }
        }
    }
    RexNode::or_all(out)
}

fn simplify_not(mut args: Vec<RexNode>) -> RexNode {
    let a = args.pop().unwrap();
    match &a {
        RexNode::Literal { value, .. } => match value {
            Datum::Bool(b) => RexNode::lit_bool(!b),
            Datum::Null => a.clone().not(),
            _ => a.not(),
        },
        RexNode::Call {
            op, args: inner, ..
        } => match op {
            // Double negation.
            Op::Not => inner[0].clone(),
            // NOT(a < b) => a >= b  — only valid under 2-valued logic,
            // which holds when both operands are non-nullable.
            _ if op.is_comparison() && !inner[0].ty().nullable && !inner[1].ty().nullable => {
                RexNode::call(op.negated().unwrap(), inner.clone())
            }
            _ => a.not(),
        },
        _ => a.not(),
    }
}

fn simplify_case(args: Vec<RexNode>, ty: crate::types::RelType) -> RexNode {
    let mut out: Vec<RexNode> = vec![];
    let mut i = 0;
    while i + 1 < args.len() {
        let cond = &args[i];
        let val = &args[i + 1];
        if cond.is_always_false() || matches!(cond.as_literal(), Some(Datum::Null)) {
            i += 2;
            continue; // Arm can never fire.
        }
        if cond.is_always_true() {
            // This arm always fires: it becomes the ELSE; drop the rest.
            if out.is_empty() {
                return val.clone();
            }
            out.push(val.clone());
            return RexNode::call_typed(Op::Case, out, ty);
        }
        out.push(cond.clone());
        out.push(val.clone());
        i += 2;
    }
    // ELSE arm.
    if i < args.len() {
        if out.is_empty() {
            return args[i].clone();
        }
        out.push(args[i].clone());
    }
    RexNode::call_typed(Op::Case, out, ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{RelType, TypeKind};

    fn col(i: usize) -> RexNode {
        RexNode::input(i, RelType::not_null(TypeKind::Integer))
    }

    fn ncol(i: usize) -> RexNode {
        RexNode::input(i, RelType::nullable(TypeKind::Integer))
    }

    #[test]
    fn folds_constant_arithmetic() {
        let e = RexNode::call(Op::Plus, vec![RexNode::lit_int(2), RexNode::lit_int(3)]);
        assert_eq!(simplify(&e), RexNode::lit_int(5));
    }

    #[test]
    fn does_not_fold_division_by_zero() {
        let e = RexNode::call(Op::Divide, vec![RexNode::lit_int(1), RexNode::lit_int(0)]);
        let s = simplify(&e);
        assert!(
            !s.is_literal(),
            "division by zero must stay a runtime error"
        );
    }

    #[test]
    fn and_with_false_collapses() {
        let e = RexNode::and_all(vec![col(0).gt(RexNode::lit_int(1)), RexNode::false_lit()]);
        assert!(simplify(&e).is_always_false());
    }

    #[test]
    fn and_drops_true_and_duplicates() {
        let p = col(0).gt(RexNode::lit_int(1));
        let e = RexNode::and_all(vec![p.clone(), RexNode::true_lit(), p.clone()]);
        assert_eq!(simplify(&e), p);
    }

    #[test]
    fn or_with_true_collapses() {
        let e = RexNode::or_all(vec![col(0).lt(RexNode::lit_int(1)), RexNode::true_lit()]);
        assert!(simplify(&e).is_always_true());
    }

    #[test]
    fn nested_and_flattens() {
        let a = col(0).gt(RexNode::lit_int(1));
        let b = col(1).gt(RexNode::lit_int(2));
        let c = col(2).gt(RexNode::lit_int(3));
        let e = RexNode::and_all(vec![a, RexNode::and_all(vec![b, c])]);
        let s = simplify(&e);
        assert_eq!(s.conjuncts().len(), 3);
    }

    #[test]
    fn double_negation() {
        let p = col(0).gt(RexNode::lit_int(1));
        let e = p.clone().not().not();
        assert_eq!(simplify(&e), p);
    }

    #[test]
    fn not_comparison_on_non_nullable_negates() {
        let e = col(0).lt(col(1)).not();
        let s = simplify(&e);
        assert_eq!(s, col(0).ge(col(1)));
    }

    #[test]
    fn not_comparison_on_nullable_is_preserved() {
        let e = ncol(0).lt(ncol(1)).not();
        let s = simplify(&e);
        // Must stay NOT(<) because NULL < NULL is NULL and NOT(NULL)=NULL,
        // whereas >= would also be NULL — both are fine, but x IS NULL
        // distinctions make the rewrite subtle; we keep it conservative.
        assert_eq!(s, ncol(0).lt(ncol(1)).not());
    }

    #[test]
    fn is_null_on_non_nullable_is_false() {
        assert!(simplify(&col(0).is_null()).is_always_false());
        assert!(simplify(&col(0).is_not_null()).is_always_true());
        // Nullable stays.
        let e = simplify(&ncol(0).is_null());
        assert!(!e.is_literal());
    }

    #[test]
    fn x_eq_x_non_nullable_is_true() {
        assert!(simplify(&col(0).eq(col(0))).is_always_true());
        // Nullable x = x must NOT become TRUE.
        let s = simplify(&ncol(0).eq(ncol(0)));
        assert!(!s.is_literal());
    }

    #[test]
    fn case_with_true_first_arm() {
        let e = RexNode::call(
            Op::Case,
            vec![
                RexNode::true_lit(),
                RexNode::lit_int(1),
                RexNode::lit_int(2),
            ],
        );
        assert_eq!(simplify(&e), RexNode::lit_int(1));
    }

    #[test]
    fn case_drops_false_arms() {
        let e = RexNode::call(
            Op::Case,
            vec![
                RexNode::false_lit(),
                RexNode::lit_int(1),
                col(0).gt(RexNode::lit_int(0)),
                RexNode::lit_int(2),
                RexNode::lit_int(3),
            ],
        );
        let s = simplify(&e);
        match &s {
            RexNode::Call {
                op: Op::Case, args, ..
            } => assert_eq!(args.len(), 3),
            other => panic!("expected CASE, got {other}"),
        }
    }

    #[test]
    fn cast_identity_removed() {
        let e = col(0).cast(RelType::not_null(TypeKind::Integer));
        assert_eq!(simplify(&e), col(0));
        let e = RexNode::lit_str("42").cast(RelType::not_null(TypeKind::Integer));
        assert_eq!(simplify(&e), RexNode::lit_int(42));
    }

    #[test]
    fn folds_nested_constant_trees() {
        // (1 + 2) * (10 - 4) = 18
        let e = RexNode::call(
            Op::Times,
            vec![
                RexNode::call(Op::Plus, vec![RexNode::lit_int(1), RexNode::lit_int(2)]),
                RexNode::call(Op::Minus, vec![RexNode::lit_int(10), RexNode::lit_int(4)]),
            ],
        );
        assert_eq!(simplify(&e), RexNode::lit_int(18));
    }
}
