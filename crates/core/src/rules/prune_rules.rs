//! Expression-reduction and empty-subtree pruning rules.

use crate::rel::{self, JoinKind, Rel, RelKind, RelOp};
use crate::rules::{Pattern, Rule, RuleCall};
use crate::simplify::simplify;

/// Simplifies (constant-folds) filter conditions; a TRUE filter vanishes
/// and a FALSE filter becomes an empty Values.
pub struct ReduceExpressionsRule;

impl Rule for ReduceExpressionsRule {
    fn name(&self) -> &str {
        "FilterReduceExpressionsRule"
    }

    fn pattern(&self) -> Pattern {
        Pattern::of(RelKind::Filter)
    }

    fn on_match(&self, call: &mut RuleCall) {
        let f = call.rel(0);
        if let RelOp::Filter { condition } = &f.op {
            let s = simplify(condition);
            if s.is_always_false() {
                call.transform_to(rel::empty(f.row_type().clone()));
            } else if s.is_always_true() {
                call.transform_to(f.input(0).clone());
            } else if s.digest() != condition.digest() {
                call.transform_to(rel::filter(f.input(0).clone(), s));
            }
        }
    }
}

/// Simplifies project expressions.
pub struct ProjectReduceExpressionsRule;

impl Rule for ProjectReduceExpressionsRule {
    fn name(&self) -> &str {
        "ProjectReduceExpressionsRule"
    }

    fn pattern(&self) -> Pattern {
        Pattern::of(RelKind::Project)
    }

    fn on_match(&self, call: &mut RuleCall) {
        let p = call.rel(0);
        if let RelOp::Project { exprs, names } = &p.op {
            let simplified: Vec<_> = exprs.iter().map(simplify).collect();
            let changed = simplified
                .iter()
                .zip(exprs.iter())
                .any(|(a, b)| a.digest() != b.digest());
            if changed {
                call.transform_to(rel::project(p.input(0).clone(), simplified, names.clone()));
            }
        }
    }
}

/// Simplifies join conditions; an inner join whose condition folds to
/// FALSE produces no rows.
pub struct JoinReduceExpressionsRule;

impl Rule for JoinReduceExpressionsRule {
    fn name(&self) -> &str {
        "JoinReduceExpressionsRule"
    }

    fn pattern(&self) -> Pattern {
        Pattern::of(RelKind::Join)
    }

    fn on_match(&self, call: &mut RuleCall) {
        let j = call.rel(0);
        if let RelOp::Join { kind, condition } = &j.op {
            let s = simplify(condition);
            if s.is_always_false() && matches!(kind, JoinKind::Inner | JoinKind::Semi) {
                call.transform_to(rel::empty(j.row_type().clone()));
            } else if s.digest() != condition.digest() {
                call.transform_to(rel::join(j.input(0).clone(), j.input(1).clone(), *kind, s));
            }
        }
    }
}

fn is_empty_values(rel_: &Rel) -> bool {
    matches!(&rel_.op, RelOp::Values { tuples, .. } if tuples.is_empty())
}

/// Propagates empty inputs upward: `Filter(∅) = ∅`, `∅ ⋈ R = ∅` (inner),
/// `Union(∅, R) = R`, and so on. Global aggregates are exempt — they
/// produce one row even on empty input.
pub struct PruneEmptyRule;

impl Rule for PruneEmptyRule {
    fn name(&self) -> &str {
        "PruneEmptyRule"
    }

    fn pattern(&self) -> Pattern {
        Pattern::any()
    }

    fn on_match(&self, call: &mut RuleCall) {
        let n = call.rel(0);
        if n.inputs.is_empty() || !n.inputs.iter().any(is_empty_values) {
            return;
        }
        let empty = || rel::empty(n.row_type().clone());
        match &n.op {
            RelOp::Filter { .. }
            | RelOp::Project { .. }
            | RelOp::Sort { .. }
            | RelOp::Window { .. }
            | RelOp::Delta => call.transform_to(empty()),
            RelOp::Aggregate { group, .. }
                // GROUP BY of nothing over nothing is one row; grouped
                // aggregation over nothing is nothing.
                if !group.is_empty() => {
                    call.transform_to(empty());
                }
            RelOp::Join { kind, .. } => {
                let left_empty = is_empty_values(n.input(0));
                let right_empty = is_empty_values(n.input(1));
                let prunable = match kind {
                    JoinKind::Inner | JoinKind::Semi => left_empty || right_empty,
                    JoinKind::Left | JoinKind::Anti => left_empty,
                    JoinKind::Right => right_empty,
                    JoinKind::Full => left_empty && right_empty,
                };
                if prunable {
                    call.transform_to(empty());
                }
            }
            RelOp::Union { all } => {
                let remaining: Vec<Rel> = n
                    .inputs
                    .iter()
                    .filter(|i| !is_empty_values(i))
                    .cloned()
                    .collect();
                match remaining.len() {
                    0 => call.transform_to(empty()),
                    1 if *all => call.transform_to(remaining.into_iter().next().unwrap()),
                    _ if remaining.len() < n.inputs.len() => {
                        call.transform_to(rel::union(remaining, *all))
                    }
                    _ => {}
                }
            }
            RelOp::Intersect { .. } => call.transform_to(empty()),
            RelOp::Minus { .. }
                if is_empty_values(n.input(0)) => {
                    call.transform_to(empty());
                }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemTable, TableRef};
    use crate::metadata::MetadataQuery;
    use crate::rex::{Op, RexNode};
    use crate::types::{RelType, RowTypeBuilder, TypeKind};

    fn int_ty() -> RelType {
        RelType::not_null(TypeKind::Integer)
    }

    fn table() -> Rel {
        let t = MemTable::new(
            RowTypeBuilder::new()
                .add_not_null("a", TypeKind::Integer)
                .build(),
            vec![],
        );
        rel::scan(TableRef::new("s", "t", t))
    }

    fn fire(rule: &dyn Rule, root: &Rel) -> Vec<Rel> {
        let mq = MetadataQuery::standard();
        match rule.pattern().match_tree(root) {
            Some(binds) => {
                let mut call = RuleCall::new(binds, &mq);
                rule.on_match(&mut call);
                call.into_results()
            }
            None => vec![],
        }
    }

    #[test]
    fn false_filter_becomes_empty_values() {
        // a > 1 AND FALSE
        let f = rel::filter(
            table(),
            RexNode::and_all(vec![
                RexNode::input(0, int_ty()).gt(RexNode::lit_int(1)),
                RexNode::false_lit(),
            ]),
        );
        let new = fire(&ReduceExpressionsRule, &f).pop().unwrap();
        assert!(is_empty_values(&new));
        assert_eq!(new.row_type(), f.row_type());
    }

    #[test]
    fn constant_true_filter_vanishes() {
        let f = rel::filter(table(), RexNode::lit_int(1).eq(RexNode::lit_int(1)));
        let new = fire(&ReduceExpressionsRule, &f).pop().unwrap();
        assert_eq!(new.kind(), RelKind::Scan);
    }

    #[test]
    fn project_constants_folded() {
        let p = rel::project(
            table(),
            vec![RexNode::call(
                Op::Plus,
                vec![RexNode::lit_int(1), RexNode::lit_int(2)],
            )],
            vec!["x".into()],
        );
        let new = fire(&ProjectReduceExpressionsRule, &p).pop().unwrap();
        if let RelOp::Project { exprs, .. } = &new.op {
            assert_eq!(exprs[0], RexNode::lit_int(3));
        } else {
            panic!();
        }
    }

    #[test]
    fn join_false_condition_pruned() {
        let j = rel::join(
            table(),
            table(),
            JoinKind::Inner,
            RexNode::and_all(vec![RexNode::false_lit(), RexNode::true_lit()]),
        );
        let new = fire(&JoinReduceExpressionsRule, &j).pop().unwrap();
        assert!(is_empty_values(&new));
    }

    #[test]
    fn empty_propagates_through_filter_and_inner_join() {
        let e = rel::empty(table().row_type().clone());
        let f = rel::filter(
            e.clone(),
            RexNode::input(0, int_ty()).gt(RexNode::lit_int(0)),
        );
        assert!(is_empty_values(&fire(&PruneEmptyRule, &f).pop().unwrap()));

        let j = rel::join(e.clone(), table(), JoinKind::Inner, RexNode::true_lit());
        assert!(is_empty_values(&fire(&PruneEmptyRule, &j).pop().unwrap()));

        // Right join with empty LEFT is NOT prunable (right rows survive).
        let j2 = rel::join(e, table(), JoinKind::Right, RexNode::true_lit());
        assert!(fire(&PruneEmptyRule, &j2).is_empty());
    }

    #[test]
    fn global_aggregate_over_empty_not_pruned() {
        let e = rel::empty(table().row_type().clone());
        let agg = rel::aggregate(
            e.clone(),
            vec![],
            vec![crate::rel::AggCall::count_star("c")],
        );
        assert!(fire(&PruneEmptyRule, &agg).is_empty());
        // Grouped aggregate over empty IS pruned.
        let agg2 = rel::aggregate(e, vec![0], vec![]);
        assert!(is_empty_values(
            &fire(&PruneEmptyRule, &agg2).pop().unwrap()
        ));
    }

    #[test]
    fn union_drops_empty_inputs() {
        let e = rel::empty(table().row_type().clone());
        let u = rel::union(vec![table(), e], true);
        let new = fire(&PruneEmptyRule, &u).pop().unwrap();
        assert_eq!(new.kind(), RelKind::Scan);
    }
}
