//! Projection rules.

use crate::rel::{self, RelKind, RelOp};
use crate::rules::{Pattern, Rule, RuleCall};

/// `Project(Project)` → a single project with composed expressions.
pub struct ProjectMergeRule;

impl Rule for ProjectMergeRule {
    fn name(&self) -> &str {
        "ProjectMergeRule"
    }

    fn pattern(&self) -> Pattern {
        Pattern::with_children(RelKind::Project, vec![Pattern::of(RelKind::Project)])
    }

    fn on_match(&self, call: &mut RuleCall) {
        let (top, bottom) = (call.rel(0), call.rel(1));
        if let (
            RelOp::Project {
                exprs: top_exprs,
                names,
            },
            RelOp::Project {
                exprs: bot_exprs, ..
            },
        ) = (&top.op, &bottom.op)
        {
            let composed = top_exprs.iter().map(|e| e.substitute(bot_exprs)).collect();
            call.transform_to(rel::project(
                bottom.input(0).clone(),
                composed,
                names.clone(),
            ));
        }
    }
}

/// Removes identity projections (`$0, $1, ... $n-1` with unchanged names).
/// Name equality is required so rename-only projections survive: they
/// define the query's output schema.
pub struct ProjectRemoveRule;

impl Rule for ProjectRemoveRule {
    fn name(&self) -> &str {
        "ProjectRemoveRule"
    }

    fn pattern(&self) -> Pattern {
        Pattern::of(RelKind::Project)
    }

    fn on_match(&self, call: &mut RuleCall) {
        let proj = call.rel(0);
        if let RelOp::Project { exprs, names } = &proj.op {
            let input = proj.input(0);
            let input_rt = input.row_type();
            if exprs.len() != input_rt.arity() {
                return;
            }
            let identity = exprs
                .iter()
                .enumerate()
                .all(|(i, e)| e.as_input_ref() == Some(i))
                && names
                    .iter()
                    .zip(input_rt.fields.iter())
                    .all(|(n, f)| n.eq_ignore_ascii_case(&f.name));
            if identity {
                call.transform_to(input.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemTable, TableRef};
    use crate::metadata::MetadataQuery;
    use crate::rel::Rel;
    use crate::rex::{Op, RexNode};
    use crate::types::{RelType, RowTypeBuilder, TypeKind};

    fn int_ty() -> RelType {
        RelType::not_null(TypeKind::Integer)
    }

    fn table(cols: &[&str]) -> Rel {
        let mut b = RowTypeBuilder::new();
        for c in cols {
            b = b.add_not_null(*c, TypeKind::Integer);
        }
        rel::scan(TableRef::new("s", "t", MemTable::new(b.build(), vec![])))
    }

    fn fire(rule: &dyn Rule, root: &Rel) -> Vec<Rel> {
        let mq = MetadataQuery::standard();
        match rule.pattern().match_tree(root) {
            Some(binds) => {
                let mut call = RuleCall::new(binds, &mq);
                rule.on_match(&mut call);
                call.into_results()
            }
            None => vec![],
        }
    }

    #[test]
    fn project_merge_composes_expressions() {
        let t = table(&["a", "b"]);
        // bottom: x = a + 1 ; top: y = x * 2  =>  y = (a + 1) * 2
        let bottom = rel::project(
            t,
            vec![RexNode::call(
                Op::Plus,
                vec![RexNode::input(0, int_ty()), RexNode::lit_int(1)],
            )],
            vec!["x".into()],
        );
        let top = rel::project(
            bottom,
            vec![RexNode::call(
                Op::Times,
                vec![RexNode::input(0, int_ty()), RexNode::lit_int(2)],
            )],
            vec!["y".into()],
        );
        let new = fire(&ProjectMergeRule, &top).pop().unwrap();
        assert_eq!(new.kind(), RelKind::Project);
        assert_eq!(new.input(0).kind(), RelKind::Scan);
        if let RelOp::Project { exprs, .. } = &new.op {
            assert_eq!(exprs[0].digest(), "(($0 + 1) * 2)");
        }
        assert_eq!(new.row_type().field(0).name, "y");
    }

    #[test]
    fn identity_project_removed() {
        let t = table(&["a", "b"]);
        let p = rel::project(
            t.clone(),
            vec![RexNode::input(0, int_ty()), RexNode::input(1, int_ty())],
            vec!["a".into(), "b".into()],
        );
        let new = fire(&ProjectRemoveRule, &p).pop().unwrap();
        assert_eq!(new.digest(), t.digest());
    }

    #[test]
    fn rename_project_is_kept() {
        let t = table(&["a", "b"]);
        let p = rel::project(
            t,
            vec![RexNode::input(0, int_ty()), RexNode::input(1, int_ty())],
            vec!["x".into(), "y".into()],
        );
        assert!(fire(&ProjectRemoveRule, &p).is_empty());
    }

    #[test]
    fn permutation_project_is_kept() {
        let t = table(&["a", "b"]);
        let p = rel::project(
            t,
            vec![RexNode::input(1, int_ty()), RexNode::input(0, int_ty())],
            vec!["b".into(), "a".into()],
        );
        assert!(fire(&ProjectRemoveRule, &p).is_empty());
    }

    #[test]
    fn narrowing_project_is_kept() {
        let t = table(&["a", "b"]);
        let p = rel::project(t, vec![RexNode::input(0, int_ty())], vec!["a".into()]);
        assert!(fire(&ProjectRemoveRule, &p).is_empty());
    }
}
