//! Planner rules (paper §6): "a rule matches a given pattern in the tree
//! and executes a transformation that preserves semantics of that
//! expression". Rules are pluggable — adapters and host systems register
//! their own alongside the built-ins.

mod agg_rules;
mod filter_rules;
mod index_rules;
mod join_rules;
mod project_rules;
mod prune_rules;
mod sort_rules;

pub use agg_rules::{AggregateProjectMergeRule, AggregateRemoveRule};
pub use filter_rules::{
    FilterAggregateTransposeRule, FilterIntoJoinRule, FilterMergeRule, FilterProjectTransposeRule,
    FilterSortTransposeRule, FilterUnionTransposeRule,
};
pub use index_rules::{FilterToIndexSeekRule, JoinToIndexLoopRule, ProjectToIndexOnlyRule};
pub use join_rules::{JoinAssociateRule, JoinCommuteRule};
pub use project_rules::{ProjectMergeRule, ProjectRemoveRule};
pub use prune_rules::{
    JoinReduceExpressionsRule, ProjectReduceExpressionsRule, PruneEmptyRule, ReduceExpressionsRule,
};
pub use sort_rules::{SortMergeRule, SortProjectTransposeRule, SortRemoveRule};

use crate::metadata::MetadataQuery;
use crate::rel::{Rel, RelKind};
use crate::traits::Convention;
use std::sync::Arc;

/// Matches one node of a pattern.
#[derive(Debug, Clone)]
pub enum NodeMatcher {
    /// Any operator.
    Any,
    /// A specific operator kind in any convention.
    Kind(RelKind),
    /// A specific operator kind in a specific convention.
    KindConv(RelKind, Convention),
}

impl NodeMatcher {
    fn matches(&self, rel: &Rel) -> bool {
        match self {
            NodeMatcher::Any => true,
            NodeMatcher::Kind(k) => rel.kind() == *k,
            NodeMatcher::KindConv(k, c) => rel.kind() == *k && rel.convention == *c,
        }
    }
}

/// Child requirements of a pattern node.
#[derive(Debug, Clone)]
pub enum Children {
    /// Children are unconstrained and unbound.
    Any,
    /// Exactly these child patterns, in order.
    Are(Vec<Pattern>),
}

/// A tree pattern over relational operators.
#[derive(Debug, Clone)]
pub struct Pattern {
    pub matcher: NodeMatcher,
    pub children: Children,
}

impl Pattern {
    /// A node of `kind` with unconstrained children.
    pub fn of(kind: RelKind) -> Pattern {
        Pattern {
            matcher: NodeMatcher::Kind(kind),
            children: Children::Any,
        }
    }

    /// A node of `kind` whose children match `children` in order.
    pub fn with_children(kind: RelKind, children: Vec<Pattern>) -> Pattern {
        Pattern {
            matcher: NodeMatcher::Kind(kind),
            children: Children::Are(children),
        }
    }

    /// A node of `kind` in `convention`.
    pub fn of_conv(kind: RelKind, convention: Convention) -> Pattern {
        Pattern {
            matcher: NodeMatcher::KindConv(kind, convention),
            children: Children::Any,
        }
    }

    pub fn any() -> Pattern {
        Pattern {
            matcher: NodeMatcher::Any,
            children: Children::Any,
        }
    }

    /// Matches the pattern against a concrete tree, returning the bound
    /// nodes in pre-order (root first), or `None`.
    pub fn match_tree(&self, rel: &Rel) -> Option<Vec<Rel>> {
        let mut binds = vec![];
        if self.collect(rel, &mut binds) {
            Some(binds)
        } else {
            None
        }
    }

    fn collect(&self, rel: &Rel, binds: &mut Vec<Rel>) -> bool {
        if !self.matcher.matches(rel) {
            return false;
        }
        binds.push(rel.clone());
        match &self.children {
            Children::Any => true,
            Children::Are(pats) => {
                if pats.len() != rel.inputs.len() {
                    return false;
                }
                for (p, c) in pats.iter().zip(rel.inputs.iter()) {
                    if !p.collect(c, binds) {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Depth of the pattern (1 for a single node).
    pub fn depth(&self) -> usize {
        match &self.children {
            Children::Any => 1,
            Children::Are(pats) => 1 + pats.iter().map(|p| p.depth()).max().unwrap_or(0),
        }
    }
}

/// The context handed to a firing rule: the matched nodes (pre-order) and
/// a place to register transformed expressions.
pub struct RuleCall<'a> {
    rels: Vec<Rel>,
    pub mq: &'a MetadataQuery,
    results: Vec<Rel>,
}

impl<'a> RuleCall<'a> {
    pub fn new(rels: Vec<Rel>, mq: &'a MetadataQuery) -> RuleCall<'a> {
        RuleCall {
            rels,
            mq,
            results: vec![],
        }
    }

    /// The `i`th bound node (0 is the pattern root).
    pub fn rel(&self, i: usize) -> &Rel {
        &self.rels[i]
    }

    pub fn rels(&self) -> &[Rel] {
        &self.rels
    }

    /// Registers an equivalent expression for the pattern root.
    pub fn transform_to(&mut self, rel: Rel) {
        self.results.push(rel);
    }

    pub fn into_results(self) -> Vec<Rel> {
        self.results
    }

    pub fn has_results(&self) -> bool {
        !self.results.is_empty()
    }
}

/// A planner rule.
pub trait Rule: Send + Sync {
    fn name(&self) -> &str;

    fn pattern(&self) -> Pattern;

    /// Fired when the pattern matches; registers alternatives through
    /// [`RuleCall::transform_to`].
    fn on_match(&self, call: &mut RuleCall);
}

/// The built-in logical rule battery: safe to run to fixpoint in the
/// heuristic planner (no exploration rules like join commute, which would
/// loop).
pub fn default_logical_rules() -> Vec<Arc<dyn Rule>> {
    vec![
        Arc::new(ReduceExpressionsRule),
        Arc::new(ProjectReduceExpressionsRule),
        Arc::new(JoinReduceExpressionsRule),
        Arc::new(FilterMergeRule),
        Arc::new(FilterIntoJoinRule),
        Arc::new(FilterProjectTransposeRule),
        Arc::new(FilterAggregateTransposeRule),
        Arc::new(FilterUnionTransposeRule),
        Arc::new(FilterSortTransposeRule),
        Arc::new(ProjectMergeRule),
        Arc::new(ProjectRemoveRule),
        Arc::new(AggregateProjectMergeRule),
        Arc::new(AggregateRemoveRule),
        Arc::new(SortRemoveRule),
        Arc::new(SortMergeRule),
        Arc::new(SortProjectTransposeRule),
        Arc::new(PruneEmptyRule),
    ]
}

/// Exploration rules for the cost-based planner: enumerate the join-order
/// search space.
pub fn join_exploration_rules() -> Vec<Arc<dyn Rule>> {
    vec![Arc::new(JoinCommuteRule), Arc::new(JoinAssociateRule)]
}

/// Index access-path rules. Cost-based alternatives only — they register
/// a seek *next to* the scan and let the Volcano extractor pick, so they
/// must never run in the heuristic (forced-rewrite) phase.
pub fn index_access_rules() -> Vec<Arc<dyn Rule>> {
    vec![
        Arc::new(FilterToIndexSeekRule),
        Arc::new(ProjectToIndexOnlyRule),
        Arc::new(JoinToIndexLoopRule),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemTable, TableRef};
    use crate::rel::{self, JoinKind};
    use crate::rex::RexNode;
    use crate::types::{RelType, RowTypeBuilder, TypeKind};

    fn scan() -> Rel {
        let t = MemTable::new(
            RowTypeBuilder::new()
                .add_not_null("a", TypeKind::Integer)
                .build(),
            vec![],
        );
        rel::scan(TableRef::new("s", "t", t))
    }

    #[test]
    fn single_node_pattern() {
        let p = Pattern::of(RelKind::Scan);
        let s = scan();
        let binds = p.match_tree(&s).unwrap();
        assert_eq!(binds.len(), 1);
        assert!(p
            .match_tree(&rel::filter(
                s,
                RexNode::input(0, RelType::not_null(TypeKind::Integer)).gt(RexNode::lit_int(1))
            ))
            .is_none());
    }

    #[test]
    fn two_level_pattern_binds_preorder() {
        let p = Pattern::with_children(RelKind::Filter, vec![Pattern::of(RelKind::Join)]);
        let j = rel::join(scan(), scan(), JoinKind::Inner, RexNode::true_lit());
        let f = rel::filter(
            j.clone(),
            RexNode::input(0, RelType::not_null(TypeKind::Integer)).gt(RexNode::lit_int(1)),
        );
        let binds = p.match_tree(&f).unwrap();
        assert_eq!(binds.len(), 2);
        assert_eq!(binds[0].kind(), RelKind::Filter);
        assert_eq!(binds[1].kind(), RelKind::Join);
        // Filter over scan does not match.
        let f2 = rel::filter(
            scan(),
            RexNode::input(0, RelType::not_null(TypeKind::Integer)).gt(RexNode::lit_int(1)),
        );
        assert!(p.match_tree(&f2).is_none());
    }

    #[test]
    fn convention_pattern() {
        let p = Pattern::of_conv(RelKind::Scan, Convention::none());
        assert!(p.match_tree(&scan()).is_some());
        let phys = scan().with_convention(Convention::enumerable());
        assert!(p.match_tree(&phys).is_none());
    }

    #[test]
    fn pattern_depth() {
        assert_eq!(Pattern::of(RelKind::Scan).depth(), 1);
        let p = Pattern::with_children(
            RelKind::Filter,
            vec![Pattern::with_children(
                RelKind::Join,
                vec![Pattern::any(), Pattern::any()],
            )],
        );
        assert_eq!(p.depth(), 3);
    }

    #[test]
    fn default_rule_set_is_nonempty_and_named() {
        let rules = default_logical_rules();
        assert!(rules.len() >= 12);
        let mut names: Vec<&str> = rules.iter().map(|r| r.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), rules.len(), "rule names must be unique");
    }
}
