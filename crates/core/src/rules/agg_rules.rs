//! Aggregate rules.

use crate::rel::{self, AggCall, RelKind, RelOp};
use crate::rex::RexNode;
use crate::rules::{Pattern, Rule, RuleCall};

/// `Aggregate(Project)` where group keys and aggregate arguments all map
/// to plain column references → aggregate directly over the project's
/// input. A rename projection is added on top when field names change.
pub struct AggregateProjectMergeRule;

impl Rule for AggregateProjectMergeRule {
    fn name(&self) -> &str {
        "AggregateProjectMergeRule"
    }

    fn pattern(&self) -> Pattern {
        Pattern::with_children(RelKind::Aggregate, vec![Pattern::of(RelKind::Project)])
    }

    fn on_match(&self, call: &mut RuleCall) {
        let (agg, proj) = (call.rel(0), call.rel(1));
        let (group, aggs) = match &agg.op {
            RelOp::Aggregate { group, aggs } => (group.clone(), aggs.clone()),
            _ => return,
        };
        let exprs = match &proj.op {
            RelOp::Project { exprs, .. } => exprs.clone(),
            _ => return,
        };
        // Every column the aggregate touches must be a bare reference in
        // the projection.
        let map_col = |i: usize| exprs.get(i).and_then(|e| e.as_input_ref());
        let new_group: Option<Vec<usize>> = group.iter().map(|g| map_col(*g)).collect();
        let Some(new_group) = new_group else { return };
        let mut new_aggs = Vec::with_capacity(aggs.len());
        for a in &aggs {
            let args: Option<Vec<usize>> = a.args.iter().map(|i| map_col(*i)).collect();
            let Some(args) = args else { return };
            new_aggs.push(AggCall {
                func: a.func,
                args,
                distinct: a.distinct,
                name: a.name.clone(),
                ty: a.ty.clone(),
            });
        }
        let input = proj.input(0).clone();
        let new_agg = rel::aggregate(input, new_group, new_aggs);

        // Preserve output field names via a rename projection if needed.
        let old_rt = agg.row_type();
        let new_rt = new_agg.row_type();
        if old_rt
            .fields
            .iter()
            .zip(new_rt.fields.iter())
            .all(|(a, b)| a.name == b.name)
        {
            call.transform_to(new_agg);
        } else {
            let exprs: Vec<RexNode> = new_rt
                .fields
                .iter()
                .enumerate()
                .map(|(i, f)| RexNode::input(i, f.ty.clone()))
                .collect();
            let names = old_rt.fields.iter().map(|f| f.name.clone()).collect();
            call.transform_to(rel::project(new_agg, exprs, names));
        }
    }
}

/// Removes an aggregate whose group keys are already unique on its input
/// and which computes no aggregate functions: it is a duplicate-free
/// projection of the keys.
pub struct AggregateRemoveRule;

impl Rule for AggregateRemoveRule {
    fn name(&self) -> &str {
        "AggregateRemoveRule"
    }

    fn pattern(&self) -> Pattern {
        Pattern::of(RelKind::Aggregate)
    }

    fn on_match(&self, call: &mut RuleCall) {
        let agg = call.rel(0);
        let (group, aggs) = match &agg.op {
            RelOp::Aggregate { group, aggs } => (group.clone(), aggs),
            _ => return,
        };
        if !aggs.is_empty() || group.is_empty() {
            return;
        }
        let input = agg.input(0);
        if !call.mq.are_columns_unique(input, &group) {
            return;
        }
        let rt = input.row_type();
        let exprs: Vec<RexNode> = group
            .iter()
            .map(|g| RexNode::input(*g, rt.field(*g).ty.clone()))
            .collect();
        let names = group.iter().map(|g| rt.field(*g).name.clone()).collect();
        call.transform_to(rel::project(input.clone(), exprs, names));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemTable, Statistic, TableRef};
    use crate::metadata::MetadataQuery;
    use crate::rel::{AggFunc, Rel};
    use crate::types::{RelType, RowTypeBuilder, TypeKind};

    fn int_ty() -> RelType {
        RelType::not_null(TypeKind::Integer)
    }

    fn fire(rule: &dyn Rule, root: &Rel) -> Vec<Rel> {
        let mq = MetadataQuery::standard();
        match rule.pattern().match_tree(root) {
            Some(binds) => {
                let mut call = RuleCall::new(binds, &mq);
                rule.on_match(&mut call);
                call.into_results()
            }
            None => vec![],
        }
    }

    fn keyed_table() -> Rel {
        let t = MemTable::new(
            RowTypeBuilder::new()
                .add_not_null("id", TypeKind::Integer)
                .add_not_null("v", TypeKind::Integer)
                .build(),
            vec![],
        )
        .with_statistic(Statistic::of_rows(100.0).with_key(vec![0]));
        rel::scan(TableRef::new("s", "t", t))
    }

    #[test]
    fn aggregate_project_merge_maps_columns() {
        let t = keyed_table();
        // Project (v, id); aggregate group by position 0 (=v), sum position 1 (=id).
        let p = rel::project(
            t,
            vec![RexNode::input(1, int_ty()), RexNode::input(0, int_ty())],
            vec!["v".into(), "id".into()],
        );
        let rt = p.row_type().clone();
        let agg = rel::aggregate(
            p,
            vec![0],
            vec![AggCall::new(AggFunc::Sum, vec![1], false, "s", &rt)],
        );
        let new = fire(&AggregateProjectMergeRule, &agg).pop().unwrap();
        // The project is gone; the aggregate addresses the scan directly.
        assert_eq!(new.kind(), RelKind::Aggregate);
        assert_eq!(new.input(0).kind(), RelKind::Scan);
        if let RelOp::Aggregate { group, aggs } = &new.op {
            assert_eq!(group, &vec![1]);
            assert_eq!(aggs[0].args, vec![0]);
        }
        assert_eq!(new.row_type().field_names(), agg.row_type().field_names());
    }

    #[test]
    fn aggregate_project_merge_refuses_computed_columns() {
        let t = keyed_table();
        let p = rel::project(
            t,
            vec![RexNode::call(
                crate::rex::Op::Plus,
                vec![RexNode::input(0, int_ty()), RexNode::lit_int(1)],
            )],
            vec!["x".into()],
        );
        let agg = rel::aggregate(p, vec![0], vec![]);
        assert!(fire(&AggregateProjectMergeRule, &agg).is_empty());
    }

    #[test]
    fn aggregate_remove_on_unique_key() {
        let t = keyed_table();
        let agg = rel::aggregate(t, vec![0], vec![]);
        let new = fire(&AggregateRemoveRule, &agg).pop().unwrap();
        assert_eq!(new.kind(), RelKind::Project);
        assert_eq!(new.row_type().field_names(), vec!["id"]);
    }

    #[test]
    fn aggregate_remove_requires_uniqueness() {
        let t = keyed_table();
        // Group on the non-key column: must not fire.
        let agg = rel::aggregate(t, vec![1], vec![]);
        assert!(fire(&AggregateRemoveRule, &agg).is_empty());
    }

    #[test]
    fn aggregate_remove_keeps_real_aggregates() {
        let t = keyed_table();
        let rt = t.row_type().clone();
        let agg = rel::aggregate(
            t,
            vec![0],
            vec![AggCall::new(AggFunc::Sum, vec![1], false, "s", &rt)],
        );
        assert!(fire(&AggregateRemoveRule, &agg).is_empty());
    }

    #[test]
    fn aggregate_remove_keeps_global_aggregate() {
        let t = keyed_table();
        let agg = rel::aggregate(t, vec![], vec![]);
        assert!(fire(&AggregateRemoveRule, &agg).is_empty());
    }
}
