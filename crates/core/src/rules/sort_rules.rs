//! Sort rules. `SortRemoveRule` reproduces the paper's §4 trait example:
//! "if the input to the sort operator is already correctly ordered ...
//! then the sort operation can be removed".

use crate::rel::{self, RelKind, RelOp};
use crate::rules::{Pattern, Rule, RuleCall};
use crate::traits::collation_satisfies;

/// Removes a Sort whose required ordering is already satisfied by its
/// input (and which applies no OFFSET/FETCH).
pub struct SortRemoveRule;

impl Rule for SortRemoveRule {
    fn name(&self) -> &str {
        "SortRemoveRule"
    }

    fn pattern(&self) -> Pattern {
        Pattern::of(RelKind::Sort)
    }

    fn on_match(&self, call: &mut RuleCall) {
        let sort_node = call.rel(0);
        if let RelOp::Sort {
            collation,
            offset: None,
            fetch: None,
        } = &sort_node.op
        {
            if collation.is_empty() {
                call.transform_to(sort_node.input(0).clone());
                return;
            }
            let input = sort_node.input(0);
            let satisfied = call
                .mq
                .collations(input)
                .iter()
                .any(|actual| collation_satisfies(actual, collation));
            if satisfied {
                call.transform_to(input.clone());
            }
        }
    }
}

/// Merges a pure limit over a sort into a single Sort-with-fetch node
/// (Top-K), and merges adjacent limits.
pub struct SortMergeRule;

impl Rule for SortMergeRule {
    fn name(&self) -> &str {
        "SortMergeRule"
    }

    fn pattern(&self) -> Pattern {
        Pattern::with_children(RelKind::Sort, vec![Pattern::of(RelKind::Sort)])
    }

    fn on_match(&self, call: &mut RuleCall) {
        let (top, bottom) = (call.rel(0), call.rel(1));
        let (
            RelOp::Sort {
                collation: c_top,
                offset: o_top,
                fetch: f_top,
            },
            RelOp::Sort {
                collation: c_bot,
                offset: o_bot,
                fetch: f_bot,
            },
        ) = (&top.op, &bottom.op)
        else {
            return;
        };
        // Case 1: pure limit over a sort → Top-K.
        if c_top.is_empty() && o_bot.is_none() && f_bot.is_none() {
            call.transform_to(rel::sort_limit(
                bottom.input(0).clone(),
                c_bot.clone(),
                *o_top,
                *f_top,
            ));
            return;
        }
        // Case 2: limit over limit → combined offsets, min fetch.
        if c_top.is_empty() && c_bot.is_empty() {
            let o1 = o_top.unwrap_or(0);
            let o2 = o_bot.unwrap_or(0);
            let fetch = match (f_top, f_bot) {
                (Some(f1), Some(f2)) => Some((*f1).min(f2.saturating_sub(o1))),
                (Some(f1), None) => Some(*f1),
                (None, Some(f2)) => Some(f2.saturating_sub(o1)),
                (None, None) => None,
            };
            let offset = if o1 + o2 == 0 { None } else { Some(o1 + o2) };
            call.transform_to(rel::sort_limit(
                bottom.input(0).clone(),
                vec![],
                offset,
                fetch,
            ));
        }
    }
}

/// `Sort(Project)` → `Project(Sort)` when every projected expression is a
/// bare column reference, remapping the collation through the projection.
/// Normalizes plans so sorts sit directly on filters/scans, where adapter
/// sort-pushdown rules (e.g. `CassandraSortRule`) can see them.
pub struct SortProjectTransposeRule;

impl Rule for SortProjectTransposeRule {
    fn name(&self) -> &str {
        "SortProjectTransposeRule"
    }

    fn pattern(&self) -> Pattern {
        Pattern::with_children(RelKind::Sort, vec![Pattern::of(RelKind::Project)])
    }

    fn on_match(&self, call: &mut RuleCall) {
        let (sort_node, proj) = (call.rel(0), call.rel(1));
        let RelOp::Sort {
            collation,
            offset,
            fetch,
        } = &sort_node.op
        else {
            return;
        };
        let RelOp::Project { exprs, names } = &proj.op else {
            return;
        };
        // Every collation key must map to a bare input reference.
        let mut mapped = Vec::with_capacity(collation.len());
        for fc in collation {
            match exprs.get(fc.field).and_then(|e| e.as_input_ref()) {
                Some(src) => mapped.push(crate::traits::FieldCollation {
                    field: src,
                    descending: fc.descending,
                    nulls_first: fc.nulls_first,
                }),
                None => return,
            }
        }
        let sorted = rel::sort_limit(proj.input(0).clone(), mapped, *offset, *fetch);
        call.transform_to(rel::project(sorted, exprs.clone(), names.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemTable, Statistic, TableRef};
    use crate::metadata::MetadataQuery;
    use crate::rel::Rel;
    use crate::traits::FieldCollation;
    use crate::types::{RowTypeBuilder, TypeKind};

    fn fire(rule: &dyn Rule, root: &Rel) -> Vec<Rel> {
        let mq = MetadataQuery::standard();
        match rule.pattern().match_tree(root) {
            Some(binds) => {
                let mut call = RuleCall::new(binds, &mq);
                rule.on_match(&mut call);
                call.into_results()
            }
            None => vec![],
        }
    }

    fn sorted_table() -> Rel {
        // Physically sorted by column 0, as a backend index would be.
        let t = MemTable::new(
            RowTypeBuilder::new()
                .add_not_null("k", TypeKind::Integer)
                .add("v", TypeKind::Integer)
                .build(),
            vec![],
        )
        .with_statistic(Statistic::of_rows(100.0).with_collation(vec![FieldCollation::asc(0)]));
        rel::scan(TableRef::new("s", "t", t))
    }

    #[test]
    fn sort_removed_when_input_presorted() {
        let t = sorted_table();
        let s = rel::sort(t.clone(), vec![FieldCollation::asc(0)]);
        let new = fire(&SortRemoveRule, &s).pop().unwrap();
        assert_eq!(new.digest(), t.digest());
    }

    #[test]
    fn sort_kept_when_direction_differs() {
        let t = sorted_table();
        let s = rel::sort(t, vec![FieldCollation::desc(0)]);
        assert!(fire(&SortRemoveRule, &s).is_empty());
    }

    #[test]
    fn sort_kept_when_limit_present() {
        let t = sorted_table();
        let s = rel::sort_limit(t, vec![FieldCollation::asc(0)], None, Some(5));
        assert!(fire(&SortRemoveRule, &s).is_empty());
    }

    #[test]
    fn sort_survives_through_filter() {
        // Collation propagates through Filter in metadata, so the sort is
        // still removable above a filter.
        let t = sorted_table();
        let f = rel::filter(
            t,
            crate::rex::RexNode::input(1, crate::types::RelType::nullable(TypeKind::Integer))
                .is_not_null(),
        );
        let s = rel::sort(f.clone(), vec![FieldCollation::asc(0)]);
        let new = fire(&SortRemoveRule, &s).pop().unwrap();
        assert_eq!(new.digest(), f.digest());
    }

    #[test]
    fn limit_over_sort_becomes_topk() {
        let t = sorted_table();
        let s = rel::sort(t, vec![FieldCollation::desc(1)]);
        let lim = rel::sort_limit(s, vec![], None, Some(10));
        let new = fire(&SortMergeRule, &lim).pop().unwrap();
        if let RelOp::Sort {
            collation, fetch, ..
        } = &new.op
        {
            assert_eq!(collation.len(), 1);
            assert_eq!(*fetch, Some(10));
        } else {
            panic!();
        }
        assert_eq!(new.input(0).kind(), RelKind::Scan);
    }

    #[test]
    fn limit_over_limit_merges() {
        let t = sorted_table();
        let l1 = rel::sort_limit(t, vec![], Some(5), Some(20));
        let l2 = rel::sort_limit(l1, vec![], Some(2), Some(10));
        let new = fire(&SortMergeRule, &l2).pop().unwrap();
        if let RelOp::Sort { offset, fetch, .. } = &new.op {
            assert_eq!(*offset, Some(7));
            assert_eq!(*fetch, Some(10));
        } else {
            panic!();
        }
    }
}
