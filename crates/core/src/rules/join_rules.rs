//! Join exploration rules for the cost-based planner. These generate
//! alternative join orders; the "dynamic programming approach" of the
//! Volcano engine (§6) picks the cheapest — the capability the paper
//! contrasts against Catalyst's greedy search.

use crate::rel::{self, JoinKind, RelKind, RelOp};
use crate::rex::RexNode;
use crate::rules::{Pattern, Rule, RuleCall};

/// `A ⋈ B` → `Project(B ⋈ A)` for inner joins; the projection restores the
/// original column order.
pub struct JoinCommuteRule;

impl Rule for JoinCommuteRule {
    fn name(&self) -> &str {
        "JoinCommuteRule"
    }

    fn pattern(&self) -> Pattern {
        Pattern::of(RelKind::Join)
    }

    fn on_match(&self, call: &mut RuleCall) {
        let join_node = call.rel(0);
        let (kind, condition) = match &join_node.op {
            RelOp::Join { kind, condition } => (*kind, condition.clone()),
            _ => return,
        };
        if kind != JoinKind::Inner {
            return;
        }
        let left = join_node.input(0).clone();
        let right = join_node.input(1).clone();
        let l_arity = left.row_type().arity();
        let r_arity = right.row_type().arity();

        // Old coordinate i: left if i < l_arity (new position r_arity + i),
        // right otherwise (new position i - l_arity).
        let new_cond = condition.map_input_refs(&|i| {
            if i < l_arity {
                r_arity + i
            } else {
                i - l_arity
            }
        });
        let swapped = rel::join(right, left, kind, new_cond);

        // Restore original column order with a projection.
        let rt = join_node.row_type();
        let mut exprs = Vec::with_capacity(l_arity + r_arity);
        let mut names = Vec::with_capacity(l_arity + r_arity);
        for i in 0..l_arity {
            exprs.push(RexNode::input(r_arity + i, rt.field(i).ty.clone()));
            names.push(rt.field(i).name.clone());
        }
        for i in 0..r_arity {
            exprs.push(RexNode::input(i, rt.field(l_arity + i).ty.clone()));
            names.push(rt.field(l_arity + i).name.clone());
        }
        call.transform_to(rel::project(swapped, exprs, names));
    }
}

/// `(A ⋈ B) ⋈ C` → `A ⋈ (B ⋈ C)` for inner joins; conjuncts are assigned
/// to the innermost join that covers their column references.
pub struct JoinAssociateRule;

impl Rule for JoinAssociateRule {
    fn name(&self) -> &str {
        "JoinAssociateRule"
    }

    fn pattern(&self) -> Pattern {
        Pattern::with_children(
            RelKind::Join,
            vec![Pattern::of(RelKind::Join), Pattern::any()],
        )
    }

    fn on_match(&self, call: &mut RuleCall) {
        let top = call.rel(0);
        let bottom = call.rel(1);
        let (top_kind, top_cond) = match &top.op {
            RelOp::Join { kind, condition } => (*kind, condition.clone()),
            _ => return,
        };
        let (bot_kind, bot_cond) = match &bottom.op {
            RelOp::Join { kind, condition } => (*kind, condition.clone()),
            _ => return,
        };
        if top_kind != JoinKind::Inner || bot_kind != JoinKind::Inner {
            return;
        }
        let a = bottom.input(0).clone();
        let b = bottom.input(1).clone();
        let c = top.input(1).clone();
        let a_arity = a.row_type().arity();

        // All conjuncts live in (A, B, C) coordinates: the bottom join's
        // condition already uses the (A, B) prefix.
        let mut conjuncts = bot_cond.conjuncts();
        conjuncts.extend(top_cond.conjuncts());

        // A conjunct goes to the inner (B ⋈ C) join iff it references no A
        // column; inner coordinates are shifted down by |A|.
        let mut inner = vec![];
        let mut outer = vec![];
        for cj in conjuncts {
            let refs = cj.input_refs();
            if refs.iter().all(|r| *r >= a_arity) {
                inner.push(cj.shift(-(a_arity as isize)));
            } else {
                outer.push(cj);
            }
        }
        let bc = rel::join(b, c, JoinKind::Inner, RexNode::and_all(inner));
        let new_top = rel::join(a, bc, JoinKind::Inner, RexNode::and_all(outer));
        call.transform_to(new_top);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemTable, TableRef};
    use crate::datum::Datum;
    use crate::metadata::MetadataQuery;
    use crate::rel::Rel;
    use crate::types::{RelType, RowTypeBuilder, TypeKind};

    fn int_ty() -> RelType {
        RelType::not_null(TypeKind::Integer)
    }

    fn table(name: &str, cols: &[&str], rows: Vec<Vec<i64>>) -> Rel {
        let mut b = RowTypeBuilder::new();
        for c in cols {
            b = b.add_not_null(*c, TypeKind::Integer);
        }
        let data = rows
            .into_iter()
            .map(|r| r.into_iter().map(Datum::Int).collect())
            .collect();
        rel::scan(TableRef::new("s", name, MemTable::new(b.build(), data)))
    }

    fn fire(rule: &dyn Rule, root: &Rel) -> Vec<Rel> {
        let mq = MetadataQuery::standard();
        match rule.pattern().match_tree(root) {
            Some(binds) => {
                let mut call = RuleCall::new(binds, &mq);
                rule.on_match(&mut call);
                call.into_results()
            }
            None => vec![],
        }
    }

    #[test]
    fn commute_preserves_row_type() {
        let l = table("l", &["a", "b"], vec![]);
        let r = table("r", &["c"], vec![]);
        let j = rel::join(
            l,
            r,
            JoinKind::Inner,
            RexNode::input(0, int_ty()).eq(RexNode::input(2, int_ty())),
        );
        let new = fire(&JoinCommuteRule, &j).pop().unwrap();
        assert_eq!(new.kind(), RelKind::Project);
        assert_eq!(new.row_type(), j.row_type());
        let inner = new.input(0);
        assert_eq!(inner.kind(), RelKind::Join);
        // Condition remapped: $0=$2 over (l,r) becomes $1=$0 over (r,l).
        if let RelOp::Join { condition, .. } = &inner.op {
            assert_eq!(condition.digest(), "($1 = $0)");
        }
    }

    #[test]
    fn commute_skips_outer_joins() {
        let l = table("l", &["a"], vec![]);
        let r = table("r", &["b"], vec![]);
        let j = rel::join(l, r, JoinKind::Left, RexNode::true_lit());
        assert!(fire(&JoinCommuteRule, &j).is_empty());
    }

    #[test]
    fn associate_rebalances_and_routes_conjuncts() {
        let a = table("a", &["x"], vec![]);
        let b = table("b", &["y"], vec![]);
        let c = table("c", &["z"], vec![]);
        // (a ⋈[x=y] b) ⋈[y=z] c
        let ab = rel::join(
            a,
            b,
            JoinKind::Inner,
            RexNode::input(0, int_ty()).eq(RexNode::input(1, int_ty())),
        );
        let abc = rel::join(
            ab,
            c,
            JoinKind::Inner,
            RexNode::input(1, int_ty()).eq(RexNode::input(2, int_ty())),
        );
        let new = fire(&JoinAssociateRule, &abc).pop().unwrap();
        // Shape: a ⋈ (b ⋈ c).
        assert_eq!(new.kind(), RelKind::Join);
        assert_eq!(new.input(0).kind(), RelKind::Scan);
        assert_eq!(new.input(1).kind(), RelKind::Join);
        assert_eq!(new.row_type(), abc.row_type());
        // y=z went inside (as $0=$1 of the b,c join), x=y stayed outside.
        if let RelOp::Join { condition, .. } = &new.input(1).op {
            assert_eq!(condition.digest(), "($0 = $1)");
        }
        if let RelOp::Join { condition, .. } = &new.op {
            assert_eq!(condition.digest(), "($0 = $1)");
        }
    }

    #[test]
    fn commute_then_execute_equivalence_of_row_count_estimate() {
        // Sanity: metadata row counts agree between original and commuted.
        let mq = MetadataQuery::standard();
        let l = table("l", &["a"], vec![vec![1], vec![2], vec![3]]);
        let r = table("r", &["b"], vec![vec![2], vec![3], vec![4]]);
        let j = rel::join(
            l,
            r,
            JoinKind::Inner,
            RexNode::input(0, int_ty()).eq(RexNode::input(1, int_ty())),
        );
        let new = fire(&JoinCommuteRule, &j).pop().unwrap();
        let rc1 = mq.row_count(&j);
        let rc2 = mq.row_count(&new);
        assert!((rc1 - rc2).abs() < 1e-6);
    }
}
