//! Index access-path rules: rewrite filters, projections and joins over
//! indexed tables into seek-shaped alternatives. Every rule only *adds*
//! an equivalent expression — the Volcano cost model decides whether the
//! seek actually beats the scan (paper §5: the adapter exposes access
//! paths, the optimizer chooses among them by cost). These rules are
//! cost-sensitive choices, so they belong in the Volcano battery only,
//! never in the heuristic phase.

use crate::index::{IndexDef, IndexKind, SeekProbe, SeekSpec};
use crate::rel::{self, JoinKind, RelKind, RelOp};
use crate::rex::{Op, RexNode};
use crate::rules::{Pattern, Rule, RuleCall};

/// A comparison between one input column and a constant, normalized so
/// the column is on the left (`5 < $0` reports as `$0 > 5`). Constants
/// are literals or dynamic parameters — anything the executor can bind
/// without a row.
fn col_vs_const(e: &RexNode) -> Option<(usize, Op, RexNode)> {
    let RexNode::Call { op, args, .. } = e else {
        return None;
    };
    if args.len() != 2 {
        return None;
    }
    let is_const =
        |e: &RexNode| matches!(e, RexNode::Literal { .. } | RexNode::DynamicParam { .. });
    if let (Some(col), true) = (args[0].as_input_ref(), is_const(&args[1])) {
        let op = match op {
            Op::Eq => Op::Eq,
            Op::Lt => Op::Lt,
            Op::Le => Op::Le,
            Op::Gt => Op::Gt,
            Op::Ge => Op::Ge,
            _ => return None,
        };
        return Some((col, op, args[1].clone()));
    }
    if let (true, Some(col)) = (is_const(&args[0]), args[1].as_input_ref()) {
        // Mirror the comparison to put the column on the left.
        let op = match op {
            Op::Eq => Op::Eq,
            Op::Lt => Op::Gt,
            Op::Le => Op::Ge,
            Op::Gt => Op::Lt,
            Op::Ge => Op::Le,
            _ => return None,
        };
        return Some((col, op, args[0].clone()));
    }
    None
}

/// An OR of equality comparisons all against `col` (the converter lowers
/// `x IN (...)` to this shape): the constant of each disjunct, or `None`
/// if any disjunct has another form.
fn as_in_list(e: &RexNode, col: usize) -> Option<Vec<RexNode>> {
    fn disjuncts(e: &RexNode, out: &mut Vec<RexNode>) {
        match e {
            RexNode::Call {
                op: Op::Or, args, ..
            } => {
                for a in args {
                    disjuncts(a, out);
                }
            }
            _ => out.push(e.clone()),
        }
    }
    if !matches!(e, RexNode::Call { op: Op::Or, .. }) {
        return None;
    }
    let mut ds = vec![];
    disjuncts(e, &mut ds);
    let mut vals = vec![];
    for d in ds {
        match col_vs_const(&d) {
            Some((c, Op::Eq, v)) if c == col => vals.push(v),
            _ => return None,
        }
    }
    Some(vals)
}

/// Splits `conjuncts` into a seek over `def` plus residual predicates:
/// equalities walk the index-column prefix, the column right after the
/// prefix may take range bounds (ordered indexes), and an IN-list on the
/// first column becomes a multi-probe. Hash indexes require the full key
/// as equalities. `None` when the index contributes nothing.
fn match_index(def: &IndexDef, conjuncts: &[RexNode]) -> Option<(SeekSpec, Vec<RexNode>)> {
    let mut used = vec![false; conjuncts.len()];
    let mut eq = vec![];
    let mut lower = None;
    let mut upper = None;
    for (k, &col) in def.columns.iter().enumerate() {
        let mut found_eq = false;
        for (i, cj) in conjuncts.iter().enumerate() {
            if used[i] {
                continue;
            }
            if let Some((c, Op::Eq, v)) = col_vs_const(cj) {
                if c == col {
                    used[i] = true;
                    eq.push(v);
                    found_eq = true;
                    break;
                }
            }
        }
        if found_eq {
            continue;
        }
        // No equality on the first key column: an IN-list there becomes
        // one point probe per value (single-column prefix).
        if k == 0 && (def.kind == IndexKind::Ordered || def.columns.len() == 1) {
            for (i, cj) in conjuncts.iter().enumerate() {
                if used[i] {
                    continue;
                }
                let Some(vals) = as_in_list(cj, col) else {
                    continue;
                };
                used[i] = true;
                let residual = residual_of(conjuncts, &used);
                let probes = vals
                    .into_iter()
                    .map(|v| SeekProbe::point(vec![v]))
                    .collect();
                return Some((SeekSpec { probes }, residual));
            }
        }
        // The prefix ends here; an ordered index can still take range
        // bounds on this column.
        if def.kind == IndexKind::Ordered {
            for (i, cj) in conjuncts.iter().enumerate() {
                if used[i] {
                    continue;
                }
                match col_vs_const(cj) {
                    Some((c, Op::Gt, v)) if c == col && lower.is_none() => {
                        lower = Some((v, false));
                        used[i] = true;
                    }
                    Some((c, Op::Ge, v)) if c == col && lower.is_none() => {
                        lower = Some((v, true));
                        used[i] = true;
                    }
                    Some((c, Op::Lt, v)) if c == col && upper.is_none() => {
                        upper = Some((v, false));
                        used[i] = true;
                    }
                    Some((c, Op::Le, v)) if c == col && upper.is_none() => {
                        upper = Some((v, true));
                        used[i] = true;
                    }
                    _ => {}
                }
            }
        }
        break;
    }
    if def.kind == IndexKind::Hash && eq.len() != def.columns.len() {
        return None;
    }
    if eq.is_empty() && lower.is_none() && upper.is_none() {
        return None;
    }
    let residual = residual_of(conjuncts, &used);
    let spec = SeekSpec {
        probes: vec![SeekProbe { eq, lower, upper }],
    };
    Some((spec, residual))
}

fn residual_of(conjuncts: &[RexNode], used: &[bool]) -> Vec<RexNode> {
    conjuncts
        .iter()
        .zip(used.iter())
        .filter(|(_, u)| !**u)
        .map(|(c, _)| c.clone())
        .collect()
}

/// `Filter(Scan)` over an indexed table → `Filter(IndexSeek)` per usable
/// index, the unconsumed conjuncts staying as the residual filter (which
/// collapses away when everything was consumed).
pub struct FilterToIndexSeekRule;

impl Rule for FilterToIndexSeekRule {
    fn name(&self) -> &str {
        "FilterToIndexSeekRule"
    }

    fn pattern(&self) -> Pattern {
        Pattern::with_children(RelKind::Filter, vec![Pattern::of(RelKind::Scan)])
    }

    fn on_match(&self, call: &mut RuleCall) {
        let f = call.rel(0).clone();
        let scan = call.rel(1).clone();
        if !f.convention.is_none() || !scan.convention.is_none() {
            return;
        }
        let RelOp::Scan { table } = &scan.op else {
            return;
        };
        let RelOp::Filter { condition } = &f.op else {
            return;
        };
        let indexes = table.table.indexes();
        if indexes.is_empty() {
            return;
        }
        let conjuncts = condition.conjuncts();
        for def in &indexes {
            if let Some((seek, residual)) = match_index(def, &conjuncts) {
                let seek_node = rel::index_seek(table.clone(), def.clone(), seek, None);
                call.transform_to(rel::filter(seek_node, RexNode::and_all(residual)));
            }
        }
    }
}

/// `Project(IndexSeek)` where every expression is a bare column keeping
/// its base name → fold the column list into the seek (index-only style
/// access: the seek itself emits the narrow row).
pub struct ProjectToIndexOnlyRule;

impl Rule for ProjectToIndexOnlyRule {
    fn name(&self) -> &str {
        "ProjectToIndexOnlyRule"
    }

    fn pattern(&self) -> Pattern {
        Pattern::with_children(RelKind::Project, vec![Pattern::of(RelKind::IndexSeek)])
    }

    fn on_match(&self, call: &mut RuleCall) {
        let p = call.rel(0).clone();
        let child = call.rel(1);
        if !p.convention.is_none() || !child.convention.is_none() {
            return;
        }
        let RelOp::Project { exprs, names } = &p.op else {
            return;
        };
        let RelOp::IndexSeek {
            table,
            index,
            seek,
            projection: None,
        } = &child.op
        else {
            return;
        };
        let Some(cols) = exprs
            .iter()
            .map(|e| e.as_input_ref())
            .collect::<Option<Vec<usize>>>()
        else {
            return;
        };
        // Folding replaces the Project's output names with the base
        // table's; only sound when they agree.
        let base = child.row_type();
        if cols
            .iter()
            .zip(names.iter())
            .any(|(c, n)| base.field(*c).name != *n)
        {
            return;
        }
        call.transform_to(rel::index_seek(
            table.clone(),
            index.clone(),
            seek.clone(),
            Some(cols),
        ));
    }
}

/// `Join(left, Scan)` whose equi-keys cover an index prefix on the right
/// table → index-nested-loop join: the right side folds into the operator
/// and each left row probes the index. Registered as an alternative; the
/// cost model weighs it against the hash join (cheap when the left side
/// is small and the index is deep).
pub struct JoinToIndexLoopRule;

impl Rule for JoinToIndexLoopRule {
    fn name(&self) -> &str {
        "JoinToIndexLoopRule"
    }

    fn pattern(&self) -> Pattern {
        Pattern::with_children(
            RelKind::Join,
            vec![Pattern::any(), Pattern::of(RelKind::Scan)],
        )
    }

    fn on_match(&self, call: &mut RuleCall) {
        let j = call.rel(0).clone();
        let left = call.rel(1).clone();
        let scan = call.rel(2).clone();
        if !j.convention.is_none() || !scan.convention.is_none() {
            return;
        }
        let RelOp::Join { kind, condition } = &j.op else {
            return;
        };
        if !matches!(
            kind,
            JoinKind::Inner | JoinKind::Left | JoinKind::Semi | JoinKind::Anti
        ) {
            return;
        }
        let RelOp::Scan { table } = &scan.op else {
            return;
        };
        let indexes = table.table.indexes();
        if indexes.is_empty() {
            return;
        }
        // Equi-pairs (left column, right column in table coordinates).
        let l_arity = left.row_type().arity();
        let mut pairs = vec![];
        for cj in condition.conjuncts() {
            let RexNode::Call {
                op: Op::Eq, args, ..
            } = &cj
            else {
                continue;
            };
            let (Some(a), Some(b)) = (args[0].as_input_ref(), args[1].as_input_ref()) else {
                continue;
            };
            if a < l_arity && b >= l_arity {
                pairs.push((a, b - l_arity));
            } else if b < l_arity && a >= l_arity {
                pairs.push((b, a - l_arity));
            }
        }
        if pairs.is_empty() {
            return;
        }
        for def in &indexes {
            // Walk the index columns collecting the matching left keys;
            // hash indexes need the whole key covered.
            let mut left_keys = vec![];
            for col in &def.columns {
                match pairs.iter().find(|(_, r)| r == col) {
                    Some((l, _)) => left_keys.push(*l),
                    None => break,
                }
            }
            if left_keys.is_empty()
                || (def.kind == IndexKind::Hash && left_keys.len() != def.columns.len())
            {
                continue;
            }
            call.transform_to(rel::index_join(
                left.clone(),
                table.clone(),
                def.clone(),
                *kind,
                condition.clone(),
                left_keys,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemTable, Table, TableRef};
    use crate::datum::Datum;
    use crate::metadata::MetadataQuery;
    use crate::rel::Rel;
    use crate::types::{RelType, RowTypeBuilder, TypeKind};

    fn int_ty() -> RelType {
        RelType::not_null(TypeKind::Integer)
    }

    fn indexed_table() -> Rel {
        let t = MemTable::new(
            RowTypeBuilder::new()
                .add_not_null("a", TypeKind::Integer)
                .add_not_null("b", TypeKind::Integer)
                .add_not_null("c", TypeKind::Integer)
                .build(),
            (0..20)
                .map(|i| vec![Datum::Int(i), Datum::Int(i % 3), Datum::Int(i * 2)])
                .collect(),
        );
        t.create_index(&IndexDef::ordered("i_ab", vec![0, 1]))
            .unwrap();
        rel::scan(TableRef::new("s", "t", t))
    }

    fn fire(rule: &dyn Rule, root: &Rel) -> Vec<Rel> {
        let mq = MetadataQuery::standard();
        match rule.pattern().match_tree(root) {
            Some(binds) => {
                let mut call = RuleCall::new(binds, &mq);
                rule.on_match(&mut call);
                call.into_results()
            }
            None => vec![],
        }
    }

    #[test]
    fn point_predicate_becomes_seek() {
        let f = rel::filter(
            indexed_table(),
            RexNode::input(0, int_ty()).eq(RexNode::lit_int(7)),
        );
        let alts = fire(&FilterToIndexSeekRule, &f);
        assert_eq!(alts.len(), 1);
        let seek = &alts[0];
        assert_eq!(seek.kind(), RelKind::IndexSeek, "{}", seek.digest());
        assert_eq!(seek.row_type(), f.row_type());
    }

    #[test]
    fn prefix_eq_plus_range_with_residual() {
        // a = 7 AND b > 1 AND c < 100: eq on $0, range on $1, residual $2.
        let cond = RexNode::and_all(vec![
            RexNode::input(0, int_ty()).eq(RexNode::lit_int(7)),
            RexNode::input(1, int_ty()).gt(RexNode::lit_int(1)),
            RexNode::input(2, int_ty()).lt(RexNode::lit_int(100)),
        ]);
        let f = rel::filter(indexed_table(), cond);
        let alts = fire(&FilterToIndexSeekRule, &f);
        assert_eq!(alts.len(), 1);
        let top = &alts[0];
        assert_eq!(top.kind(), RelKind::Filter);
        let RelOp::Filter { condition } = &top.op else {
            unreachable!()
        };
        assert_eq!(condition.digest(), "($2 < 100)");
        let RelOp::IndexSeek { seek, .. } = &top.input(0).op else {
            panic!("expected seek below residual: {}", top.digest());
        };
        assert_eq!(seek.probes.len(), 1);
        assert_eq!(seek.probes[0].eq.len(), 1);
        assert!(seek.probes[0].lower.is_some());
    }

    #[test]
    fn in_list_becomes_multi_probe() {
        let cond = RexNode::or_all(vec![
            RexNode::input(0, int_ty()).eq(RexNode::lit_int(3)),
            RexNode::input(0, int_ty()).eq(RexNode::lit_int(9)),
        ]);
        let f = rel::filter(indexed_table(), cond);
        let alts = fire(&FilterToIndexSeekRule, &f);
        assert_eq!(alts.len(), 1);
        let RelOp::IndexSeek { seek, .. } = &alts[0].op else {
            panic!("{}", alts[0].digest());
        };
        assert_eq!(seek.probes.len(), 2);
    }

    #[test]
    fn unrelated_predicate_does_not_fire() {
        let f = rel::filter(
            indexed_table(),
            RexNode::input(2, int_ty()).eq(RexNode::lit_int(4)),
        );
        assert!(fire(&FilterToIndexSeekRule, &f).is_empty());
    }

    #[test]
    fn reversed_comparison_normalizes() {
        // 7 = a is the same seek as a = 7; 5 < a is a lower bound.
        let (c, op, _) =
            col_vs_const(&RexNode::lit_int(7).eq(RexNode::input(0, int_ty()))).unwrap();
        assert_eq!((c, op), (0, Op::Eq));
        let (c, op, _) =
            col_vs_const(&RexNode::lit_int(5).lt(RexNode::input(1, int_ty()))).unwrap();
        assert_eq!((c, op), (1, Op::Gt));
    }

    #[test]
    fn project_folds_into_index_only_seek() {
        let f = rel::filter(
            indexed_table(),
            RexNode::input(0, int_ty()).eq(RexNode::lit_int(7)),
        );
        let seek = fire(&FilterToIndexSeekRule, &f).pop().unwrap();
        let p = rel::project(
            seek,
            vec![RexNode::input(1, int_ty()), RexNode::input(0, int_ty())],
            vec!["b".into(), "a".into()],
        );
        let alts = fire(&ProjectToIndexOnlyRule, &p);
        assert_eq!(alts.len(), 1);
        let RelOp::IndexSeek { projection, .. } = &alts[0].op else {
            panic!("{}", alts[0].digest());
        };
        assert_eq!(projection.as_deref(), Some(&[1usize, 0][..]));
        assert_eq!(alts[0].row_type(), p.row_type());
    }

    #[test]
    fn renaming_project_does_not_fold() {
        let f = rel::filter(
            indexed_table(),
            RexNode::input(0, int_ty()).eq(RexNode::lit_int(7)),
        );
        let seek = fire(&FilterToIndexSeekRule, &f).pop().unwrap();
        let p = rel::project(
            seek,
            vec![RexNode::input(1, int_ty())],
            vec!["renamed".into()],
        );
        assert!(fire(&ProjectToIndexOnlyRule, &p).is_empty());
    }

    #[test]
    fn equi_join_offers_index_loop() {
        let left = {
            let t = MemTable::new(
                RowTypeBuilder::new()
                    .add_not_null("k", TypeKind::Integer)
                    .build(),
                vec![vec![Datum::Int(1)], vec![Datum::Int(2)]],
            );
            rel::scan(TableRef::new("s", "l", t))
        };
        let j = rel::join(
            left,
            indexed_table(),
            JoinKind::Inner,
            RexNode::input(0, int_ty()).eq(RexNode::input(1, int_ty())),
        );
        let alts = fire(&JoinToIndexLoopRule, &j);
        assert_eq!(alts.len(), 1);
        let RelOp::IndexJoin { left_keys, .. } = &alts[0].op else {
            panic!("{}", alts[0].digest());
        };
        assert_eq!(left_keys, &[0]);
        assert_eq!(alts[0].row_type(), j.row_type());
    }

    #[test]
    fn non_equi_join_does_not_fire() {
        let left = {
            let t = MemTable::new(
                RowTypeBuilder::new()
                    .add_not_null("k", TypeKind::Integer)
                    .build(),
                vec![],
            );
            rel::scan(TableRef::new("s", "l", t))
        };
        let j = rel::join(
            left,
            indexed_table(),
            JoinKind::Inner,
            RexNode::input(0, int_ty()).gt(RexNode::input(1, int_ty())),
        );
        assert!(fire(&JoinToIndexLoopRule, &j).is_empty());
    }
}
