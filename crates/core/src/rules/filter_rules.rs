//! Filter push-down rules, including `FilterIntoJoinRule` — the paper's
//! Figure 4 example ("we can move the filter before the join ... this
//! optimization can significantly reduce query execution time").

use crate::rel::{self, JoinKind, Rel, RelKind, RelOp};
use crate::rex::RexNode;
use crate::rules::{Pattern, Rule, RuleCall};
use std::collections::HashMap;

/// Splits filter conjuncts over a join into (left-only, right-only,
/// mixed), with right-only conjuncts rebased to the right input's
/// coordinates.
pub fn split_join_condition(
    conjuncts: Vec<RexNode>,
    left_arity: usize,
    total_arity: usize,
) -> (Vec<RexNode>, Vec<RexNode>, Vec<RexNode>) {
    let left_map: HashMap<usize, usize> = (0..left_arity).map(|i| (i, i)).collect();
    let right_map: HashMap<usize, usize> = (left_arity..total_arity)
        .map(|i| (i, i - left_arity))
        .collect();
    let mut left = vec![];
    let mut right = vec![];
    let mut mixed = vec![];
    for c in conjuncts {
        if let Some(l) = c.try_remap(&left_map) {
            left.push(l);
        } else if let Some(r) = c.try_remap(&right_map) {
            right.push(r);
        } else {
            mixed.push(c);
        }
    }
    (left, right, mixed)
}

/// `Filter(Join)` → pushes the filter's conjuncts below the join where
/// legal, merging cross-side conjuncts into the join condition of inner
/// joins (Figure 4).
pub struct FilterIntoJoinRule;

impl Rule for FilterIntoJoinRule {
    fn name(&self) -> &str {
        "FilterIntoJoinRule"
    }

    fn pattern(&self) -> Pattern {
        Pattern::with_children(RelKind::Filter, vec![Pattern::of(RelKind::Join)])
    }

    fn on_match(&self, call: &mut RuleCall) {
        let filter = call.rel(0);
        let join_node = call.rel(1);
        let (condition, (kind, join_cond)) = match (&filter.op, &join_node.op) {
            (
                RelOp::Filter { condition },
                RelOp::Join {
                    kind,
                    condition: jc,
                },
            ) => (condition.clone(), (*kind, jc.clone())),
            _ => return,
        };
        let left = join_node.input(0).clone();
        let right = join_node.input(1).clone();
        let left_arity = left.row_type().arity();
        let total = left_arity
            + if kind.projects_right() {
                right.row_type().arity()
            } else {
                0
            };
        let (l, r, mixed) = split_join_condition(condition.conjuncts(), left_arity, total);

        // Legality per join kind: a conjunct may move below the join only
        // if that side does not generate NULLs (the filter above sees
        // NULL-extended rows; below it would not).
        let can_push_left = !kind.generates_nulls_on_left();
        let can_push_right = kind.projects_right() && !kind.generates_nulls_on_right();
        // Mixed conjuncts can strengthen the join condition of inner joins
        // only.
        let can_merge_mixed = kind == JoinKind::Inner;

        let (push_l, keep_l) = if can_push_left {
            (l, vec![])
        } else {
            (vec![], l)
        };
        let (push_r, keep_r) = if can_push_right {
            (r, vec![])
        } else {
            (vec![], r)
        };
        let (merge_m, keep_m) = if can_merge_mixed {
            (mixed, vec![])
        } else {
            (vec![], mixed)
        };

        if push_l.is_empty() && push_r.is_empty() && merge_m.is_empty() {
            return;
        }

        let new_left = rel::filter(left, RexNode::and_all(push_l));
        let new_right = rel::filter(right, RexNode::and_all(push_r));
        let mut cond_parts = join_cond.conjuncts();
        cond_parts.extend(merge_m);
        let new_join = rel::join(new_left, new_right, kind, RexNode::and_all(cond_parts));

        // Conjuncts that could not move stay above; re-basing: keep_r is in
        // right coordinates, shift back.
        let mut remaining = keep_l;
        remaining.extend(keep_r.into_iter().map(|c| c.shift(left_arity as isize)));
        remaining.extend(keep_m);
        call.transform_to(rel::filter(new_join, RexNode::and_all(remaining)));
    }
}

/// `Filter(Filter)` → single filter over the conjunction.
pub struct FilterMergeRule;

impl Rule for FilterMergeRule {
    fn name(&self) -> &str {
        "FilterMergeRule"
    }

    fn pattern(&self) -> Pattern {
        Pattern::with_children(RelKind::Filter, vec![Pattern::of(RelKind::Filter)])
    }

    fn on_match(&self, call: &mut RuleCall) {
        let (top, bottom) = (call.rel(0), call.rel(1));
        if let (RelOp::Filter { condition: c1 }, RelOp::Filter { condition: c2 }) =
            (&top.op, &bottom.op)
        {
            let mut parts = c2.conjuncts();
            parts.extend(c1.conjuncts());
            call.transform_to(rel::filter(
                bottom.input(0).clone(),
                RexNode::and_all(parts),
            ));
        }
    }
}

/// `Filter(Project)` → `Project(Filter)` with the condition rewritten in
/// terms of the project's input.
pub struct FilterProjectTransposeRule;

impl Rule for FilterProjectTransposeRule {
    fn name(&self) -> &str {
        "FilterProjectTransposeRule"
    }

    fn pattern(&self) -> Pattern {
        Pattern::with_children(RelKind::Filter, vec![Pattern::of(RelKind::Project)])
    }

    fn on_match(&self, call: &mut RuleCall) {
        let (filter, proj) = (call.rel(0), call.rel(1));
        if let (RelOp::Filter { condition }, RelOp::Project { exprs, names }) =
            (&filter.op, &proj.op)
        {
            let pushed = condition.substitute(exprs);
            let new_filter = rel::filter(proj.input(0).clone(), pushed);
            call.transform_to(rel::project(new_filter, exprs.clone(), names.clone()));
        }
    }
}

/// `Filter(Aggregate)` → pushes conjuncts that only touch group keys below
/// the aggregate.
pub struct FilterAggregateTransposeRule;

impl Rule for FilterAggregateTransposeRule {
    fn name(&self) -> &str {
        "FilterAggregateTransposeRule"
    }

    fn pattern(&self) -> Pattern {
        Pattern::with_children(RelKind::Filter, vec![Pattern::of(RelKind::Aggregate)])
    }

    fn on_match(&self, call: &mut RuleCall) {
        let (filter, agg) = (call.rel(0), call.rel(1));
        if let (RelOp::Filter { condition }, RelOp::Aggregate { group, aggs }) =
            (&filter.op, &agg.op)
        {
            // Output position i of a group key corresponds to input column
            // group[i].
            let map: HashMap<usize, usize> =
                group.iter().enumerate().map(|(i, g)| (i, *g)).collect();
            let mut pushed = vec![];
            let mut kept = vec![];
            for c in condition.conjuncts() {
                match c.try_remap(&map) {
                    Some(below) => pushed.push(below),
                    None => kept.push(c),
                }
            }
            if pushed.is_empty() {
                return;
            }
            let new_input = rel::filter(agg.input(0).clone(), RexNode::and_all(pushed));
            let new_agg = rel::aggregate(new_input, group.clone(), aggs.clone());
            call.transform_to(rel::filter(new_agg, RexNode::and_all(kept)));
        }
    }
}

/// `Filter(Union)` → `Union(Filter, Filter, ...)`.
pub struct FilterUnionTransposeRule;

impl Rule for FilterUnionTransposeRule {
    fn name(&self) -> &str {
        "FilterUnionTransposeRule"
    }

    fn pattern(&self) -> Pattern {
        Pattern::with_children(RelKind::Filter, vec![Pattern::of(RelKind::Union)])
    }

    fn on_match(&self, call: &mut RuleCall) {
        let (filter, un) = (call.rel(0), call.rel(1));
        if let (RelOp::Filter { condition }, RelOp::Union { all }) = (&filter.op, &un.op) {
            let inputs: Vec<Rel> = un
                .inputs
                .iter()
                .map(|i| rel::filter(i.clone(), condition.clone()))
                .collect();
            call.transform_to(rel::union(inputs, *all));
        }
    }
}

/// `Filter(Sort)` → `Sort(Filter)` when the sort carries no OFFSET/FETCH
/// (a limit would change which rows survive).
pub struct FilterSortTransposeRule;

impl Rule for FilterSortTransposeRule {
    fn name(&self) -> &str {
        "FilterSortTransposeRule"
    }

    fn pattern(&self) -> Pattern {
        Pattern::with_children(RelKind::Filter, vec![Pattern::of(RelKind::Sort)])
    }

    fn on_match(&self, call: &mut RuleCall) {
        let (filter, sort_node) = (call.rel(0), call.rel(1));
        if let (
            RelOp::Filter { condition },
            RelOp::Sort {
                collation,
                offset: None,
                fetch: None,
            },
        ) = (&filter.op, &sort_node.op)
        {
            let new_filter = rel::filter(sort_node.input(0).clone(), condition.clone());
            call.transform_to(rel::sort(new_filter, collation.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemTable, TableRef};
    use crate::metadata::MetadataQuery;
    use crate::rel::{AggCall, RelKind};
    use crate::types::{RelType, RowTypeBuilder, TypeKind};

    fn int_ty() -> RelType {
        RelType::not_null(TypeKind::Integer)
    }

    fn table(name: &str, cols: &[&str]) -> Rel {
        let mut b = RowTypeBuilder::new();
        for c in cols {
            b = b.add_not_null(*c, TypeKind::Integer);
        }
        rel::scan(TableRef::new("s", name, MemTable::new(b.build(), vec![])))
    }

    fn fire(rule: &dyn Rule, root: &Rel) -> Vec<Rel> {
        let mq = MetadataQuery::standard();
        let binds = rule.pattern().match_tree(root).expect("pattern must match");
        let mut call = RuleCall::new(binds, &mq);
        rule.on_match(&mut call);
        call.into_results()
    }

    #[test]
    fn filter_into_join_pushes_left_only_conjunct() {
        // The Figure 4 query shape: filter on sales.discount above
        // sales JOIN products.
        let sales = table("sales", &["productid", "discount"]);
        let products = table("products", &["productid", "name"]);
        let join = rel::join(
            sales,
            products,
            JoinKind::Inner,
            RexNode::input(0, int_ty()).eq(RexNode::input(2, int_ty())),
        );
        let filt = rel::filter(join, RexNode::input(1, int_ty()).is_not_null());
        let results = fire(&FilterIntoJoinRule, &filt);
        assert_eq!(results.len(), 1);
        let new = &results[0];
        // Filter fully absorbed: root is now the join.
        assert_eq!(new.kind(), RelKind::Join);
        // The left input became Filter(Scan sales).
        assert_eq!(new.input(0).kind(), RelKind::Filter);
        assert_eq!(new.input(1).kind(), RelKind::Scan);
        // Row types unchanged.
        assert_eq!(new.row_type(), filt.row_type());
    }

    #[test]
    fn filter_into_join_splits_three_ways() {
        let l = table("l", &["a", "b"]);
        let r = table("r", &["c", "d"]);
        let join = rel::join(l, r, JoinKind::Inner, RexNode::true_lit());
        // a > 1 AND c > 2 AND a = c
        let cond = RexNode::and_all(vec![
            RexNode::input(0, int_ty()).gt(RexNode::lit_int(1)),
            RexNode::input(2, int_ty()).gt(RexNode::lit_int(2)),
            RexNode::input(0, int_ty()).eq(RexNode::input(2, int_ty())),
        ]);
        let filt = rel::filter(join, cond);
        let new = fire(&FilterIntoJoinRule, &filt).pop().unwrap();
        assert_eq!(new.kind(), RelKind::Join);
        // Both sides filtered.
        assert_eq!(new.input(0).kind(), RelKind::Filter);
        assert_eq!(new.input(1).kind(), RelKind::Filter);
        // Mixed conjunct became the join condition.
        if let RelOp::Join { condition, .. } = &new.op {
            assert!(condition.digest().contains("$0 = $2"), "{}", condition);
        } else {
            panic!();
        }
        // Right-side conjunct rebased to $0 of the right input.
        if let RelOp::Filter { condition } = &new.input(1).op {
            assert_eq!(condition.digest(), "($0 > 2)");
        } else {
            panic!();
        }
    }

    #[test]
    fn filter_not_pushed_to_null_generating_side() {
        let l = table("l", &["a"]);
        let r = table("r", &["b"]);
        let join = rel::join(
            l,
            r,
            JoinKind::Left,
            RexNode::input(0, int_ty()).eq(RexNode::input(1, int_ty())),
        );
        // Condition on the right side of a LEFT join must not move below.
        let filt = rel::filter(join, RexNode::input(1, int_ty()).gt(RexNode::lit_int(0)));
        let results = fire(&FilterIntoJoinRule, &filt);
        assert!(
            results.is_empty(),
            "no legal push for right side of LEFT join"
        );
        // But a left-side condition is pushable.
        let join2 = call_join_left();
        let filt2 = rel::filter(join2, RexNode::input(0, int_ty()).gt(RexNode::lit_int(0)));
        let results2 = fire(&FilterIntoJoinRule, &filt2);
        assert_eq!(results2.len(), 1);
        assert_eq!(results2[0].input(0).kind(), RelKind::Filter);
    }

    fn call_join_left() -> Rel {
        let l = table("l", &["a"]);
        let r = table("r", &["b"]);
        rel::join(
            l,
            r,
            JoinKind::Left,
            RexNode::input(0, int_ty()).eq(RexNode::input(1, int_ty())),
        )
    }

    #[test]
    fn filter_merge() {
        let t = table("t", &["a"]);
        let f1 = rel::filter(t, RexNode::input(0, int_ty()).gt(RexNode::lit_int(1)));
        let f2 = rel::filter(f1, RexNode::input(0, int_ty()).lt(RexNode::lit_int(10)));
        let new = fire(&FilterMergeRule, &f2).pop().unwrap();
        assert_eq!(new.kind(), RelKind::Filter);
        assert_eq!(new.input(0).kind(), RelKind::Scan);
        if let RelOp::Filter { condition } = &new.op {
            assert_eq!(condition.conjuncts().len(), 2);
        }
    }

    #[test]
    fn filter_project_transpose_rewrites_condition() {
        let t = table("t", &["a", "b"]);
        // Project b+1 AS x; filter x > 5.
        let p = rel::project(
            t,
            vec![RexNode::call(
                crate::rex::Op::Plus,
                vec![RexNode::input(1, int_ty()), RexNode::lit_int(1)],
            )],
            vec!["x".into()],
        );
        let f = rel::filter(p, RexNode::input(0, int_ty()).gt(RexNode::lit_int(5)));
        let new = fire(&FilterProjectTransposeRule, &f).pop().unwrap();
        assert_eq!(new.kind(), RelKind::Project);
        assert_eq!(new.input(0).kind(), RelKind::Filter);
        if let RelOp::Filter { condition } = &new.input(0).op {
            assert_eq!(condition.digest(), "(($1 + 1) > 5)");
        } else {
            panic!();
        }
        // Output schema preserved.
        assert_eq!(new.row_type(), f.row_type());
    }

    #[test]
    fn filter_aggregate_transpose_group_keys_only() {
        let t = table("t", &["k", "v"]);
        let agg = rel::aggregate(t, vec![0], vec![AggCall::count_star("c")]);
        // k > 3 (group key, pushable) AND c > 1 (aggregate result, not).
        let cond = RexNode::and_all(vec![
            RexNode::input(0, int_ty()).gt(RexNode::lit_int(3)),
            RexNode::input(1, int_ty()).gt(RexNode::lit_int(1)),
        ]);
        let f = rel::filter(agg, cond);
        let new = fire(&FilterAggregateTransposeRule, &f).pop().unwrap();
        // Remaining filter on top, aggregate beneath, pushed filter below.
        assert_eq!(new.kind(), RelKind::Filter);
        assert_eq!(new.input(0).kind(), RelKind::Aggregate);
        assert_eq!(new.input(0).input(0).kind(), RelKind::Filter);
        if let RelOp::Filter { condition } = &new.input(0).input(0).op {
            assert_eq!(condition.digest(), "($0 > 3)");
        }
    }

    #[test]
    fn filter_union_transpose() {
        let u = rel::union(vec![table("a", &["x"]), table("b", &["x"])], true);
        let f = rel::filter(u, RexNode::input(0, int_ty()).gt(RexNode::lit_int(0)));
        let new = fire(&FilterUnionTransposeRule, &f).pop().unwrap();
        assert_eq!(new.kind(), RelKind::Union);
        assert!(new.inputs.iter().all(|i| i.kind() == RelKind::Filter));
    }

    #[test]
    fn filter_sort_transpose_skips_limits() {
        let t = table("t", &["a"]);
        let sorted = rel::sort(t.clone(), vec![crate::traits::FieldCollation::asc(0)]);
        let f = rel::filter(sorted, RexNode::input(0, int_ty()).gt(RexNode::lit_int(0)));
        let new = fire(&FilterSortTransposeRule, &f).pop().unwrap();
        assert_eq!(new.kind(), RelKind::Sort);
        assert_eq!(new.input(0).kind(), RelKind::Filter);

        // With a fetch the rule must not fire.
        let limited = rel::sort_limit(
            t,
            vec![crate::traits::FieldCollation::asc(0)],
            None,
            Some(5),
        );
        let f2 = rel::filter(limited, RexNode::input(0, int_ty()).gt(RexNode::lit_int(0)));
        assert!(fire(&FilterSortTransposeRule, &f2).is_empty());
    }
}
