//! Metadata providers (paper §6). Metadata "serves two main purposes:
//! (i) guiding the planner towards the goal of reducing the cost of the
//! overall query plan, and (ii) providing information to the rules while
//! they are being applied". Providers are pluggable and chained; results
//! are memoized in a cache, "which yields significant performance
//! improvements" — reproduced and measured by `bench_metadata`.

use crate::cost::{Cost, CostModel, DefaultCostModel};
use crate::rel::{Rel, RelOp};
use crate::rex::{Op, RexNode};
use crate::traits::Collation;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A source of optimizer metadata. Every method returns `None` when the
/// provider has no opinion, letting the next provider in the chain answer
/// (systems "may choose to write providers that override the existing
/// functions", §6).
#[allow(unused_variables)]
pub trait MetadataProvider: Send + Sync {
    /// Estimated output cardinality.
    fn row_count(&self, rel: &Rel, mq: &MetadataQuery) -> Option<f64> {
        None
    }

    /// Fraction of `rel`'s output rows satisfying `predicate`.
    fn selectivity(&self, rel: &Rel, predicate: &RexNode, mq: &MetadataQuery) -> Option<f64> {
        None
    }

    /// Estimated number of distinct values over `cols` of `rel`'s output.
    fn distinct_count(&self, rel: &Rel, cols: &[usize], mq: &MetadataQuery) -> Option<f64> {
        None
    }

    /// Cost of executing this operator alone (inputs excluded).
    fn non_cumulative_cost(&self, rel: &Rel, mq: &MetadataQuery) -> Option<Cost> {
        None
    }

    /// Orderings the output is known to have.
    fn collations(&self, rel: &Rel, mq: &MetadataQuery) -> Option<Vec<Collation>> {
        None
    }

    /// Column sets known to be unique in the output.
    fn unique_keys(&self, rel: &Rel, mq: &MetadataQuery) -> Option<Vec<Vec<usize>>> {
        None
    }

    /// Average output row size in bytes.
    fn average_row_size(&self, rel: &Rel, mq: &MetadataQuery) -> Option<f64> {
        None
    }

    /// Maximum useful degree of parallelism (paper lists this among the
    /// default provider's functions).
    fn parallelism(&self, rel: &Rel, mq: &MetadataQuery) -> Option<f64> {
        None
    }
}

#[derive(Clone, PartialEq)]
enum CacheVal {
    F64(f64),
    Cost(Cost),
    Collations(Vec<Collation>),
    Keys(Vec<Vec<usize>>),
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    rel: usize,
    kind: u8,
    aux: u64,
}

/// The entry point rules and planners use to ask metadata questions. Owns
/// the provider chain, the cost model and the memoization cache.
pub struct MetadataQuery {
    providers: Vec<Arc<dyn MetadataProvider>>,
    cost_model: Arc<dyn CostModel>,
    cache_enabled: bool,
    cache: Mutex<HashMap<CacheKey, CacheVal>>,
    /// Keeps cached `Rel`s alive so pointer keys stay unique.
    keepalive: Mutex<Vec<Rel>>,
}

impl MetadataQuery {
    /// Default chain: just the built-in provider.
    pub fn standard() -> MetadataQuery {
        MetadataQuery::new(vec![], Arc::new(DefaultCostModel::new()), true)
    }

    pub fn new(
        mut providers: Vec<Arc<dyn MetadataProvider>>,
        cost_model: Arc<dyn CostModel>,
        cache_enabled: bool,
    ) -> MetadataQuery {
        // The default provider terminates every chain.
        providers.push(Arc::new(DefaultMdProvider));
        MetadataQuery {
            providers,
            cost_model,
            cache_enabled,
            cache: Mutex::new(HashMap::new()),
            keepalive: Mutex::new(vec![]),
        }
    }

    /// A query with custom providers consulted *before* the defaults.
    pub fn with_providers(providers: Vec<Arc<dyn MetadataProvider>>) -> MetadataQuery {
        MetadataQuery::new(providers, Arc::new(DefaultCostModel::new()), true)
    }

    /// Disables the memoization cache (for the §6b ablation bench).
    pub fn without_cache() -> MetadataQuery {
        MetadataQuery::new(vec![], Arc::new(DefaultCostModel::new()), false)
    }

    pub fn cost_model(&self) -> &Arc<dyn CostModel> {
        &self.cost_model
    }

    pub fn set_cost_model(&mut self, model: Arc<dyn CostModel>) {
        self.cost_model = model;
    }

    /// Clears the cache; planners call this between transformation passes
    /// when node identity may be reused.
    pub fn clear_cache(&self) {
        self.cache.lock().clear();
        self.keepalive.lock().clear();
    }

    pub fn cache_len(&self) -> usize {
        self.cache.lock().len()
    }

    fn key(&self, rel: &Rel, kind: u8, aux: u64) -> CacheKey {
        CacheKey {
            rel: Arc::as_ptr(rel) as usize,
            kind,
            aux,
        }
    }

    fn cached<T, F>(
        &self,
        rel: &Rel,
        kind: u8,
        aux: u64,
        wrap: fn(T) -> CacheVal,
        unwrap: fn(CacheVal) -> T,
        compute: F,
    ) -> T
    where
        T: Clone,
        F: FnOnce() -> T,
    {
        if !self.cache_enabled {
            return compute();
        }
        let key = self.key(rel, kind, aux);
        if let Some(v) = self.cache.lock().get(&key) {
            return unwrap(v.clone());
        }
        let v = compute();
        self.keepalive.lock().push(rel.clone());
        self.cache.lock().insert(key, wrap(v.clone()));
        v
    }

    // -----------------------------------------------------------------
    // Public metadata queries
    // -----------------------------------------------------------------

    pub fn row_count(&self, rel: &Rel) -> f64 {
        self.cached(
            rel,
            0,
            0,
            CacheVal::F64,
            |v| match v {
                CacheVal::F64(f) => f,
                _ => unreachable!(),
            },
            || {
                for p in &self.providers {
                    if let Some(v) = p.row_count(rel, self) {
                        return v.max(1e-6);
                    }
                }
                100.0
            },
        )
    }

    pub fn selectivity(&self, rel: &Rel, predicate: &RexNode) -> f64 {
        let mut h = DefaultHasher::new();
        predicate.digest().hash(&mut h);
        self.cached(
            rel,
            1,
            h.finish(),
            CacheVal::F64,
            |v| match v {
                CacheVal::F64(f) => f,
                _ => unreachable!(),
            },
            || {
                for p in &self.providers {
                    if let Some(v) = p.selectivity(rel, predicate, self) {
                        return v.clamp(0.0, 1.0);
                    }
                }
                0.25
            },
        )
    }

    pub fn distinct_count(&self, rel: &Rel, cols: &[usize]) -> f64 {
        let mut h = DefaultHasher::new();
        cols.hash(&mut h);
        self.cached(
            rel,
            2,
            h.finish(),
            CacheVal::F64,
            |v| match v {
                CacheVal::F64(f) => f,
                _ => unreachable!(),
            },
            || {
                for p in &self.providers {
                    if let Some(v) = p.distinct_count(rel, cols, self) {
                        return v.max(1.0);
                    }
                }
                (self.row_count(rel) / 10.0).max(1.0)
            },
        )
    }

    pub fn non_cumulative_cost(&self, rel: &Rel) -> Cost {
        self.cached(
            rel,
            3,
            0,
            CacheVal::Cost,
            |v| match v {
                CacheVal::Cost(c) => c,
                _ => unreachable!(),
            },
            || {
                for p in &self.providers {
                    if let Some(v) = p.non_cumulative_cost(rel, self) {
                        return v;
                    }
                }
                Cost::ZERO
            },
        )
    }

    /// Cost of the whole subtree: the paper's "overall cost of executing a
    /// subexpression in the operator tree".
    pub fn cumulative_cost(&self, rel: &Rel) -> Cost {
        self.cached(
            rel,
            4,
            0,
            CacheVal::Cost,
            |v| match v {
                CacheVal::Cost(c) => c,
                _ => unreachable!(),
            },
            || {
                let mut c = self.non_cumulative_cost(rel);
                for i in &rel.inputs {
                    c = c.plus(&self.cumulative_cost(i));
                }
                c
            },
        )
    }

    pub fn collations(&self, rel: &Rel) -> Vec<Collation> {
        self.cached(
            rel,
            5,
            0,
            CacheVal::Collations,
            |v| match v {
                CacheVal::Collations(c) => c,
                _ => unreachable!(),
            },
            || {
                for p in &self.providers {
                    if let Some(v) = p.collations(rel, self) {
                        return v;
                    }
                }
                vec![]
            },
        )
    }

    pub fn unique_keys(&self, rel: &Rel) -> Vec<Vec<usize>> {
        self.cached(
            rel,
            6,
            0,
            CacheVal::Keys,
            |v| match v {
                CacheVal::Keys(k) => k,
                _ => unreachable!(),
            },
            || {
                for p in &self.providers {
                    if let Some(v) = p.unique_keys(rel, self) {
                        return v;
                    }
                }
                vec![]
            },
        )
    }

    pub fn average_row_size(&self, rel: &Rel) -> f64 {
        for p in &self.providers {
            if let Some(v) = p.average_row_size(rel, self) {
                return v;
            }
        }
        rel.row_type().arity() as f64 * 8.0
    }

    pub fn parallelism(&self, rel: &Rel) -> f64 {
        for p in &self.providers {
            if let Some(v) = p.parallelism(rel, self) {
                return v;
            }
        }
        1.0
    }

    /// Whether the column set is known unique on `rel`.
    pub fn are_columns_unique(&self, rel: &Rel, cols: &[usize]) -> bool {
        self.unique_keys(rel)
            .iter()
            .any(|k| k.iter().all(|c| cols.contains(c)))
    }
}

/// The built-in metadata provider: implements the estimates that "Calcite
/// will do the rest of the work" with, given basic table statistics.
pub struct DefaultMdProvider;

impl DefaultMdProvider {
    fn predicate_selectivity(rel: &Rel, pred: &RexNode, mq: &MetadataQuery) -> f64 {
        let sel = match pred {
            RexNode::Literal { .. } => {
                if pred.is_always_true() {
                    1.0
                } else {
                    0.0
                }
            }
            RexNode::Call { op, args, .. } => match op {
                Op::And => args
                    .iter()
                    .map(|a| Self::predicate_selectivity(rel, a, mq))
                    .product(),
                Op::Or => args
                    .iter()
                    .map(|a| Self::predicate_selectivity(rel, a, mq))
                    .fold(0.0, |acc, s| (acc + s).min(1.0)),
                Op::Not => 1.0 - Self::predicate_selectivity(rel, &args[0], mq),
                Op::Eq => {
                    // Equality against a literal: 1/NDV when one side is a
                    // plain column reference.
                    if let (Some(col), true) = (args[0].as_input_ref(), args[1].is_literal()) {
                        1.0 / mq.distinct_count(rel, &[col])
                    } else if let (true, Some(col)) = (args[0].is_literal(), args[1].as_input_ref())
                    {
                        1.0 / mq.distinct_count(rel, &[col])
                    } else {
                        0.15
                    }
                }
                Op::Ne => 0.85,
                Op::Lt | Op::Le | Op::Gt | Op::Ge => 0.5,
                Op::Like => 0.25,
                Op::IsNull => 0.1,
                Op::IsNotNull => 0.9,
                _ => 0.25,
            },
            // A parameter's value is unknown at planning time; treat it
            // like a boolean column reference.
            RexNode::InputRef { .. } | RexNode::DynamicParam { .. } => 0.5,
        };
        // Composed estimates (nested NOT/AND chains, float round-off) can
        // land outside [0, 1]; a selectivity never can.
        sel.clamp(0.0, 1.0)
    }

    /// Join-condition selectivity relative to the Cartesian product.
    fn join_selectivity(rel: &Rel, cond: &RexNode, mq: &MetadataQuery) -> f64 {
        let left = &rel.inputs[0];
        let right = &rel.inputs[1];
        let left_arity = left.row_type().arity();
        let mut sel = 1.0;
        for c in cond.conjuncts() {
            if let RexNode::Call {
                op: Op::Eq, args, ..
            } = &c
            {
                if let (Some(a), Some(b)) = (args[0].as_input_ref(), args[1].as_input_ref()) {
                    let (lcol, rcol) = if a < left_arity && b >= left_arity {
                        (a, b - left_arity)
                    } else if b < left_arity && a >= left_arity {
                        (b, a - left_arity)
                    } else {
                        sel *= 0.15;
                        continue;
                    };
                    let ndv_l = mq.distinct_count(left, &[lcol]);
                    let ndv_r = mq.distinct_count(right, &[rcol]);
                    sel *= 1.0 / ndv_l.max(ndv_r).max(1.0);
                    continue;
                }
            }
            sel *= Self::predicate_selectivity(rel, &c, mq);
        }
        // Kept in [0, 1] so the Semi/Anti cardinality math below never
        // raises a negative base to a fractional power (NaN).
        sel.clamp(0.0, 1.0)
    }
}

impl MetadataProvider for DefaultMdProvider {
    fn row_count(&self, rel: &Rel, mq: &MetadataQuery) -> Option<f64> {
        let rc = match &rel.op {
            RelOp::Scan { table } => table.table.statistic().row_count,
            RelOp::IndexSeek {
                table, index, seek, ..
            } => {
                // Without histograms (see StatsMdProvider for the analyzed
                // path): each equality column divides by the same NDV
                // heuristic as distinct_count, a range bound halves.
                let stat = table.table.statistic();
                let n = stat.row_count.max(1.0);
                let mut total = 0.0;
                for p in &seek.probes {
                    let mut rows = n;
                    if !p.eq.is_empty() {
                        let eq_cols = &index.columns[..p.eq.len()];
                        let unique = stat
                            .keys
                            .iter()
                            .any(|k| k.iter().all(|c| eq_cols.contains(c)));
                        if unique {
                            rows = 1.0;
                        } else {
                            for _ in &p.eq {
                                rows /= (n / 10.0).max(1.0).min(n);
                            }
                        }
                    }
                    if p.lower.is_some() {
                        rows *= 0.5;
                    }
                    if p.upper.is_some() {
                        rows *= 0.5;
                    }
                    total += rows;
                }
                total.min(n)
            }
            RelOp::IndexJoin {
                kind,
                condition,
                table,
                index,
                left_keys,
            } => {
                // Same shape as the Join estimate: equi-selectivity is
                // 1/max(NDV) per key pair, with the right-side NDV read
                // from the indexed table's statistic.
                let left = &rel.inputs[0];
                let l = mq.row_count(left);
                let stat = table.table.statistic();
                let r = stat.row_count.max(1.0);
                let mut sel = 1.0;
                for (i, lk) in left_keys.iter().enumerate() {
                    let ndv_l = mq.distinct_count(left, &[*lk]);
                    let unique = stat
                        .keys
                        .iter()
                        .any(|k| k.len() == 1 && k[0] == index.columns[i]);
                    let ndv_r = if unique { r } else { (r / 10.0).max(1.0) };
                    sel *= 1.0 / ndv_l.max(ndv_r).max(1.0);
                }
                // Conjuncts beyond the probed keys act as a residual filter.
                let extra = condition.conjuncts().len().saturating_sub(left_keys.len());
                sel *= 0.25f64.powi(extra as i32);
                let sel = sel.clamp(0.0, 1.0);
                match kind {
                    crate::rel::JoinKind::Inner => l * r * sel,
                    crate::rel::JoinKind::Left => (l * r * sel).max(l),
                    crate::rel::JoinKind::Right => (l * r * sel).max(r),
                    crate::rel::JoinKind::Full => (l * r * sel).max(l + r),
                    crate::rel::JoinKind::Semi => l * (1.0 - (1.0 - sel).powf(r.max(0.0))).min(1.0),
                    crate::rel::JoinKind::Anti => {
                        l * (1.0 - sel * r.min(1.0 / sel.max(1e-9))).max(0.1)
                    }
                }
            }
            RelOp::Values { tuples, .. } => tuples.len() as f64,
            RelOp::Filter { condition } => {
                mq.row_count(&rel.inputs[0]) * mq.selectivity(&rel.inputs[0], condition)
            }
            RelOp::Project { .. } | RelOp::Window { .. } | RelOp::Delta | RelOp::Convert { .. } => {
                mq.row_count(&rel.inputs[0])
            }
            RelOp::Join { kind, condition } => {
                let l = mq.row_count(&rel.inputs[0]);
                let r = mq.row_count(&rel.inputs[1]);
                let sel = Self::join_selectivity(rel, condition, mq);
                match kind {
                    crate::rel::JoinKind::Inner => l * r * sel,
                    crate::rel::JoinKind::Left => (l * r * sel).max(l),
                    crate::rel::JoinKind::Right => (l * r * sel).max(r),
                    crate::rel::JoinKind::Full => (l * r * sel).max(l + r),
                    crate::rel::JoinKind::Semi => l * (1.0 - (1.0 - sel).powf(r.max(0.0))).min(1.0),
                    crate::rel::JoinKind::Anti => {
                        l * (1.0 - sel * r.min(1.0 / sel.max(1e-9))).max(0.1)
                    }
                }
            }
            RelOp::Aggregate { group, aggs: _ } => {
                if group.is_empty() {
                    1.0
                } else {
                    let input = &rel.inputs[0];
                    let ndv = mq.distinct_count(input, group);
                    ndv.min(mq.row_count(input))
                }
            }
            RelOp::Sort { offset, fetch, .. } => {
                let n = mq.row_count(&rel.inputs[0]);
                let after_offset = (n - offset.unwrap_or(0) as f64).max(0.0);
                match fetch {
                    Some(f) => after_offset.min(*f as f64),
                    None => after_offset,
                }
            }
            RelOp::Union { all } => {
                let total: f64 = rel.inputs.iter().map(|i| mq.row_count(i)).sum();
                if *all {
                    total
                } else {
                    total * 0.8
                }
            }
            RelOp::Intersect { .. } => {
                rel.inputs
                    .iter()
                    .map(|i| mq.row_count(i))
                    .fold(f64::INFINITY, f64::min)
                    * 0.5
            }
            RelOp::Minus { .. } => mq.row_count(&rel.inputs[0]) * 0.5,
        };
        // Degenerate inputs (empty tables, runaway products) must not leak
        // NaN/∞ into cost comparisons — those poison every plan they touch.
        if rc.is_finite() {
            Some(rc.max(1e-6))
        } else {
            Some(f64::MAX / 1e6)
        }
    }

    fn selectivity(&self, rel: &Rel, predicate: &RexNode, mq: &MetadataQuery) -> Option<f64> {
        Some(Self::predicate_selectivity(rel, predicate, mq))
    }

    fn distinct_count(&self, rel: &Rel, cols: &[usize], mq: &MetadataQuery) -> Option<f64> {
        let rc = mq.row_count(rel);
        match &rel.op {
            RelOp::Scan { table } => {
                let stat = table.table.statistic();
                let unique = stat.keys.iter().any(|k| k.iter().all(|c| cols.contains(c)));
                if unique {
                    Some(rc)
                } else {
                    Some((rc / 10.0).max(1.0).min(rc))
                }
            }
            RelOp::Filter { .. } => {
                // Distinctness shrinks with the filtered fraction but not
                // below 1.
                let input = &rel.inputs[0];
                let base = mq.distinct_count(input, cols);
                let frac = rc / mq.row_count(input).max(1e-9);
                Some((base * frac.max(0.1)).max(1.0))
            }
            RelOp::Aggregate { group, .. } => {
                // Group columns of an aggregate are unique.
                if cols.iter().all(|c| *c < group.len()) {
                    Some(rc)
                } else {
                    Some((rc / 10.0).max(1.0))
                }
            }
            _ => {
                if mq.are_columns_unique(rel, cols) {
                    Some(rc)
                } else {
                    Some((rc / 10.0).max(1.0).min(rc))
                }
            }
        }
    }

    fn non_cumulative_cost(&self, rel: &Rel, mq: &MetadataQuery) -> Option<Cost> {
        let out_rows = mq.row_count(rel);
        let factor = mq.cost_model().convention_factor(&rel.convention);
        let cost = match &rel.op {
            RelOp::Scan { .. } => Cost::new(out_rows, out_rows, out_rows, 0.0),
            RelOp::IndexSeek { table, seek, .. } => {
                // One binary search per probe plus per-row gather. The
                // gather touches rows at random positions, so each output
                // row is priced above a sequential-scan row (4 cpu + 2 io
                // vs the scan's 1 + 1): the seek only wins when the
                // estimated selectivity is genuinely narrow.
                let n = table.table.statistic().row_count.max(2.0);
                let probes = seek.probes.len().max(1) as f64;
                Cost::new(
                    out_rows,
                    probes * n.log2() + 4.0 * out_rows,
                    2.0 * out_rows,
                    0.0,
                )
            }
            RelOp::IndexJoin { table, .. } => {
                // One index probe per left row, no build side: beats hash
                // join when the left input is small relative to the
                // indexed table (which a hash join must scan and build).
                let l = mq.row_count(&rel.inputs[0]);
                let r = table.table.statistic().row_count.max(2.0);
                Cost::new(out_rows, l * r.log2() + 2.0 * out_rows, out_rows, 0.0)
            }
            RelOp::Values { tuples, .. } => {
                Cost::new(tuples.len() as f64, tuples.len() as f64, 0.0, 0.0)
            }
            RelOp::Filter { .. } => {
                // Predicate evaluation is cheap relative to join per-row
                // work (hashing/probing); the 0.5 factor reflects that.
                let n = mq.row_count(&rel.inputs[0]);
                Cost::new(out_rows, n * 0.5, 0.0, 0.0)
            }
            RelOp::Project { exprs, .. } => {
                let n = mq.row_count(&rel.inputs[0]);
                Cost::new(out_rows, n * exprs.len().max(1) as f64 * 0.25, 0.0, 0.0)
            }
            RelOp::Join { .. } => {
                let l = mq.row_count(&rel.inputs[0]);
                let r = mq.row_count(&rel.inputs[1]);
                // Hash-join shaped, matching the executors: the RIGHT input
                // is the build side (hash table memory + ~3 units/row to
                // build), the left streams through as probe (~1 unit/row).
                // The asymmetry is what lets JoinCommuteRule win when the
                // smaller input isn't already on the right.
                Cost::new(out_rows, l + 3.0 * r + out_rows, 0.0, r)
            }
            RelOp::Aggregate { .. } => {
                let n = mq.row_count(&rel.inputs[0]);
                Cost::new(out_rows, n, 0.0, out_rows)
            }
            RelOp::Sort {
                collation, fetch, ..
            } => {
                let n = mq.row_count(&rel.inputs[0]);
                if collation.is_empty() {
                    // Pure limit.
                    Cost::new(out_rows, out_rows, 0.0, 0.0)
                } else if let Some(f) = fetch {
                    // Top-K heap.
                    let k = (*f as f64).max(1.0);
                    Cost::new(out_rows, n * k.log2().max(1.0), 0.0, k)
                } else {
                    Cost::new(out_rows, n * n.max(2.0).log2(), 0.0, n)
                }
            }
            RelOp::Window { functions } => {
                let n = mq.row_count(&rel.inputs[0]);
                Cost::new(
                    out_rows,
                    n * n.max(2.0).log2() * functions.len().max(1) as f64,
                    0.0,
                    n,
                )
            }
            RelOp::Union { .. } | RelOp::Intersect { .. } | RelOp::Minus { .. } => {
                let n: f64 = rel.inputs.iter().map(|i| mq.row_count(i)).sum();
                Cost::new(out_rows, n, 0.0, out_rows)
            }
            RelOp::Delta => Cost::new(out_rows, 0.0, 0.0, 0.0),
            RelOp::Convert { .. } => {
                // Rows crossing an engine boundary pay a transfer IO cost:
                // this is what makes pushing work *into* backends win.
                let n = mq.row_count(&rel.inputs[0]);
                Cost::new(out_rows, n, n * mq.cost_model().transfer_factor(), 0.0)
            }
        };
        Some(cost.times(factor))
    }

    fn collations(&self, rel: &Rel, mq: &MetadataQuery) -> Option<Vec<Collation>> {
        match &rel.op {
            RelOp::Scan { table } => Some(table.table.statistic().collations),
            RelOp::Sort { collation, .. } => {
                if collation.is_empty() {
                    Some(mq.collations(&rel.inputs[0]))
                } else {
                    Some(vec![collation.clone()])
                }
            }
            RelOp::Filter { .. } | RelOp::Delta | RelOp::Convert { .. } => {
                Some(mq.collations(&rel.inputs[0]))
            }
            RelOp::Project { exprs, .. } => {
                // A collation survives projection if every prefix column is
                // projected as a bare reference.
                let mut out = vec![];
                for c in mq.collations(&rel.inputs[0]) {
                    let mut mapped = vec![];
                    'fields: for fc in &c {
                        for (i, e) in exprs.iter().enumerate() {
                            if e.as_input_ref() == Some(fc.field) {
                                mapped.push(crate::traits::FieldCollation {
                                    field: i,
                                    descending: fc.descending,
                                    nulls_first: fc.nulls_first,
                                });
                                continue 'fields;
                            }
                        }
                        break;
                    }
                    if !mapped.is_empty() {
                        out.push(mapped);
                    }
                }
                Some(out)
            }
            _ => Some(vec![]),
        }
    }

    fn unique_keys(&self, rel: &Rel, mq: &MetadataQuery) -> Option<Vec<Vec<usize>>> {
        match &rel.op {
            RelOp::Scan { table } => Some(table.table.statistic().keys),
            RelOp::Filter { .. } | RelOp::Sort { .. } | RelOp::Delta | RelOp::Convert { .. } => {
                Some(mq.unique_keys(&rel.inputs[0]))
            }
            RelOp::Aggregate { group, .. } => {
                if group.is_empty() {
                    Some(vec![])
                } else {
                    Some(vec![(0..group.len()).collect()])
                }
            }
            RelOp::Project { exprs, .. } => {
                let mut out = vec![];
                for key in mq.unique_keys(&rel.inputs[0]) {
                    let mapped: Option<Vec<usize>> = key
                        .iter()
                        .map(|k| exprs.iter().position(|e| e.as_input_ref() == Some(*k)))
                        .collect();
                    if let Some(m) = mapped {
                        out.push(m);
                    }
                }
                Some(out)
            }
            _ => Some(vec![]),
        }
    }

    fn average_row_size(&self, rel: &Rel, _mq: &MetadataQuery) -> Option<f64> {
        Some(rel.row_type().arity() as f64 * 8.0)
    }

    fn parallelism(&self, rel: &Rel, mq: &MetadataQuery) -> Option<f64> {
        match &rel.op {
            RelOp::Scan { .. } | RelOp::Values { .. } => Some(1.0),
            _ => Some(
                rel.inputs
                    .iter()
                    .map(|i| mq.parallelism(i))
                    .fold(1.0, f64::max),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemTable, Statistic, TableRef};
    use crate::rel::{self, JoinKind};
    use crate::traits::Convention;
    use crate::types::{RelType, RowTypeBuilder, TypeKind};
    use std::sync::Arc;

    fn table(rows: f64, keys: Vec<Vec<usize>>) -> TableRef {
        let t = MemTable::new(
            RowTypeBuilder::new()
                .add_not_null("id", TypeKind::Integer)
                .add("v", TypeKind::Double)
                .build(),
            vec![],
        )
        .with_statistic(Statistic {
            row_count: rows,
            keys,
            collations: vec![],
        });
        TableRef::new("s", "t", t)
    }

    #[test]
    fn scan_row_count_from_statistics() {
        let mq = MetadataQuery::standard();
        let s = rel::scan(table(500.0, vec![]));
        assert_eq!(mq.row_count(&s), 500.0);
    }

    #[test]
    fn filter_reduces_row_count() {
        let mq = MetadataQuery::standard();
        let s = rel::scan(table(1000.0, vec![]));
        let f = rel::filter(
            s.clone(),
            RexNode::input(1, RelType::nullable(TypeKind::Double)).gt(RexNode::lit_double(0.0)),
        );
        assert!(mq.row_count(&f) < mq.row_count(&s));
        assert_eq!(mq.row_count(&f), 500.0);
    }

    #[test]
    fn equality_on_unique_key_selects_one_row() {
        let mq = MetadataQuery::standard();
        let s = rel::scan(table(1000.0, vec![vec![0]]));
        let f = rel::filter(
            s,
            RexNode::input(0, RelType::not_null(TypeKind::Integer)).eq(RexNode::lit_int(7)),
        );
        assert!((mq.row_count(&f) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn join_row_count_uses_key_ndv() {
        let mq = MetadataQuery::standard();
        let dims = rel::scan(table(100.0, vec![vec![0]]));
        let facts = rel::scan(table(10_000.0, vec![]));
        // facts.id = dims.id: the estimate must be far below the Cartesian
        // product (1e6) and scale with the key NDV.
        let cond = RexNode::input(0, RelType::not_null(TypeKind::Integer))
            .eq(RexNode::input(2, RelType::not_null(TypeKind::Integer)));
        let j = rel::join(facts, dims, JoinKind::Inner, cond);
        let rc = mq.row_count(&j);
        assert!(
            (100.0..=10_000.0).contains(&rc),
            "rc = {rc} should be well below the 1e6 Cartesian product"
        );
    }

    #[test]
    fn aggregate_cardinality_bounded_by_input() {
        let mq = MetadataQuery::standard();
        let s = rel::scan(table(1000.0, vec![]));
        let agg = rel::aggregate(s, vec![0], vec![]);
        assert!(mq.row_count(&agg) <= 1000.0);
        let global = rel::aggregate(rel::scan(table(1000.0, vec![])), vec![], vec![]);
        assert_eq!(mq.row_count(&global), 1.0);
    }

    #[test]
    fn limit_caps_row_count() {
        let mq = MetadataQuery::standard();
        let s = rel::scan(table(1000.0, vec![]));
        let lim = rel::sort_limit(s, vec![], None, Some(10));
        assert_eq!(mq.row_count(&lim), 10.0);
    }

    #[test]
    fn cumulative_cost_grows_with_tree() {
        let mq = MetadataQuery::standard();
        let s = rel::scan(table(1000.0, vec![]));
        let f = rel::filter(
            s.clone(),
            RexNode::input(0, RelType::not_null(TypeKind::Integer)).gt(RexNode::lit_int(0)),
        );
        let cs = mq.cumulative_cost(&s);
        let cf = mq.cumulative_cost(&f);
        assert!(mq.cost_model().weigh(&cf) > mq.cost_model().weigh(&cs));
    }

    #[test]
    fn convert_costs_transfer_io() {
        let mq = MetadataQuery::standard();
        let s = rel::scan(table(1000.0, vec![]));
        let conv = crate::rel::RelNode::new(
            crate::rel::RelOp::Convert {
                from: Convention::none(),
            },
            Convention::enumerable(),
            vec![s],
        );
        let c = mq.non_cumulative_cost(&conv);
        assert!(c.io > 0.0, "converter must charge IO, got {c}");
    }

    #[test]
    fn cache_hits_make_cache_nonempty() {
        let mq = MetadataQuery::standard();
        let s = rel::scan(table(1000.0, vec![]));
        assert_eq!(mq.cache_len(), 0);
        let _ = mq.row_count(&s);
        let before = mq.cache_len();
        let _ = mq.row_count(&s);
        assert_eq!(mq.cache_len(), before);
        assert!(before > 0);
        mq.clear_cache();
        assert_eq!(mq.cache_len(), 0);
    }

    #[test]
    fn custom_provider_overrides_default() {
        struct Fixed;
        impl MetadataProvider for Fixed {
            fn row_count(&self, _rel: &Rel, _mq: &MetadataQuery) -> Option<f64> {
                Some(42.0)
            }
        }
        let mq = MetadataQuery::with_providers(vec![Arc::new(Fixed)]);
        let s = rel::scan(table(1000.0, vec![]));
        assert_eq!(mq.row_count(&s), 42.0);
        // Other metadata still answered by the default provider.
        assert!(mq.cumulative_cost(&s).cpu > 0.0);
    }

    #[test]
    fn composed_selectivities_stay_in_unit_interval() {
        let mq = MetadataQuery::standard();
        let s = rel::scan(table(1000.0, vec![]));
        let p = RexNode::input(1, RelType::nullable(TypeKind::Double)).gt(RexNode::lit_double(0.0));
        // NOT over an AND of many clauses: the unclamped product can round
        // below 0 / above 1; the estimate must stay a probability.
        let and = RexNode::call(Op::And, vec![p.clone(); 8]);
        let not = RexNode::call(Op::Not, vec![and.clone()]);
        let double_not = RexNode::call(Op::Not, vec![not.clone()]);
        for pred in [&and, &not, &double_not] {
            let sel = mq.selectivity(&s, pred);
            assert!((0.0..=1.0).contains(&sel), "sel = {sel}");
        }
        // Deep NOT chains over OR folds likewise.
        let or = RexNode::call(Op::Or, vec![p; 16]);
        let sel = mq.selectivity(&s, &RexNode::call(Op::Not, vec![or]));
        assert!((0.0..=1.0).contains(&sel), "sel = {sel}");
    }

    #[test]
    fn empty_table_estimates_stay_finite() {
        let mq = MetadataQuery::standard();
        let empty = rel::scan(table(0.0, vec![]));
        let other = rel::scan(table(0.0, vec![]));
        // row_count floors at a positive epsilon, never 0/NaN.
        let rc = mq.row_count(&empty);
        assert!(rc.is_finite() && rc > 0.0, "rc = {rc}");
        // Semi/Anti cardinality math on empty inputs must not produce NaN
        // (negative base to fractional power) or divide-by-zero artifacts.
        let cond = RexNode::input(0, RelType::not_null(TypeKind::Integer))
            .eq(RexNode::input(2, RelType::not_null(TypeKind::Integer)));
        for kind in [
            JoinKind::Inner,
            JoinKind::Left,
            JoinKind::Full,
            JoinKind::Semi,
            JoinKind::Anti,
        ] {
            let j = rel::join(empty.clone(), other.clone(), kind, cond.clone());
            let rc = mq.row_count(&j);
            assert!(rc.is_finite() && rc > 0.0, "join rc = {rc}");
            let cost = mq.cumulative_cost(&j);
            assert!(mq.cost_model().weigh(&cost).is_finite());
        }
    }

    #[test]
    fn join_cost_charges_build_on_right_input() {
        // The executors build the hash table on input(1): putting the big
        // input there must cost strictly more, so commute can flip it.
        let mq = MetadataQuery::standard();
        let big = rel::scan(table(10_000.0, vec![]));
        let small = rel::scan(table(100.0, vec![]));
        let cond = RexNode::input(0, RelType::not_null(TypeKind::Integer))
            .eq(RexNode::input(2, RelType::not_null(TypeKind::Integer)));
        let build_small = rel::join(big.clone(), small.clone(), JoinKind::Inner, cond.clone());
        let build_big = rel::join(small, big, JoinKind::Inner, cond);
        let cs = mq.non_cumulative_cost(&build_small);
        let cb = mq.non_cumulative_cost(&build_big);
        assert!(
            cs.memory < cb.memory,
            "memory {} !< {}",
            cs.memory,
            cb.memory
        );
        assert!(
            mq.cost_model().weigh(&cs) < mq.cost_model().weigh(&cb),
            "build-small must be cheaper"
        );
    }

    #[test]
    fn unique_keys_through_project() {
        let mq = MetadataQuery::standard();
        let s = rel::scan(table(100.0, vec![vec![0]]));
        let p = rel::project(
            s,
            vec![
                RexNode::input(1, RelType::nullable(TypeKind::Double)),
                RexNode::input(0, RelType::not_null(TypeKind::Integer)),
            ],
            vec!["v".into(), "id".into()],
        );
        assert!(mq.are_columns_unique(&p, &[1]));
        assert!(!mq.are_columns_unique(&p, &[0]));
    }
}
