//! Secondary indexes. The paper frames the optimizer as choosing among
//! physical access paths supplied by adapters via rules and cost (§5);
//! this module supplies the access paths: ordered (sorted-permutation,
//! binary-search) and hash indexes over any positionally-addressable
//! store, plus the planner-side seek description ([`SeekSpec`]) and the
//! execution-side bound probe ([`BoundProbe`]).
//!
//! The machinery is backend-neutral: it reads table data through
//! [`KeyAccess`] so the same build/insert/probe code serves core's
//! row-based `MemTable` and memdb's columnar `MemRelation`. Indexes are
//! maintained incrementally on INSERT (motivated by the constant-delay-
//! under-updates line of work) rather than rebuilt per write.

use crate::datum::{Datum, Row};
use crate::error::{CalciteError, Result};
use crate::rex::RexNode;
use std::collections::HashMap;
use std::sync::Arc;

/// Physical shape of an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// A permutation of row positions sorted by the key columns
    /// (B-tree-style): supports point, prefix and range seeks.
    Ordered,
    /// Key → positions map: full-key equality probes only.
    Hash,
}

impl IndexKind {
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::Ordered => "ordered",
            IndexKind::Hash => "hash",
        }
    }
}

/// Catalog description of one index: a name, the key columns (base-table
/// field positions, significant order) and the physical kind.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexDef {
    pub name: String,
    pub columns: Vec<usize>,
    pub kind: IndexKind,
}

impl IndexDef {
    pub fn ordered(name: impl Into<String>, columns: Vec<usize>) -> IndexDef {
        IndexDef {
            name: name.into(),
            columns,
            kind: IndexKind::Ordered,
        }
    }

    pub fn hash(name: impl Into<String>, columns: Vec<usize>) -> IndexDef {
        IndexDef {
            name: name.into(),
            columns,
            kind: IndexKind::Hash,
        }
    }

    /// Stable text form for plan digests and EXPLAIN.
    pub fn digest(&self) -> String {
        let cols: Vec<String> = self.columns.iter().map(|c| format!("${c}")).collect();
        format!("{}:{}[{}]", self.name, self.kind.name(), cols.join(","))
    }
}

/// Positional access to table data, the surface indexes are built over and
/// probed against. `datum` may be called for any column (not just key
/// columns): seek results gather full rows through it.
pub trait KeyAccess {
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    fn arity(&self) -> usize;
    fn datum(&self, row: usize, col: usize) -> Datum;
}

/// [`KeyAccess`] over a shared row vector (`MemTable` snapshots): an
/// `Arc` clone of the copy-on-write store, so taking the snapshot is
/// O(1) and later writes never disturb it.
pub struct RowsAccess {
    pub rows: Arc<Vec<Row>>,
    pub arity: usize,
}

impl KeyAccess for RowsAccess {
    fn len(&self) -> usize {
        self.rows.len()
    }

    fn arity(&self) -> usize {
        self.arity
    }

    fn datum(&self, row: usize, col: usize) -> Datum {
        self.rows[row][col].clone()
    }
}

/// Borrowed [`KeyAccess`] over a row slice (in-place index maintenance).
pub struct RowsRef<'a> {
    pub rows: &'a [Row],
    pub arity: usize,
}

impl KeyAccess for RowsRef<'_> {
    fn len(&self) -> usize {
        self.rows.len()
    }

    fn arity(&self) -> usize {
        self.arity
    }

    fn datum(&self, row: usize, col: usize) -> Datum {
        self.rows[row][col].clone()
    }
}

/// A seek probe with concrete values, produced by binding a [`SeekProbe`]
/// at execution time. `eq` constrains the leading key columns; the
/// optional bounds constrain the key column right after the `eq` prefix.
/// SQL comparison semantics apply: a NULL in a key column never matches,
/// and a NULL bound value matches nothing.
#[derive(Debug, Clone, Default)]
pub struct BoundProbe {
    pub eq: Vec<Datum>,
    pub lower: Option<(Datum, bool)>,
    pub upper: Option<(Datum, bool)>,
}

impl BoundProbe {
    pub fn point(eq: Vec<Datum>) -> BoundProbe {
        BoundProbe {
            eq,
            lower: None,
            upper: None,
        }
    }

    /// Whether the probe can match anything at all (no NULL constants).
    fn satisfiable(&self) -> bool {
        !self.eq.iter().any(Datum::is_null)
            && !matches!(&self.lower, Some((d, _)) if d.is_null())
            && !matches!(&self.upper, Some((d, _)) if d.is_null())
    }

    /// Row-level form of the probe predicate, used by fallback paths (and
    /// tests) to evaluate the probe without an index. Must agree exactly
    /// with what [`IndexData::probe`] returns.
    pub fn matches(&self, data: &dyn KeyAccess, row: usize, def: &IndexDef) -> bool {
        if !self.satisfiable() {
            return false;
        }
        for (i, want) in self.eq.iter().enumerate() {
            let v = data.datum(row, def.columns[i]);
            if v.is_null() || v != *want {
                return false;
            }
        }
        if self.lower.is_none() && self.upper.is_none() {
            return true;
        }
        let Some(col) = def.columns.get(self.eq.len()) else {
            return false;
        };
        let v = data.datum(row, *col);
        if v.is_null() {
            return false;
        }
        if let Some((b, inclusive)) = &self.lower {
            if if *inclusive { v < *b } else { v <= *b } {
                return false;
            }
        }
        if let Some((b, inclusive)) = &self.upper {
            if if *inclusive { v > *b } else { v >= *b } {
                return false;
            }
        }
        true
    }
}

#[derive(Debug, Clone)]
enum IndexState {
    /// Row positions sorted by (key, position). Equal keys keep ascending
    /// positions, so range segments stream in table order.
    Ordered(Vec<usize>),
    /// Key → ascending positions. Keys containing NULL are not stored:
    /// no equality probe can match them.
    Hash(HashMap<Vec<Datum>, Vec<usize>>),
}

/// One index instance over some table data. The data itself is *not*
/// owned: callers pass the matching [`KeyAccess`] to every operation, so
/// a copy-on-write snapshot of the table snapshots the index with it.
#[derive(Debug, Clone)]
pub struct IndexData {
    pub def: IndexDef,
    state: IndexState,
}

impl IndexData {
    /// Builds the index over the current contents of `data`.
    pub fn build(def: IndexDef, data: &dyn KeyAccess) -> Result<IndexData> {
        if def.columns.is_empty() {
            return Err(CalciteError::validate(format!(
                "index '{}' has no key columns",
                def.name
            )));
        }
        for c in &def.columns {
            if *c >= data.arity() {
                return Err(CalciteError::validate(format!(
                    "index '{}' key column {c} out of range",
                    def.name
                )));
            }
        }
        let n = data.len();
        let state = match def.kind {
            IndexKind::Ordered => {
                let keys: Vec<Vec<Datum>> = (0..n).map(|r| key_of(data, &def.columns, r)).collect();
                let mut perm: Vec<usize> = (0..n).collect();
                perm.sort_by(|a, b| keys[*a].cmp(&keys[*b]).then(a.cmp(b)));
                IndexState::Ordered(perm)
            }
            IndexKind::Hash => {
                let mut map: HashMap<Vec<Datum>, Vec<usize>> = HashMap::new();
                for r in 0..n {
                    let key = key_of(data, &def.columns, r);
                    if !key.iter().any(Datum::is_null) {
                        map.entry(key).or_default().push(r);
                    }
                }
                IndexState::Hash(map)
            }
        };
        Ok(IndexData { def, state })
    }

    /// Incrementally indexes the row at position `pos` (already present in
    /// `data`). Positions need not arrive in order: both shapes insert at
    /// the sorted point, so ordered permutations keep their (key, position)
    /// order and hash postings stay ascending.
    pub fn insert(&mut self, data: &dyn KeyAccess, pos: usize) {
        let key = key_of(data, &self.def.columns, pos);
        match &mut self.state {
            IndexState::Ordered(perm) => {
                let cols = &self.def.columns;
                let at = perm.partition_point(|&p| {
                    key_of(data, cols, p).cmp(&key).then(p.cmp(&pos)) == std::cmp::Ordering::Less
                });
                perm.insert(at, pos);
            }
            IndexState::Hash(map) => {
                if !key.iter().any(Datum::is_null) {
                    let postings = map.entry(key).or_default();
                    let at = postings.partition_point(|&p| p < pos);
                    postings.insert(at, pos);
                }
            }
        }
    }

    /// Applies an UPDATE/DELETE delta incrementally: `remap` gives each
    /// old position's new position (`None` = deleted) and `reinserted`
    /// lists the new positions whose rows changed or appeared (see
    /// [`crate::txn::DeltaOutcome`]). `data` is the *post-delta* table.
    ///
    /// Survivor entries are remapped in place — `remap` is monotonic over
    /// survivors, so both the ordered permutation's (key, position) order
    /// and the hash postings' ascending order are preserved — and changed
    /// rows are re-keyed through [`IndexData::insert`]. Cost is
    /// O(n + changes · log n), never a rebuild, and because the index is
    /// copy-on-write-snapshotted with its table, open probe snapshots
    /// keep serving the pre-delta state.
    pub fn apply_delta(
        &mut self,
        data: &dyn KeyAccess,
        remap: &[Option<usize>],
        reinserted: &[usize],
    ) {
        // Bitmap over new positions: O(1) membership without hashing on
        // the O(n) retain pass below.
        let mut changed = vec![false; data.len()];
        for &pos in reinserted {
            if let Some(flag) = changed.get_mut(pos) {
                *flag = true;
            }
        }
        let survives = |p: &mut usize| -> bool {
            match remap.get(*p).copied().flatten() {
                Some(np) if !changed[np] => {
                    *p = np;
                    true
                }
                _ => false,
            }
        };
        match &mut self.state {
            IndexState::Ordered(perm) => {
                perm.retain_mut(survives);
                Self::merge_ordered(perm, data, &self.def.columns, reinserted);
            }
            IndexState::Hash(map) => {
                map.retain(|_, postings| {
                    postings.retain_mut(survives);
                    !postings.is_empty()
                });
                for &pos in reinserted {
                    self.insert(data, pos);
                }
            }
        }
    }

    /// Batch-inserts `reinserted` into an ordered permutation: each entry's
    /// slot is found by binary search, then one back-to-front pass shifts
    /// every surviving segment exactly once — O(n + k log n) instead of
    /// the k · O(n) memmoves of repeated point inserts.
    fn merge_ordered(
        perm: &mut Vec<usize>,
        data: &dyn KeyAccess,
        cols: &[usize],
        reinserted: &[usize],
    ) {
        if reinserted.is_empty() {
            return;
        }
        let mut incoming: Vec<(Vec<Datum>, usize)> = reinserted
            .iter()
            .map(|&pos| (key_of(data, cols, pos), pos))
            .collect();
        incoming.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        // Ascending because `incoming` is sorted by the same comparator.
        let slots: Vec<usize> = incoming
            .iter()
            .map(|(key, pos)| {
                perm.partition_point(|&p| {
                    key_of(data, cols, p).cmp(key).then(p.cmp(pos)) == std::cmp::Ordering::Less
                })
            })
            .collect();
        let old_len = perm.len();
        perm.resize(old_len + incoming.len(), 0);
        let mut read = old_len;
        let mut write = perm.len();
        for (i, (_, pos)) in incoming.iter().enumerate().rev() {
            while read > slots[i] {
                read -= 1;
                write -= 1;
                perm[write] = perm[read];
            }
            write -= 1;
            perm[write] = *pos;
        }
    }

    /// Row positions matching `probe`, ascending. Shapes the physical
    /// index cannot serve (a range probe against a hash index, a probe
    /// past the key arity) fall back to a full position scan so the
    /// answer is always exact.
    pub fn probe(&self, data: &dyn KeyAccess, probe: &BoundProbe) -> Vec<usize> {
        if !probe.satisfiable() || probe.eq.len() > self.def.columns.len() {
            return vec![];
        }
        let ranged = probe.lower.is_some() || probe.upper.is_some();
        if ranged && probe.eq.len() >= self.def.columns.len() {
            return vec![]; // range column beyond the key: unsatisfiable shape
        }
        match &self.state {
            IndexState::Hash(map) => {
                if ranged || probe.eq.len() != self.def.columns.len() {
                    return self.scan_fallback(data, probe);
                }
                map.get(&probe.eq).cloned().unwrap_or_default()
            }
            IndexState::Ordered(perm) => {
                let cols = &self.def.columns;
                // Narrow to the run of keys whose prefix equals `eq`.
                let prefix_cmp = |p: usize| -> std::cmp::Ordering {
                    for (i, want) in probe.eq.iter().enumerate() {
                        let ord = data.datum(p, cols[i]).cmp(want);
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                };
                let lo = perm.partition_point(|&p| prefix_cmp(p) == std::cmp::Ordering::Less);
                let hi = lo
                    + perm[lo..].partition_point(|&p| prefix_cmp(p) != std::cmp::Ordering::Greater);
                let (mut lo, mut hi) = (lo, hi);
                if ranged {
                    let rcol = cols[probe.eq.len()];
                    // NULLs sort first under the Datum total order and no
                    // comparison matches them: skip them at the front.
                    lo += perm[lo..hi].partition_point(|&p| data.datum(p, rcol).is_null());
                    if let Some((b, inclusive)) = &probe.lower {
                        lo += perm[lo..hi].partition_point(|&p| {
                            let v = data.datum(p, rcol);
                            if *inclusive {
                                v < *b
                            } else {
                                v <= *b
                            }
                        });
                    }
                    if let Some((b, inclusive)) = &probe.upper {
                        hi = lo
                            + perm[lo..hi].partition_point(|&p| {
                                let v = data.datum(p, rcol);
                                if *inclusive {
                                    v <= *b
                                } else {
                                    v < *b
                                }
                            });
                    }
                }
                let mut out = perm[lo..hi].to_vec();
                // Results must stream in table order so an index plan is
                // byte-identical to the filter-over-scan it replaces.
                out.sort_unstable();
                out
            }
        }
    }

    fn scan_fallback(&self, data: &dyn KeyAccess, probe: &BoundProbe) -> Vec<usize> {
        (0..data.len())
            .filter(|r| probe.matches(data, *r, &self.def))
            .collect()
    }
}

fn key_of(data: &dyn KeyAccess, columns: &[usize], row: usize) -> Vec<Datum> {
    columns.iter().map(|c| data.datum(row, *c)).collect()
}

/// A consistent snapshot a table hands out for index probes: positions,
/// rows and the index all refer to the same point-in-time data, so an
/// in-flight index-nested-loop join is undisturbed by concurrent INSERTs
/// (same contract as [`crate::catalog::RangeScan`]).
pub trait IndexProbe: Send + Sync {
    fn row_count(&self) -> usize;

    /// Matching row positions, ascending.
    fn positions(&self, probe: &BoundProbe) -> Vec<usize>;

    /// The full row at `pos`.
    fn row(&self, pos: usize) -> Row;
}

/// The one [`IndexProbe`] implementation backends need: a point-in-time
/// [`KeyAccess`] plus the matching index snapshot.
pub struct SnapshotProbe<A: KeyAccess + Send + Sync> {
    pub data: A,
    pub index: Arc<IndexData>,
}

impl<A: KeyAccess + Send + Sync> IndexProbe for SnapshotProbe<A> {
    fn row_count(&self) -> usize {
        self.data.len()
    }

    fn positions(&self, probe: &BoundProbe) -> Vec<usize> {
        self.index.probe(&self.data, probe)
    }

    fn row(&self, pos: usize) -> Row {
        (0..self.data.arity())
            .map(|c| self.data.datum(pos, c))
            .collect()
    }
}

/// Positions matching any of `probes`, merged into ascending table order
/// and deduped (overlapping IN-list probes must not duplicate rows).
pub fn seek_positions(snap: &dyn IndexProbe, probes: &[BoundProbe]) -> Vec<usize> {
    let mut all: Vec<usize> = vec![];
    for p in probes {
        all.extend(snap.positions(p));
    }
    all.sort_unstable();
    all.dedup();
    all
}

/// Full rows for [`seek_positions`], in table order.
pub fn seek_rows(snap: &dyn IndexProbe, probes: &[BoundProbe]) -> Vec<Row> {
    seek_positions(snap, probes)
        .into_iter()
        .map(|p| snap.row(p))
        .collect()
}

// ---------------------------------------------------------------------
// Planner-side seek description
// ---------------------------------------------------------------------

/// One unbound probe: constant row expressions (literals or dynamic
/// parameters) for the leading key columns, plus optional bounds on the
/// next key column. Bound against the execution context into a
/// [`BoundProbe`].
#[derive(Debug, Clone)]
pub struct SeekProbe {
    pub eq: Vec<RexNode>,
    pub lower: Option<(RexNode, bool)>,
    pub upper: Option<(RexNode, bool)>,
}

impl SeekProbe {
    pub fn point(eq: Vec<RexNode>) -> SeekProbe {
        SeekProbe {
            eq,
            lower: None,
            upper: None,
        }
    }

    fn digest(&self) -> String {
        let mut parts: Vec<String> = self.eq.iter().map(|e| format!("={}", e.digest())).collect();
        if let Some((b, inclusive)) = &self.lower {
            parts.push(format!(
                "{}{}",
                if *inclusive { ">=" } else { ">" },
                b.digest()
            ));
        }
        if let Some((b, inclusive)) = &self.upper {
            parts.push(format!(
                "{}{}",
                if *inclusive { "<=" } else { "<" },
                b.digest()
            ));
        }
        parts.join(" ")
    }
}

/// The access-path payload of an `IndexSeek` plan node: one probe for a
/// point/range seek, several for an IN-list multi-probe.
#[derive(Debug, Clone)]
pub struct SeekSpec {
    pub probes: Vec<SeekProbe>,
}

impl SeekSpec {
    pub fn digest(&self) -> String {
        let parts: Vec<String> = self.probes.iter().map(|p| p.digest()).collect();
        format!("[{}]", parts.join("; "))
    }

    /// Every constant expression carried by the seek (for parameter
    /// discovery and binding).
    pub fn exprs(&self) -> Vec<&RexNode> {
        let mut out = vec![];
        for p in &self.probes {
            out.extend(p.eq.iter());
            if let Some((b, _)) = &p.lower {
                out.push(b);
            }
            if let Some((b, _)) = &p.upper {
                out.push(b);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(vals: Vec<Vec<Option<i64>>>) -> RowsAccess {
        let arity = vals.first().map_or(0, Vec::len);
        RowsAccess {
            rows: Arc::new(
                vals.into_iter()
                    .map(|r| {
                        r.into_iter()
                            .map(|v| v.map_or(Datum::Null, Datum::Int))
                            .collect()
                    })
                    .collect(),
            ),
            arity,
        }
    }

    #[test]
    fn apply_delta_matches_fresh_build() {
        // Old data: 6 rows keyed by column 0 with duplicates and a NULL.
        let old = data(vec![
            vec![Some(3), Some(0)],
            vec![Some(1), Some(1)],
            vec![Some(3), Some(2)],
            vec![None, Some(3)],
            vec![Some(2), Some(4)],
            vec![Some(1), Some(5)],
        ]);
        // Delta: delete pos 1, update pos 4 (key 2 -> 9), append one row
        // (key 3). New positions: 0->0, 2->1, 3->2, 4->3(updated), 5->4,
        // appended at 5.
        let new = data(vec![
            vec![Some(3), Some(0)],
            vec![Some(3), Some(2)],
            vec![None, Some(3)],
            vec![Some(9), Some(4)],
            vec![Some(1), Some(5)],
            vec![Some(3), Some(6)],
        ]);
        let remap = [Some(0), None, Some(1), Some(2), Some(3), Some(4)];
        let reinserted = [3, 5];
        for def in [
            IndexDef::ordered("i", vec![0]),
            IndexDef::hash("i", vec![0]),
        ] {
            let mut idx = IndexData::build(def.clone(), &old).unwrap();
            idx.apply_delta(&new, &remap, &reinserted);
            let fresh = IndexData::build(def, &new).unwrap();
            for key in [1i64, 2, 3, 9] {
                let probe = BoundProbe::point(vec![Datum::Int(key)]);
                assert_eq!(
                    idx.probe(&new, &probe),
                    fresh.probe(&new, &probe),
                    "incremental and rebuilt indexes disagree on key {key}"
                );
            }
        }
    }

    #[test]
    fn ordered_point_and_range_probe() {
        let d = data(vec![
            vec![Some(3), Some(30)],
            vec![Some(1), Some(10)],
            vec![Some(3), Some(31)],
            vec![None, Some(99)],
            vec![Some(2), Some(20)],
        ]);
        let idx = IndexData::build(IndexDef::ordered("i", vec![0]), &d).unwrap();
        assert_eq!(
            idx.probe(&d, &BoundProbe::point(vec![Datum::Int(3)])),
            vec![0, 2]
        );
        assert_eq!(
            idx.probe(&d, &BoundProbe::point(vec![Datum::Int(7)])),
            Vec::<usize>::new()
        );
        // NULL keys never match a probe, equality or range.
        assert_eq!(
            idx.probe(&d, &BoundProbe::point(vec![Datum::Null])),
            Vec::<usize>::new()
        );
        let range = BoundProbe {
            eq: vec![],
            lower: Some((Datum::Int(2), true)),
            upper: Some((Datum::Int(3), false)),
        };
        assert_eq!(idx.probe(&d, &range), vec![4]);
        let open_below = BoundProbe {
            eq: vec![],
            lower: None,
            upper: Some((Datum::Int(3), true)),
        };
        // Lower-unbounded ranges must skip the NULL run at the front.
        assert_eq!(idx.probe(&d, &open_below), vec![0, 1, 2, 4]);
    }

    #[test]
    fn ordered_prefix_probe_with_range() {
        let d = data(vec![
            vec![Some(1), Some(10)],
            vec![Some(1), Some(20)],
            vec![Some(2), Some(10)],
            vec![Some(1), None],
        ]);
        let idx = IndexData::build(IndexDef::ordered("i", vec![0, 1]), &d).unwrap();
        let p = BoundProbe {
            eq: vec![Datum::Int(1)],
            lower: Some((Datum::Int(10), false)),
            upper: None,
        };
        // Unbounded-above within the prefix: the NULL second key (row 3)
        // must not leak in.
        assert_eq!(idx.probe(&d, &p), vec![1]);
        assert_eq!(
            idx.probe(&d, &BoundProbe::point(vec![Datum::Int(1), Datum::Int(10)])),
            vec![0]
        );
    }

    #[test]
    fn hash_probe_and_shape_fallback() {
        let d = data(vec![
            vec![Some(1), Some(10)],
            vec![Some(2), Some(20)],
            vec![Some(1), Some(30)],
            vec![None, Some(40)],
        ]);
        let idx = IndexData::build(IndexDef::hash("h", vec![0]), &d).unwrap();
        assert_eq!(
            idx.probe(&d, &BoundProbe::point(vec![Datum::Int(1)])),
            vec![0, 2]
        );
        assert_eq!(
            idx.probe(&d, &BoundProbe::point(vec![Datum::Null])),
            Vec::<usize>::new()
        );
        // A range probe against a hash index still answers (full scan).
        let range = BoundProbe {
            eq: vec![],
            lower: Some((Datum::Int(2), true)),
            upper: None,
        };
        assert_eq!(idx.probe(&d, &range), vec![1]);
    }

    #[test]
    fn incremental_insert_matches_rebuild() {
        let mut rows = vec![vec![Some(5)], vec![Some(1)], vec![Some(5)], vec![None]];
        let d0 = data(rows.clone());
        let mut ordered = IndexData::build(IndexDef::ordered("o", vec![0]), &d0).unwrap();
        let mut hash = IndexData::build(IndexDef::hash("h", vec![0]), &d0).unwrap();
        for v in [Some(5), Some(0), None, Some(9)] {
            rows.push(vec![v]);
            let d = data(rows.clone());
            ordered.insert(&d, rows.len() - 1);
            hash.insert(&d, rows.len() - 1);
        }
        let d = data(rows.clone());
        let rebuilt_o = IndexData::build(IndexDef::ordered("o", vec![0]), &d).unwrap();
        let rebuilt_h = IndexData::build(IndexDef::hash("h", vec![0]), &d).unwrap();
        for v in [0i64, 1, 5, 9, 42] {
            let p = BoundProbe::point(vec![Datum::Int(v)]);
            assert_eq!(ordered.probe(&d, &p), rebuilt_o.probe(&d, &p), "v={v}");
            assert_eq!(hash.probe(&d, &p), rebuilt_h.probe(&d, &p), "v={v}");
        }
        let range = BoundProbe {
            eq: vec![],
            lower: Some((Datum::Int(1), true)),
            upper: Some((Datum::Int(5), true)),
        };
        assert_eq!(ordered.probe(&d, &range), rebuilt_o.probe(&d, &range));
    }

    #[test]
    fn seek_merges_and_dedups_probes() {
        let d = data(vec![vec![Some(1)], vec![Some(2)], vec![Some(1)]]);
        let idx = Arc::new(IndexData::build(IndexDef::ordered("i", vec![0]), &d).unwrap());
        let snap = SnapshotProbe {
            data: d,
            index: idx,
        };
        let probes = vec![
            BoundProbe::point(vec![Datum::Int(1)]),
            BoundProbe::point(vec![Datum::Int(2)]),
            BoundProbe::point(vec![Datum::Int(1)]), // duplicate IN value
        ];
        assert_eq!(seek_positions(&snap, &probes), vec![0, 1, 2]);
        assert_eq!(
            seek_rows(&snap, &probes),
            vec![
                vec![Datum::Int(1)],
                vec![Datum::Int(2)],
                vec![Datum::Int(1)]
            ]
        );
    }

    #[test]
    fn build_validates_columns() {
        let d = data(vec![vec![Some(1)]]);
        assert!(IndexData::build(IndexDef::ordered("i", vec![]), &d).is_err());
        assert!(IndexData::build(IndexDef::ordered("i", vec![5]), &d).is_err());
    }
}
