//! Plan rendering: indented text (EXPLAIN) and Graphviz dot.

use crate::metadata::MetadataQuery;
use crate::rel::Rel;
use std::fmt::Write;

/// Renders a plan as an indented operator tree.
pub fn explain(rel: &Rel) -> String {
    let mut out = String::new();
    fmt_node(rel, 0, None, &mut out);
    out
}

/// Renders a plan with per-node row-count and cumulative-cost annotations.
pub fn explain_with_costs(rel: &Rel, mq: &MetadataQuery) -> String {
    let mut out = String::new();
    fmt_node(rel, 0, Some(mq), &mut out);
    out
}

fn fmt_node(rel: &Rel, depth: usize, mq: Option<&MetadataQuery>, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    let _ = write!(out, "{} [{}]", rel.op.payload_digest(), rel.convention);
    if let Some(mq) = mq {
        let _ = write!(
            out,
            " rows={:.1} cost={}",
            mq.row_count(rel),
            mq.cumulative_cost(rel)
        );
    }
    out.push('\n');
    for i in &rel.inputs {
        fmt_node(i, depth + 1, mq, out);
    }
}

/// Renders the planner's estimated output rows per operator as a single
/// `-- est:` comment line (preorder, scans labelled with their table), so
/// estimate accuracy is visible — and testable — next to a plan:
///
/// ```text
/// -- est: Join=10 Filter=10 Scan(hr.big)=20000 Scan(hr.small)=100
/// ```
pub fn explain_estimates(rel: &Rel, mq: &MetadataQuery) -> String {
    let mut parts = vec![];
    collect_estimates(rel, mq, &mut parts);
    format!("-- est: {}\n", parts.join(" "))
}

fn collect_estimates(rel: &Rel, mq: &MetadataQuery, out: &mut Vec<String>) {
    let label = match &rel.op {
        crate::rel::RelOp::Scan { table } => format!("Scan({})", table.qualified_name()),
        crate::rel::RelOp::IndexSeek { table, index, .. } => {
            format!("IndexSeek({}.{})", table.qualified_name(), index.name)
        }
        crate::rel::RelOp::IndexJoin { table, index, .. } => {
            format!("IndexJoin({}.{})", table.qualified_name(), index.name)
        }
        op => format!("{:?}", op.kind()),
    };
    out.push(format!("{label}={:.0}", mq.row_count(rel)));
    for i in &rel.inputs {
        collect_estimates(i, mq, out);
    }
}

/// Renders a plan as a Graphviz digraph (for inspecting Figure 2/4-style
/// transformations visually).
pub fn to_dot(rel: &Rel) -> String {
    let mut out = String::from("digraph plan {\n  node [shape=box, fontname=\"monospace\"];\n");
    let mut counter = 0usize;
    dot_node(rel, &mut counter, &mut out);
    out.push_str("}\n");
    out
}

fn dot_node(rel: &Rel, counter: &mut usize, out: &mut String) -> usize {
    let id = *counter;
    *counter += 1;
    let label = format!("{}\\n[{}]", rel.op.payload_digest(), rel.convention).replace('"', "\\\"");
    let _ = writeln!(out, "  n{id} [label=\"{label}\"];");
    for i in &rel.inputs {
        let cid = dot_node(i, counter, out);
        let _ = writeln!(out, "  n{id} -> n{cid};");
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemTable, TableRef};
    use crate::rel;
    use crate::rex::RexNode;
    use crate::types::{RelType, RowTypeBuilder, TypeKind};

    fn plan() -> Rel {
        let t = MemTable::new(
            RowTypeBuilder::new()
                .add_not_null("a", TypeKind::Integer)
                .build(),
            vec![],
        );
        rel::filter(
            rel::scan(TableRef::new("s", "t", t)),
            RexNode::input(0, RelType::not_null(TypeKind::Integer)).gt(RexNode::lit_int(1)),
        )
    }

    #[test]
    fn explain_is_indented_tree() {
        let text = explain(&plan());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("Filter"));
        assert!(lines[1].starts_with("  Scan"));
        assert!(lines[0].contains("[logical]"));
    }

    #[test]
    fn explain_with_costs_annotates() {
        let mq = MetadataQuery::standard();
        let text = explain_with_costs(&plan(), &mq);
        assert!(text.contains("rows="));
        assert!(text.contains("cost="));
    }

    #[test]
    fn dot_output_is_well_formed() {
        let dot = to_dot(&plan());
        assert!(dot.starts_with("digraph plan {"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
