//! Unified error type shared by every rcalcite crate.

use std::fmt;

/// Errors produced by parsing, validation, planning or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalciteError {
    /// SQL text could not be tokenized or parsed.
    Parse(String),
    /// The statement parsed but failed semantic validation
    /// (unknown column, type mismatch, non-monotonic stream grouping, ...).
    Validate(String),
    /// The planner could not produce a plan (no implementation for a
    /// convention, cost extraction failure, unsupported operation).
    Plan(String),
    /// Runtime failure while executing a plan.
    Execution(String),
    /// The feature is recognized but not supported.
    Unsupported(String),
    /// Invariant violation; indicates a bug in rcalcite itself.
    Internal(String),
    /// First-committer-wins serialization failure: another transaction
    /// committed a conflicting write first. Retryable — re-running the
    /// losing transaction against the new state is expected to succeed.
    TxnConflict(String),
}

impl CalciteError {
    pub fn parse(msg: impl Into<String>) -> Self {
        CalciteError::Parse(msg.into())
    }
    pub fn validate(msg: impl Into<String>) -> Self {
        CalciteError::Validate(msg.into())
    }
    pub fn plan(msg: impl Into<String>) -> Self {
        CalciteError::Plan(msg.into())
    }
    pub fn execution(msg: impl Into<String>) -> Self {
        CalciteError::Execution(msg.into())
    }
    pub fn unsupported(msg: impl Into<String>) -> Self {
        CalciteError::Unsupported(msg.into())
    }
    pub fn internal(msg: impl Into<String>) -> Self {
        CalciteError::Internal(msg.into())
    }
    pub fn txn_conflict(msg: impl Into<String>) -> Self {
        CalciteError::TxnConflict(msg.into())
    }

    /// Whether retrying the failed operation can succeed. Only
    /// serialization failures qualify: the conflicting committer has
    /// already finished, so a fresh attempt sees its writes.
    pub fn is_retryable(&self) -> bool {
        matches!(self, CalciteError::TxnConflict(_))
    }
}

impl fmt::Display for CalciteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalciteError::Parse(m) => write!(f, "parse error: {m}"),
            CalciteError::Validate(m) => write!(f, "validation error: {m}"),
            CalciteError::Plan(m) => write!(f, "planning error: {m}"),
            CalciteError::Execution(m) => write!(f, "execution error: {m}"),
            CalciteError::Unsupported(m) => write!(f, "unsupported: {m}"),
            CalciteError::Internal(m) => write!(f, "internal error: {m}"),
            CalciteError::TxnConflict(m) => {
                write!(f, "serialization failure (retry the transaction): {m}")
            }
        }
    }
}

impl std::error::Error for CalciteError {}

/// Convenient result alias used across the workspace.
pub type Result<T, E = CalciteError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = CalciteError::parse("unexpected token `)`");
        assert_eq!(e.to_string(), "parse error: unexpected token `)`");
        let e = CalciteError::validate("column 'x' not found");
        assert!(e.to_string().starts_with("validation error:"));
        let e = CalciteError::plan("no plan");
        assert!(e.to_string().contains("no plan"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CalciteError::parse("a"), CalciteError::Parse("a".into()));
        assert_ne!(CalciteError::parse("a"), CalciteError::validate("a"));
    }

    #[test]
    fn conflict_is_the_only_retryable_error() {
        let e = CalciteError::txn_conflict("write-write conflict on hr.emp");
        assert!(e.is_retryable());
        assert!(e.to_string().starts_with("serialization failure"));
        assert!(!CalciteError::execution("boom").is_retryable());
        assert!(!CalciteError::validate("nope").is_retryable());
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(CalciteError::execution("boom"));
        assert!(e.to_string().contains("boom"));
    }
}
