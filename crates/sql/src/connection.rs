//! The embedded connection facade — rcalcite's analogue of Calcite's JDBC
//! driver entry point (Avatica). A `Connection` owns the catalog, function
//! registry, planner configuration and execution context; engines and
//! adapters plug their rules, converters and executors into it.

use crate::ast::Stmt;
use crate::converter::{ast_type_to_kind, query_to_rel_with_views};
use crate::parser::parse;
use parking_lot::RwLock;
use rcalcite_core::catalog::{Catalog, MemTable, TableRef};
use rcalcite_core::cost::CostModel;
use rcalcite_core::datum::{Datum, Row};
use rcalcite_core::error::Result;
use rcalcite_core::exec::{ConventionExecutor, ExecContext};
use rcalcite_core::explain::explain_with_costs;
use rcalcite_core::lattice::{Lattice, LatticeRule};
use rcalcite_core::metadata::{MetadataProvider, MetadataQuery};
use rcalcite_core::mv::{Materialization, MaterializedViewRule};
use rcalcite_core::planner::hep::HepPlanner;
use rcalcite_core::planner::volcano::{FixpointMode, VolcanoPlanner};
use rcalcite_core::planner::PlannerEngine;
use rcalcite_core::rel::Rel;
use rcalcite_core::rex::FunctionRegistry;
use rcalcite_core::rules::{default_logical_rules, Rule};
use rcalcite_core::traits::Convention;
use std::sync::Arc;

/// Result of a query: column names plus materialized rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// Formats the result as an aligned text table (for examples/demos).
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(&"-".repeat(out.len().saturating_sub(1)));
        out.push('\n');
        for row in &cells {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(0)))
                .collect();
            out.push_str(&line.join(" | "));
            out.push('\n');
        }
        out
    }
}

/// An embedded rcalcite connection.
pub struct Connection {
    catalog: Arc<Catalog>,
    functions: FunctionRegistry,
    exec: ExecContext,
    rules: Vec<Arc<dyn Rule>>,
    converters: Vec<(Convention, Convention)>,
    providers: Vec<Arc<dyn MetadataProvider>>,
    cost_model: Option<Arc<dyn CostModel>>,
    materializations: RwLock<Vec<Materialization>>,
    lattices: Vec<Arc<Lattice>>,
    mode: FixpointMode,
    metadata_cache: bool,
    /// Named views (lowercase) created through DDL; expanded inline.
    views: RwLock<std::collections::HashMap<String, Rel>>,
}

impl Connection {
    pub fn new(catalog: Arc<Catalog>) -> Connection {
        Connection {
            catalog,
            functions: FunctionRegistry::new(),
            exec: ExecContext::new(),
            rules: default_logical_rules(),
            converters: vec![],
            providers: vec![],
            cost_model: None,
            materializations: RwLock::new(vec![]),
            lattices: vec![],
            mode: FixpointMode::Exhaustive,
            metadata_cache: true,
            views: RwLock::new(std::collections::HashMap::new()),
        }
    }

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    pub fn functions_mut(&mut self) -> &mut FunctionRegistry {
        &mut self.functions
    }

    pub fn functions(&self) -> &FunctionRegistry {
        &self.functions
    }

    /// Registers a planner rule (adapter pushdown, implementation, ...).
    pub fn add_rule(&mut self, rule: Arc<dyn Rule>) {
        self.rules.push(rule);
    }

    /// Registers a convention converter edge.
    pub fn add_converter(&mut self, from: Convention, to: Convention) {
        self.converters.push((from, to));
    }

    /// Registers an executor for a convention.
    pub fn register_executor(&mut self, executor: Arc<dyn ConventionExecutor>) {
        self.exec.register(executor);
    }

    pub fn exec_context(&self) -> &ExecContext {
        &self.exec
    }

    /// Registers a materialization. The defining plan is normalized with
    /// the same heuristic phase queries go through, so the substitution
    /// matcher compares like with like.
    pub fn add_materialization(&self, m: Materialization) {
        let mq = self.metadata_query();
        let hep = HepPlanner::new(default_logical_rules());
        let (normalized, _) = hep.optimize_counted(&m.plan, &mq);
        self.materializations
            .write()
            .push(Materialization::new(m.name, m.table, normalized));
    }

    pub fn add_lattice(&mut self, l: Arc<Lattice>) {
        self.lattices.push(l);
    }

    /// Prepends a metadata provider (consulted before the defaults).
    pub fn add_metadata_provider(&mut self, p: Arc<dyn MetadataProvider>) {
        self.providers.push(p);
    }

    pub fn set_cost_model(&mut self, m: Arc<dyn CostModel>) {
        self.cost_model = Some(m);
    }

    /// Switches the cost-based engine's termination mode (§6: exhaustive
    /// or cost-improvement threshold δ).
    pub fn set_fixpoint_mode(&mut self, mode: FixpointMode) {
        self.mode = mode;
    }

    /// Disables the metadata cache (for benchmarking its effect).
    pub fn set_metadata_cache(&mut self, enabled: bool) {
        self.metadata_cache = enabled;
    }

    pub fn metadata_query(&self) -> MetadataQuery {
        MetadataQuery::new(
            self.providers.clone(),
            self.cost_model
                .clone()
                .unwrap_or_else(|| Arc::new(rcalcite_core::cost::DefaultCostModel::new())),
            self.metadata_cache,
        )
    }

    /// Parses and validates SQL into a logical plan.
    pub fn parse_to_rel(&self, sql: &str) -> Result<Rel> {
        match parse(sql)? {
            Stmt::Query(q) | Stmt::Explain(q) => self.convert(&q),
            other => Err(rcalcite_core::error::CalciteError::validate(format!(
                "not a query: {other:?}"
            ))),
        }
    }

    fn convert(&self, q: &crate::ast::Query) -> Result<Rel> {
        let views = self.views.read();
        query_to_rel_with_views(&self.catalog, &self.functions, &views, q)
    }

    /// Registers a named view (also done by `CREATE VIEW`).
    pub fn add_view(&self, name: impl Into<String>, plan: Rel) {
        self.views
            .write()
            .insert(name.into().to_ascii_lowercase(), plan);
    }

    fn volcano(&self) -> VolcanoPlanner {
        let mut rules = self.rules.clone();
        let mats = self.materializations.read();
        if !mats.is_empty() {
            rules.push(Arc::new(MaterializedViewRule::new(mats.clone())));
        }
        if !self.lattices.is_empty() {
            rules.push(Arc::new(LatticeRule::new(self.lattices.clone())));
        }
        let mut planner = VolcanoPlanner::new(rules).with_mode(self.mode);
        for (from, to) in &self.converters {
            planner.add_converter(from.clone(), to.clone());
        }
        planner
    }

    /// Optimizes a logical plan into an executable plan in the enumerable
    /// convention, using the paper's multi-stage scheme: a heuristic
    /// normalization phase followed by cost-based planning.
    pub fn optimize(&self, logical: &Rel) -> Result<Rel> {
        let mq = self.metadata_query();
        let hep = HepPlanner::new(default_logical_rules());
        let normalized = hep.optimize(logical, &Convention::enumerable(), &mq)?;
        self.volcano()
            .optimize(&normalized, &Convention::enumerable(), &mq)
    }

    /// Parses, optimizes and executes a statement (query, EXPLAIN, or the
    /// DDL/DML surface of §9's standalone-engine future work).
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        use rcalcite_core::error::CalciteError;
        let message = |m: String| QueryResult {
            columns: vec!["result".into()],
            rows: vec![vec![Datum::str(m)]],
        };
        match parse(sql)? {
            Stmt::Explain(q) => {
                let logical = self.convert(&q)?;
                let physical = self.optimize(&logical)?;
                let mq = self.metadata_query();
                let text = explain_with_costs(&physical, &mq);
                Ok(QueryResult {
                    columns: vec!["PLAN".into()],
                    rows: text.lines().map(|l| vec![Datum::str(l)]).collect(),
                })
            }
            Stmt::Query(q) => {
                let logical = self.convert(&q)?;
                let physical = self.optimize(&logical)?;
                let rows = self.exec.execute_collect(&physical)?;
                Ok(QueryResult {
                    columns: logical
                        .row_type()
                        .fields
                        .iter()
                        .map(|f| f.name.clone())
                        .collect(),
                    rows,
                })
            }
            Stmt::CreateTable { name, columns } => {
                let (schema_name, table_name) = self.split_name(&name)?;
                let schema = self.catalog.schema(&schema_name).ok_or_else(|| {
                    CalciteError::validate(format!("schema '{schema_name}' not found"))
                })?;
                let mut b = rcalcite_core::types::RowTypeBuilder::new();
                for c in &columns {
                    let kind = ast_type_to_kind(&c.ty);
                    b = if c.not_null {
                        b.add_not_null(c.name.clone(), kind)
                    } else {
                        b.add(c.name.clone(), kind)
                    };
                }
                schema.add_table(table_name.clone(), MemTable::new(b.build(), vec![]));
                Ok(message(format!("table {schema_name}.{table_name} created")))
            }
            Stmt::CreateView { name, query } => {
                let plan = self.convert(&query)?;
                let key = name.join(".").to_ascii_lowercase();
                self.views.write().insert(key.clone(), plan);
                Ok(message(format!("view {key} created")))
            }
            Stmt::CreateMaterializedView { name, query } => {
                // Execute the definition now, store the rows, and register
                // both a materialization (for the optimizer's rewriting)
                // and a view (for direct reference).
                let plan = self.convert(&query)?;
                let physical = self.optimize(&plan)?;
                let rows = self.exec.execute_collect(&physical)?;
                let n = rows.len();
                let table = MemTable::new(plan.row_type().clone(), rows);
                let key = name.join(".").to_ascii_lowercase();
                let tref = TableRef::new("mv", key.clone(), table);
                self.views
                    .write()
                    .insert(key.clone(), rcalcite_core::rel::scan(tref.clone()));
                // Registered through add_materialization so the defining
                // plan is normalized; the rebuilt planner picks it up on
                // the next optimize call.
                self.add_materialization(rcalcite_core::mv::Materialization::new(
                    key.clone(),
                    tref,
                    plan,
                ));
                Ok(message(format!(
                    "materialized view {key} created ({n} rows)"
                )))
            }
            Stmt::Insert { table, source } => {
                let (schema_name, table_name) = self.split_name(&table)?;
                let tref = self.catalog.resolve(&[&schema_name, &table_name])?;
                let mem = tref.table.as_mem_table().ok_or_else(|| {
                    CalciteError::unsupported(format!(
                        "INSERT is only supported on built-in tables, not '{}'",
                        tref.qualified_name()
                    ))
                })?;
                let plan = self.convert(&source)?;
                let arity = tref.table.row_type().arity();
                if plan.row_type().arity() != arity {
                    return Err(CalciteError::validate(format!(
                        "INSERT arity mismatch: table has {arity} columns, query produces {}",
                        plan.row_type().arity()
                    )));
                }
                let physical = self.optimize(&plan)?;
                let rows = self.exec.execute_collect(&physical)?;
                let n = rows.len();
                for row in rows {
                    mem.insert(row);
                }
                Ok(message(format!("{n} rows inserted")))
            }
            Stmt::DropTable { name, if_exists } => {
                let (schema_name, table_name) = self.split_name(&name)?;
                let schema = self.catalog.schema(&schema_name).ok_or_else(|| {
                    CalciteError::validate(format!("schema '{schema_name}' not found"))
                })?;
                let existed = schema.remove_table(&table_name);
                if !existed && !if_exists {
                    return Err(CalciteError::validate(format!(
                        "table '{schema_name}.{table_name}' not found"
                    )));
                }
                Ok(message(format!(
                    "table {schema_name}.{table_name} {}",
                    if existed { "dropped" } else { "did not exist" }
                )))
            }
        }
    }

    /// Resolves `[schema.]name` to (schema, name) using the default schema.
    fn split_name(&self, parts: &[String]) -> Result<(String, String)> {
        use rcalcite_core::error::CalciteError;
        match parts {
            [t] => {
                let s = self.catalog.default_schema_name().ok_or_else(|| {
                    CalciteError::validate("no default schema for unqualified name")
                })?;
                Ok((s, t.to_ascii_lowercase()))
            }
            [s, t] => Ok((s.to_ascii_lowercase(), t.to_ascii_lowercase())),
            _ => Err(CalciteError::validate(format!(
                "cannot resolve name {parts:?}"
            ))),
        }
    }

    /// EXPLAIN helper returning the plan as one string.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let logical = self.parse_to_rel(sql)?;
        let physical = self.optimize(&logical)?;
        let mq = self.metadata_query();
        Ok(explain_with_costs(&physical, &mq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcalcite_core::catalog::{MemTable, Schema};
    use rcalcite_core::types::{RowTypeBuilder, TypeKind};

    fn connection() -> Connection {
        let catalog = Catalog::new();
        let s = Schema::new();
        s.add_table(
            "emp",
            MemTable::new(
                RowTypeBuilder::new()
                    .add_not_null("deptno", TypeKind::Integer)
                    .add("sal", TypeKind::Integer)
                    .build(),
                vec![
                    vec![Datum::Int(10), Datum::Int(100)],
                    vec![Datum::Int(10), Datum::Int(200)],
                    vec![Datum::Int(20), Datum::Int(300)],
                ],
            ),
        );
        catalog.add_schema("hr", s);
        let mut conn = Connection::new(catalog);
        // Wire in the enumerable engine the way a host system would.
        conn.add_rule(rcalcite_enumerable::implement_rule());
        conn.register_executor(Arc::new(rcalcite_enumerable::EnumerableExecutor::new()));
        conn
    }

    #[test]
    fn end_to_end_sql() {
        let conn = connection();
        let r = conn
            .query("SELECT deptno, SUM(sal) AS total FROM emp GROUP BY deptno ORDER BY deptno")
            .unwrap();
        assert_eq!(r.columns, vec!["deptno", "total"]);
        assert_eq!(
            r.rows,
            vec![
                vec![Datum::Int(10), Datum::Int(300)],
                vec![Datum::Int(20), Datum::Int(300)],
            ]
        );
    }

    #[test]
    fn explain_returns_physical_plan() {
        let conn = connection();
        let text = conn
            .explain("SELECT deptno FROM emp WHERE sal > 150")
            .unwrap();
        assert!(text.contains("[enumerable]"), "{text}");
        assert!(text.contains("rows="), "{text}");
    }

    #[test]
    fn explain_statement_through_query() {
        let conn = connection();
        let r = conn.query("EXPLAIN SELECT deptno FROM emp").unwrap();
        assert_eq!(r.columns, vec!["PLAN"]);
        assert!(!r.rows.is_empty());
    }

    #[test]
    fn query_result_table_format() {
        let conn = connection();
        let r = conn
            .query("SELECT deptno FROM emp ORDER BY deptno LIMIT 1")
            .unwrap();
        let table = r.to_table();
        assert!(table.contains("deptno"));
        assert!(table.contains("10"));
    }

    #[test]
    fn fixpoint_mode_and_cache_toggles_preserve_results() {
        let mut conn = connection();
        let sql = "SELECT deptno, SUM(sal) AS total FROM emp GROUP BY deptno ORDER BY deptno";
        let reference = conn.query(sql).unwrap();
        conn.set_fixpoint_mode(
            rcalcite_core::planner::volcano::FixpointMode::CostThreshold {
                delta: 0.05,
                patience: 2,
            },
        );
        assert_eq!(conn.query(sql).unwrap(), reference);
        conn.set_metadata_cache(false);
        assert_eq!(conn.query(sql).unwrap(), reference);
    }

    #[test]
    fn errors_propagate() {
        let conn = connection();
        assert!(conn.query("SELECT nope FROM emp").is_err());
        assert!(conn.query("SELEC 1").is_err());
    }
}
