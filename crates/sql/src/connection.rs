//! The embedded connection facade — rcalcite's analogue of Calcite's JDBC
//! driver entry point (Avatica). A `Connection` owns the catalog, function
//! registry, planner configuration and execution context; engines and
//! adapters plug their rules, converters and executors into it.
//!
//! The query surface is prepared-statement shaped, as in Avatica:
//! [`Connection::prepare`] compiles SQL (with `?` placeholders) once into
//! a cached physical plan, and the resulting [`PreparedStatement`] binds
//! values and streams rows many times without re-planning.
//! [`Connection::query`] and [`Connection::execute`] ride the same plan
//! cache.

use crate::ast::{Expr, Query, Select, SelectItem, SetExpr, Stmt, TableExpr};
use crate::converter::{ast_type_to_kind, query_to_rel_with_views};
use crate::parser::parse;
use crate::prepared::{ConnectionBuilder, ExecutionMode, PreparedStatement, ResultSet};
use crate::validator::collect_plan_params;
use parking_lot::RwLock;
use rcalcite_core::catalog::{Catalog, MemTable, TableRef};
use rcalcite_core::cost::CostModel;
use rcalcite_core::datum::{Datum, Row};
use rcalcite_core::error::Result;
use rcalcite_core::exec::{ConventionExecutor, ExecContext};
use rcalcite_core::explain::explain_with_costs;
use rcalcite_core::index::{seek_positions, BoundProbe, IndexDef, SeekSpec};
use rcalcite_core::lattice::{Lattice, LatticeRule};
use rcalcite_core::metadata::{MetadataProvider, MetadataQuery};
use rcalcite_core::mv::{Materialization, MaterializedViewRule};
use rcalcite_core::planner::hep::HepPlanner;
use rcalcite_core::planner::volcano::{FixpointMode, VolcanoPlanner};
use rcalcite_core::planner::PlannerEngine;
use rcalcite_core::rel::{Rel, RelNode, RelOp};
use rcalcite_core::rex::{FunctionRegistry, RexNode};
use rcalcite_core::rules::{default_logical_rules, index_access_rules, Rule};
use rcalcite_core::stats::{analyze_table, StatsMdProvider};
use rcalcite_core::traits::Convention;
use rcalcite_core::txn::{DeltaOp, ReadView, Transaction};
use rcalcite_core::types::{RelType, TypeKind};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Result of a query: column names plus materialized rows. This is the
/// thin materialized view of a [`ResultSet`] — `ResultSet::collect()`
/// produces one; use the cursor directly to stream instead.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// Formats the result as an aligned text table (for examples/demos).
    pub fn to_table(&self) -> String {
        let width = |s: &str| s.chars().count();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        // Column widths cover the header and every rendered cell, by
        // character count (not bytes, so multi-byte datums stay aligned).
        let arity = cells
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
            .max(self.columns.len());
        let mut widths = vec![0usize; arity];
        for (i, c) in self.columns.iter().enumerate() {
            widths[i] = width(c);
        }
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(width(c));
            }
        }
        let pad = |s: &str, w: usize| {
            let mut s = s.to_string();
            s.extend(std::iter::repeat_n(' ', w.saturating_sub(width(&s))));
            s
        };
        let header = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| pad(c, widths[i]))
            .collect::<Vec<_>>()
            .join(" | ");
        // The divider spans the header's character width (falling back to
        // the widest row for headerless results).
        let divider_len =
            width(&header).max(widths.iter().sum::<usize>() + 3 * arity.saturating_sub(1));
        let mut out = header;
        out.push('\n');
        out.push_str(&"-".repeat(divider_len));
        out.push('\n');
        for row in &cells {
            let line = row
                .iter()
                .enumerate()
                .map(|(i, c)| pad(c, widths[i]))
                .collect::<Vec<_>>()
                .join(" | ");
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// A query compiled all the way to a physical plan, shared between the
/// plan cache and any prepared statements holding it.
pub(crate) struct CachedPlan {
    /// Output column names (from the logical plan, before physical
    /// rewrites).
    pub columns: Vec<String>,
    /// The optimized physical plan, parameters still unbound.
    pub physical: Rel,
    /// Declared type of each `?` parameter.
    pub params: Vec<RelType>,
    /// Catalog/config generation this plan was compiled under; a bump
    /// (DDL, INSERT, planner reconfiguration) invalidates it.
    pub generation: u64,
}

/// Bounded LRU of compiled plans, keyed by SQL text. Recency is an
/// atomic per-entry counter so cache *hits* — the server-workload hot
/// path — run entirely under the outer read lock.
struct PlanCache {
    capacity: usize,
    tick: AtomicU64,
    entries: HashMap<String, (Arc<CachedPlan>, AtomicU64)>,
}

impl PlanCache {
    /// `capacity` 0 disables caching entirely (every statement re-plans;
    /// the bench baseline).
    fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity,
            tick: AtomicU64::new(0),
            entries: HashMap::new(),
        }
    }

    /// Lookup through a shared reference (read-lock friendly).
    fn get(&self, key: &str) -> Option<Arc<CachedPlan>> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        self.entries.get(key).map(|(plan, used)| {
            used.store(tick, Ordering::Relaxed);
            plan.clone()
        })
    }

    fn insert(&mut self, key: String, plan: Arc<CachedPlan>) {
        if self.capacity == 0 {
            return;
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            // Evict the least recently used entry.
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(key, (plan, AtomicU64::new(tick)));
    }

    fn clear(&mut self) {
        self.entries.clear();
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// An embedded rcalcite connection.
pub struct Connection {
    catalog: Arc<Catalog>,
    functions: FunctionRegistry,
    exec: ExecContext,
    rules: Vec<Arc<dyn Rule>>,
    converters: Vec<(Convention, Convention)>,
    providers: Vec<Arc<dyn MetadataProvider>>,
    cost_model: Option<Arc<dyn CostModel>>,
    materializations: RwLock<Vec<Materialization>>,
    lattices: Vec<Arc<Lattice>>,
    mode: FixpointMode,
    metadata_cache: bool,
    /// Named views (lowercase) created through DDL; expanded inline.
    views: RwLock<std::collections::HashMap<String, Rel>>,
    /// How query plans execute: row iterators or the vectorized batch
    /// tree (with or without fusion). Set through [`ConnectionBuilder`].
    pub(crate) exec_mode: ExecutionMode,
    /// Compiled plans keyed by SQL text, bounded LRU.
    plan_cache: RwLock<PlanCache>,
    /// The assembled cost-based planner (rules + converters +
    /// materializations), built once and reused until configuration
    /// changes.
    planner: RwLock<Option<Arc<VolcanoPlanner>>>,
    /// The same planner without the materialized-view substitution rule.
    /// Transaction-scoped plans, DML locate plans and REFRESH recomputes
    /// compile through it (see [`Connection::optimize_no_mv`]).
    planner_no_mv: RwLock<Option<Arc<VolcanoPlanner>>>,
    /// The heuristic normalization phase, fixed for the connection.
    hep: HepPlanner,
    /// Bumped by DDL/INSERT and planner reconfiguration; cached plans
    /// compiled under an older generation are discarded.
    generation: AtomicU64,
    /// The explicit transaction opened by BEGIN, if any. While set,
    /// queries read through its snapshot (scans are substituted at plan
    /// time) and DML stages into it instead of autocommitting.
    txn: RwLock<Option<Transaction>>,
}

impl Connection {
    pub fn new(catalog: Arc<Catalog>) -> Connection {
        Connection {
            catalog,
            functions: FunctionRegistry::new(),
            exec: ExecContext::new(),
            // The cost-based battery also weighs index access paths; the
            // heuristic phase below runs the logical battery only (index
            // choice is a cost decision, never a forced rewrite).
            rules: {
                let mut rules = default_logical_rules();
                rules.extend(index_access_rules());
                rules
            },
            converters: vec![],
            providers: vec![],
            cost_model: None,
            materializations: RwLock::new(vec![]),
            lattices: vec![],
            mode: FixpointMode::Exhaustive,
            metadata_cache: true,
            views: RwLock::new(std::collections::HashMap::new()),
            exec_mode: ExecutionMode::Row,
            plan_cache: RwLock::new(PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)),
            planner: RwLock::new(None),
            planner_no_mv: RwLock::new(None),
            hep: HepPlanner::new(default_logical_rules()),
            generation: AtomicU64::new(0),
            txn: RwLock::new(None),
        }
    }

    /// The preferred way to open a connection: picks the execution mode,
    /// planner settings and plan-cache size, and wires the default
    /// enumerable rules and executor so callers stop hand-registering
    /// them.
    pub fn builder(catalog: Arc<Catalog>) -> ConnectionBuilder {
        ConnectionBuilder::new(catalog)
    }

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    pub fn functions_mut(&mut self) -> &mut FunctionRegistry {
        // UDF changes alter what SQL means; compiled plans are stale.
        self.invalidate_plans();
        &mut self.functions
    }

    pub fn functions(&self) -> &FunctionRegistry {
        &self.functions
    }

    /// The execution mode query plans run in.
    pub fn execution_mode(&self) -> ExecutionMode {
        self.exec_mode
    }

    /// Sets the worker count and morsel size the batch engine's
    /// exchange operators use. Purely an execution-time setting —
    /// compiled plans stay valid. Set through
    /// [`ConnectionBuilder::workers`]/[`ConnectionBuilder::morsel_size`]
    /// normally.
    pub fn set_parallelism(&mut self, p: rcalcite_core::exec::Parallelism) {
        self.exec.set_parallelism(p);
    }

    /// The parallel-execution settings queries run with.
    pub fn parallelism(&self) -> rcalcite_core::exec::Parallelism {
        self.exec.parallelism()
    }

    /// Caps the bytes build-then-stream operators hold in memory before
    /// degrading to their out-of-core forms. Execution-time only —
    /// compiled plans stay valid. Set through
    /// [`ConnectionBuilder::memory_budget`] normally.
    pub fn set_memory_budget(&mut self, budget: rcalcite_core::buffer::MemoryBudget) {
        self.exec.set_memory_budget(budget);
    }

    /// The memory budget queries run under.
    pub fn memory_budget(&self) -> &rcalcite_core::buffer::MemoryBudget {
        self.exec.memory_budget()
    }

    /// The recorder of spill activity (operators spilled, bytes moved)
    /// accumulated across this connection's queries. Tests assert
    /// through it that generous budgets never touch disk.
    pub fn spill_stats(&self) -> &rcalcite_core::buffer::SpillTracker {
        self.exec.spill_tracker()
    }

    /// Registers a planner rule (adapter pushdown, implementation, ...).
    pub fn add_rule(&mut self, rule: Arc<dyn Rule>) {
        self.rules.push(rule);
        self.invalidate_planner();
    }

    /// Registers a convention converter edge.
    pub fn add_converter(&mut self, from: Convention, to: Convention) {
        self.converters.push((from, to));
        self.invalidate_planner();
    }

    /// Registers an executor for a convention.
    pub fn register_executor(&mut self, executor: Arc<dyn ConventionExecutor>) {
        self.exec.register(executor);
    }

    pub fn exec_context(&self) -> &ExecContext {
        &self.exec
    }

    /// Registers a materialization. The defining plan is normalized with
    /// the same heuristic phase queries go through, so the substitution
    /// matcher compares like with like.
    pub fn add_materialization(&self, m: Materialization) {
        let mq = self.metadata_query();
        let (normalized, _) = self.hep.optimize_counted(&m.plan, &mq);
        let mut normalized_m = Materialization::new(m.name, m.table, normalized);
        if let Some(view) = m.maintained {
            // Keep the freshness handle: substitution consults it before
            // serving reads from the view.
            normalized_m = normalized_m.with_maintained(view);
        }
        self.materializations.write().push(normalized_m);
        self.invalidate_planner_shared();
    }

    pub fn add_lattice(&mut self, l: Arc<Lattice>) {
        self.lattices.push(l);
        self.invalidate_planner();
    }

    /// Prepends a metadata provider (consulted before the defaults).
    pub fn add_metadata_provider(&mut self, p: Arc<dyn MetadataProvider>) {
        self.providers.push(p);
        self.invalidate_plans();
    }

    pub fn set_cost_model(&mut self, m: Arc<dyn CostModel>) {
        self.cost_model = Some(m);
        self.invalidate_plans();
    }

    /// Switches the cost-based engine's termination mode (§6: exhaustive
    /// or cost-improvement threshold δ).
    pub fn set_fixpoint_mode(&mut self, mode: FixpointMode) {
        self.mode = mode;
        self.invalidate_planner();
    }

    /// Disables the metadata cache (for benchmarking its effect).
    pub fn set_metadata_cache(&mut self, enabled: bool) {
        self.metadata_cache = enabled;
        self.invalidate_plans();
    }

    /// Resizes the plan cache (and drops its contents). Capacity 0
    /// disables plan caching: every statement re-plans from scratch.
    pub fn set_plan_cache_capacity(&self, capacity: usize) {
        *self.plan_cache.write() = PlanCache::new(capacity);
    }

    /// Number of compiled plans currently cached.
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.read().len()
    }

    /// Current catalog/config generation (prepared statements compare
    /// this against their plan's to detect staleness). The connection's
    /// own bumps (local DDL, reconfiguration) add to the catalog's
    /// (maintained views transitioning fresh → stale, MV DDL from any
    /// connection sharing the catalog); both counters are monotonic, so
    /// the sum is a valid staleness stamp.
    pub(crate) fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire) + self.catalog.generation()
    }

    /// Drops every cached plan (DDL, INSERT, semantic configuration
    /// changes).
    fn invalidate_plans(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
        self.plan_cache.write().clear();
    }

    /// Drops cached plans *and* the assembled planner (rule set or
    /// converter topology changed).
    fn invalidate_planner(&mut self) {
        self.invalidate_planner_shared();
    }

    fn invalidate_planner_shared(&self) {
        self.invalidate_plans();
        *self.planner.write() = None;
        *self.planner_no_mv.write() = None;
    }

    pub fn metadata_query(&self) -> MetadataQuery {
        let mut providers = self.providers.clone();
        // ANALYZEd statistics answer after any user-registered providers
        // but before the default heuristics. The provider is pinned to the
        // current generation, so stats retired by DDL/INSERT go silent.
        providers.push(Arc::new(StatsMdProvider::new(
            self.catalog.clone(),
            self.generation(),
        )));
        MetadataQuery::new(
            providers,
            self.cost_model
                .clone()
                .unwrap_or_else(|| Arc::new(rcalcite_core::cost::DefaultCostModel::new())),
            self.metadata_cache,
        )
    }

    /// Parses and validates SQL into a logical plan.
    pub fn parse_to_rel(&self, sql: &str) -> Result<Rel> {
        match parse(sql)? {
            Stmt::Query(q) | Stmt::Explain(q) => self.convert(&q),
            other => Err(rcalcite_core::error::CalciteError::validate(format!(
                "not a query: {other:?}"
            ))),
        }
    }

    fn convert(&self, q: &crate::ast::Query) -> Result<Rel> {
        let views = self.views.read();
        query_to_rel_with_views(&self.catalog, &self.functions, &views, q)
    }

    /// Registers a named view (also done by `CREATE VIEW`).
    pub fn add_view(&self, name: impl Into<String>, plan: Rel) {
        self.views
            .write()
            .insert(name.into().to_ascii_lowercase(), plan);
        self.invalidate_plans();
    }

    /// The assembled cost-based planner: rules, converter edges and
    /// materializations. Built on first use and reused across statements
    /// until the configuration changes — the planner itself is immutable
    /// during optimization, so sharing it is free.
    fn planner(&self) -> Arc<VolcanoPlanner> {
        if let Some(p) = self.planner.read().as_ref() {
            return p.clone();
        }
        let mut rules = self.rules.clone();
        let mats = self.materializations.read();
        if !mats.is_empty() {
            rules.push(Arc::new(MaterializedViewRule::new(mats.clone())));
        }
        drop(mats);
        if !self.lattices.is_empty() {
            rules.push(Arc::new(LatticeRule::new(self.lattices.clone())));
        }
        let mut planner = VolcanoPlanner::new(rules).with_mode(self.mode);
        for (from, to) in &self.converters {
            planner.add_converter(from.clone(), to.clone());
        }
        let planner = Arc::new(planner);
        *self.planner.write() = Some(planner.clone());
        planner
    }

    /// The cost-based planner minus the materialized-view substitution
    /// rule. Substitution matches scans by table name and a maintained
    /// view's contents track the *latest* commit, so plans that must
    /// read an older version — transaction snapshots — and plans that
    /// must read the base table itself — DML locate plans, REFRESH
    /// recomputes (a view must never read itself) — compile through
    /// this planner instead.
    fn planner_no_mv(&self) -> Arc<VolcanoPlanner> {
        if let Some(p) = self.planner_no_mv.read().as_ref() {
            return p.clone();
        }
        let mut rules = self.rules.clone();
        if !self.lattices.is_empty() {
            rules.push(Arc::new(LatticeRule::new(self.lattices.clone())));
        }
        let mut planner = VolcanoPlanner::new(rules).with_mode(self.mode);
        for (from, to) in &self.converters {
            planner.add_converter(from.clone(), to.clone());
        }
        let planner = Arc::new(planner);
        *self.planner_no_mv.write() = Some(planner.clone());
        planner
    }

    /// Optimizes a logical plan into an executable plan in the enumerable
    /// convention, using the paper's multi-stage scheme: a heuristic
    /// normalization phase followed by cost-based planning.
    pub fn optimize(&self, logical: &Rel) -> Result<Rel> {
        let mq = self.metadata_query();
        let normalized = self.hep.optimize(logical, &Convention::enumerable(), &mq)?;
        self.planner()
            .optimize(&normalized, &Convention::enumerable(), &mq)
    }

    /// [`Connection::optimize`] without materialized-view substitution.
    fn optimize_no_mv(&self, logical: &Rel) -> Result<Rel> {
        let mq = self.metadata_query();
        let normalized = self.hep.optimize(logical, &Convention::enumerable(), &mq)?;
        self.planner_no_mv()
            .optimize(&normalized, &Convention::enumerable(), &mq)
    }

    // -------------------------------------------------------------
    // Statement surface: prepare / execute / query / explain
    // -------------------------------------------------------------

    /// Compiles a query (with optional `?` placeholders) once: parse,
    /// validate, optimize — served from the plan cache when the same SQL
    /// text was prepared before. The statement then binds values and
    /// executes any number of times without re-planning.
    pub fn prepare(&self, sql: &str) -> Result<PreparedStatement<'_>> {
        use rcalcite_core::error::CalciteError;
        let q = match parse(sql)? {
            Stmt::Query(q) => q,
            other => {
                return Err(CalciteError::validate(format!(
                    "only queries can be prepared, got {other:?}"
                )))
            }
        };
        let key = plan_cache_key(sql);
        let (plan, _) = self.plan_query(&key, &q)?;
        Ok(PreparedStatement::new(self, key, q, plan))
    }

    /// Compiles `q` under cache key `key`, consulting the plan cache
    /// first. Returns the plan and whether it was served from the cache.
    pub(crate) fn plan_query(&self, key: &str, q: &Query) -> Result<(Arc<CachedPlan>, bool)> {
        let generation = self.generation();
        if let Some(hit) = self.plan_cache.read().get(key) {
            if hit.generation == generation {
                return Ok((hit, true));
            }
        }
        let logical = self.convert(q)?;
        let columns = logical
            .row_type()
            .fields
            .iter()
            .map(|f| f.name.clone())
            .collect();
        let params = collect_plan_params(&logical);
        let physical = self.optimize(&logical)?;
        let plan = Arc::new(CachedPlan {
            columns,
            physical,
            params,
            generation,
        });
        self.plan_cache
            .write()
            .insert(key.to_string(), plan.clone());
        Ok((plan, false))
    }

    /// Re-plans a prepared statement whose plan went stale (DDL or
    /// reconfiguration since it was compiled).
    pub(crate) fn replan(&self, key: &str, q: &Query) -> Result<Arc<CachedPlan>> {
        Ok(self.plan_query(key, q)?.0)
    }

    /// Whether an explicit transaction (BEGIN without COMMIT/ROLLBACK) is
    /// open on this connection.
    pub fn in_transaction(&self) -> bool {
        self.txn.read().is_some()
    }

    /// Plans `q` for immediate execution. Outside a transaction this is
    /// the cached [`Connection::plan_query`]; inside one, scans of tables
    /// the transaction covers are replaced with its snapshot (BEGIN-time
    /// version plus this transaction's staged writes) and the plan is
    /// compiled fresh and never cached — it must not outlive the snapshot.
    pub(crate) fn plan_for_execution(
        &self,
        key: &str,
        q: &Query,
    ) -> Result<(Arc<CachedPlan>, bool)> {
        if !self.in_transaction() {
            return self.plan_query(key, q);
        }
        Ok((self.plan_for_txn(q)?, false))
    }

    /// Compiles `q` against the open transaction's snapshot (uncached).
    pub(crate) fn plan_for_txn(&self, q: &Query) -> Result<Arc<CachedPlan>> {
        let logical = self.convert(q)?;
        let columns = logical
            .row_type()
            .fields
            .iter()
            .map(|f| f.name.clone())
            .collect();
        let params = collect_plan_params(&logical);
        let substituted = self.substitute_txn_scans(&logical);
        // No MV substitution inside a transaction: views track the latest
        // commit, which may postdate this transaction's snapshot.
        let physical = self.optimize_no_mv(&substituted)?;
        Ok(Arc::new(CachedPlan {
            columns,
            physical,
            params,
            generation: self.generation(),
        }))
    }

    /// Replaces every scan of a table the open transaction covers with a
    /// table serving the transaction's read view. No-op outside a
    /// transaction; tables without MVCC support keep their live scan.
    fn substitute_txn_scans(&self, plan: &Rel) -> Rel {
        let guard = self.txn.read();
        match guard.as_ref() {
            Some(txn) => substitute_scans(plan, txn),
            None => plan.clone(),
        }
    }

    /// Parses, optimizes and executes a statement (query, EXPLAIN, or the
    /// DDL/DML surface of §9's standalone-engine future work), returning a
    /// streaming [`ResultSet`]. Queries ride the plan cache; DDL and
    /// INSERT invalidate it.
    pub fn execute(&self, sql: &str) -> Result<ResultSet> {
        use rcalcite_core::error::CalciteError;
        let message =
            |m: String| ResultSet::materialized(vec!["result".into()], vec![vec![Datum::str(m)]]);
        match parse(sql)? {
            Stmt::Explain(q) => {
                let (text, cached) = self.explain_query(plan_cache_key(sql), &q)?;
                let mut rows: Vec<Row> = vec![vec![Datum::str(self.explain_header(cached))]];
                rows.extend(text.lines().map(|l| vec![Datum::str(l)]));
                Ok(ResultSet::materialized(vec!["PLAN".into()], rows))
            }
            Stmt::Query(q) => {
                let (plan, _) = self.plan_for_execution(&plan_cache_key(sql), &q)?;
                if !plan.params.is_empty() {
                    return Err(CalciteError::validate(format!(
                        "statement has {} dynamic parameter(s); use prepare() and bind()",
                        plan.params.len()
                    )));
                }
                ResultSet::open(self, &plan, vec![])
            }
            Stmt::CreateTable { name, columns } => {
                let (schema_name, table_name) = self.split_name(&name)?;
                let schema = self.catalog.schema(&schema_name).ok_or_else(|| {
                    CalciteError::validate(format!("schema '{schema_name}' not found"))
                })?;
                let mut b = rcalcite_core::types::RowTypeBuilder::new();
                for c in &columns {
                    let kind = ast_type_to_kind(&c.ty);
                    b = if c.not_null {
                        b.add_not_null(c.name.clone(), kind)
                    } else {
                        b.add(c.name.clone(), kind)
                    };
                }
                schema.add_table(table_name.clone(), MemTable::new(b.build(), vec![]));
                self.invalidate_plans();
                Ok(message(format!("table {schema_name}.{table_name} created")))
            }
            Stmt::CreateView { name, query } => {
                let plan = self.convert(&query)?;
                reject_params(&plan, "CREATE VIEW")?;
                let key = name.join(".").to_ascii_lowercase();
                self.views.write().insert(key.clone(), plan);
                self.invalidate_plans();
                Ok(message(format!("view {key} created")))
            }
            Stmt::CreateMaterializedView { name, query } => {
                // Compile the definition once into a delta plan; shapes
                // with per-operator maintenance rules stay incrementally
                // up to date from the commit feed, the rest fall back to
                // staleness tracking + REFRESH MATERIALIZED VIEW.
                let plan = self.convert(&query)?;
                reject_params(&plan, "CREATE MATERIALIZED VIEW")?;
                if self.in_transaction() {
                    return Err(CalciteError::unsupported(
                        "CREATE MATERIALIZED VIEW cannot run inside a transaction",
                    ));
                }
                let alias = name.join(".").to_ascii_lowercase();
                let vname = name.last().expect("parsed name").to_ascii_lowercase();
                let qualified = format!("mv.{vname}");
                let schema = self.mv_schema();
                if schema.table(&vname).is_some() {
                    return Err(CalciteError::validate(format!(
                        "materialized view '{vname}' already exists"
                    )));
                }
                let row_type = plan.row_type().clone();
                let txns = self.catalog.txns();
                let (view, n) = match rcalcite_core::DeltaPlan::compile(&plan) {
                    Ok(mut delta) => {
                        // Populate the storage and subscribe to the commit
                        // feed atomically: under the commit lock no
                        // transaction can apply between init's snapshots
                        // and the registration.
                        txns.with_commit_lock(
                            || -> Result<(Arc<rcalcite_core::MaintainedView>, usize)> {
                                let rows = delta.init()?;
                                let n = rows.len();
                                schema.add_table(
                                    vname.clone(),
                                    MemTable::new(row_type.clone(), rows),
                                );
                                let tref = self.catalog.resolve(&["mv", &vname])?;
                                Ok((
                                    rcalcite_core::MaintainedView::new_maintained(
                                        qualified.clone(),
                                        tref,
                                        plan.clone(),
                                        delta,
                                    ),
                                    n,
                                ))
                            },
                        )?
                    }
                    Err(unsupported) => {
                        // No maintenance rule for this shape: run the
                        // definition once and track staleness through base
                        // versions. Versions are captured before execution
                        // so a racing commit makes the view stale, never
                        // silently wrong.
                        let versions =
                            txns.with_commit_lock(|| rcalcite_core::ivm::base_versions(&plan));
                        let physical = self.optimize_no_mv(&plan)?;
                        let rows = self.exec.execute_collect(&physical)?;
                        let n = rows.len();
                        schema.add_table(vname.clone(), MemTable::new(row_type.clone(), rows));
                        let tref = self.catalog.resolve(&["mv", &vname])?;
                        (
                            rcalcite_core::MaintainedView::new_refresh_only(
                                qualified.clone(),
                                tref,
                                plan.clone(),
                                unsupported.to_string(),
                                versions,
                            ),
                            n,
                        )
                    }
                };
                self.catalog.ivm().register(view.clone());
                self.views
                    .write()
                    .insert(alias, rcalcite_core::rel::scan(view.table.clone()));
                // Registered through add_materialization so the defining
                // plan is normalized; the rebuilt planner picks it up on
                // the next optimize call.
                self.add_materialization(
                    rcalcite_core::mv::Materialization::new(
                        qualified.clone(),
                        view.table.clone(),
                        plan,
                    )
                    .with_maintained(view.clone()),
                );
                self.catalog.bump_generation();
                let how = match view.unsupported_reason() {
                    None => "incrementally maintained".to_string(),
                    Some(r) => format!("refresh-only: {r}"),
                };
                Ok(message(format!(
                    "materialized view {qualified} created ({n} rows, {how})"
                )))
            }
            Stmt::DropMaterializedView { name, if_exists } => {
                let alias = name.join(".").to_ascii_lowercase();
                let vname = name.last().expect("parsed name").to_ascii_lowercase();
                let qualified = format!("mv.{vname}");
                let existed = self.catalog.ivm().unregister(&qualified);
                if !existed && !if_exists {
                    return Err(CalciteError::validate(format!(
                        "materialized view '{vname}' not found"
                    )));
                }
                if existed {
                    let mut views = self.views.write();
                    views.remove(&alias);
                    views.remove(&vname);
                    drop(views);
                    self.materializations
                        .write()
                        .retain(|m| m.name != qualified);
                    if let Some(s) = self.catalog.schema("mv") {
                        s.remove_table(&vname);
                    }
                    self.catalog.stats().retire(&qualified);
                    self.catalog.bump_generation();
                    self.invalidate_planner_shared();
                }
                Ok(message(format!(
                    "materialized view {qualified} {}",
                    if existed { "dropped" } else { "did not exist" }
                )))
            }
            Stmt::RefreshMaterializedView { name } => {
                let vname = name.last().expect("parsed name").to_ascii_lowercase();
                let qualified = format!("mv.{vname}");
                let view = self.catalog.ivm().get(&qualified).ok_or_else(|| {
                    CalciteError::validate(format!("materialized view '{vname}' not found"))
                })?;
                if self.in_transaction() {
                    return Err(CalciteError::unsupported(
                        "REFRESH MATERIALIZED VIEW cannot run inside a transaction",
                    ));
                }
                let txns = self.catalog.txns();
                if view.is_maintained() {
                    txns.with_commit_lock(|| view.refresh_maintained())?;
                } else {
                    // Full recompute. Versions are captured before the
                    // defining query runs, so a commit racing the
                    // recompute leaves the view stale, never wrong; the
                    // swap runs under the commit lock so maintenance
                    // passes never observe a half-replaced table.
                    let versions = txns.with_commit_lock(|| view.capture_versions());
                    let physical = self.optimize_no_mv(&view.plan)?;
                    let rows = self.exec.execute_collect(&physical)?;
                    let mem =
                        view.table.table.as_mem_table().ok_or_else(|| {
                            CalciteError::internal("view storage must be a MemTable")
                        })?;
                    txns.with_commit_lock(|| {
                        mem.replace_all(rows);
                        view.complete_refresh(versions);
                    });
                }
                self.catalog.stats().retire(&qualified);
                self.catalog.bump_generation();
                self.invalidate_plans();
                Ok(message(format!("materialized view {qualified} refreshed")))
            }
            Stmt::Insert { table, source } => {
                let (schema_name, table_name) = self.split_name(&table)?;
                let tref = self.catalog.resolve(&[&schema_name, &table_name])?;
                let plan = self.convert(&source)?;
                reject_params(&plan, "INSERT")?;
                let arity = tref.table.row_type().arity();
                if plan.row_type().arity() != arity {
                    return Err(CalciteError::validate(format!(
                        "INSERT arity mismatch: table has {arity} columns, query produces {}",
                        plan.row_type().arity()
                    )));
                }
                // The source query reads through the open transaction's
                // snapshot, so INSERT INTO t SELECT ... FROM t sees this
                // transaction's staged rows, not other writers'. Inside a
                // transaction MV substitution is disabled for the same
                // reason as queries: the view postdates the snapshot.
                let substituted = self.substitute_txn_scans(&plan);
                let physical = if self.in_transaction() {
                    self.optimize_no_mv(&substituted)?
                } else {
                    self.optimize(&substituted)?
                };
                let rows = self.exec.execute_collect(&physical)?;
                let n = rows.len();
                if tref.table.txn_snapshot().is_some() {
                    // MVCC-capable table: route through the transaction
                    // machinery so the write is WAL-logged and joins the
                    // open transaction when one is active.
                    let start = tref.table.reserve_row_ids(n)?;
                    let ops = rows
                        .into_iter()
                        .enumerate()
                        .map(|(i, row)| DeltaOp::Insert {
                            row_id: start + i as u64,
                            row,
                        })
                        .collect();
                    self.stage_or_autocommit(&tref, ops)?;
                    return Ok(message(format!("{n} rows inserted")));
                }
                let mem = tref.table.as_mem_table().ok_or_else(|| {
                    CalciteError::unsupported(format!(
                        "INSERT is only supported on built-in tables, not '{}'",
                        tref.qualified_name()
                    ))
                })?;
                for row in rows {
                    mem.insert(row);
                }
                // New rows shift statistics; cached plans may no longer
                // be the cheapest (and snapshots taken by prepared plans
                // should refresh). Only THIS table's statistics go stale —
                // other tables keep their analyzed stats across the
                // generation bump.
                self.catalog.stats().retire(&tref.qualified_name());
                self.invalidate_plans();
                Ok(message(format!("{n} rows inserted")))
            }
            Stmt::DropTable { name, if_exists } => {
                let (schema_name, table_name) = self.split_name(&name)?;
                let schema = self.catalog.schema(&schema_name).ok_or_else(|| {
                    CalciteError::validate(format!("schema '{schema_name}' not found"))
                })?;
                let existed = schema.remove_table(&table_name);
                if !existed && !if_exists {
                    return Err(CalciteError::validate(format!(
                        "table '{schema_name}.{table_name}' not found"
                    )));
                }
                self.catalog
                    .stats()
                    .retire(&format!("{schema_name}.{table_name}"));
                self.invalidate_plans();
                Ok(message(format!(
                    "table {schema_name}.{table_name} {}",
                    if existed { "dropped" } else { "did not exist" }
                )))
            }
            Stmt::CreateIndex {
                name,
                table,
                columns,
                hash,
            } => {
                let (schema_name, table_name) = self.split_name(&table)?;
                let tref = self.catalog.resolve(&[&schema_name, &table_name])?;
                let rt = tref.table.row_type();
                let mut cols = vec![];
                for c in &columns {
                    let i = rt.field_index(c).ok_or_else(|| {
                        CalciteError::validate(format!(
                            "no column '{c}' on table '{}'",
                            tref.qualified_name()
                        ))
                    })?;
                    cols.push(i);
                }
                let def = if hash {
                    rcalcite_core::IndexDef::hash(name.clone(), cols)
                } else {
                    rcalcite_core::IndexDef::ordered(name.clone(), cols)
                };
                if !tref.table.create_index(&def)? {
                    return Err(CalciteError::unsupported(format!(
                        "table '{}' does not support indexes",
                        tref.qualified_name()
                    )));
                }
                // A new access path exists: compiled plans must re-plan
                // to see it (the data — and its statistics — are
                // unchanged).
                self.invalidate_plans();
                Ok(message(format!(
                    "index {name} created on {schema_name}.{table_name}"
                )))
            }
            Stmt::DropIndex {
                name,
                table,
                if_exists,
            } => {
                let targets: Vec<TableRef> = match &table {
                    Some(parts) => {
                        let (s, t) = self.split_name(parts)?;
                        vec![self.catalog.resolve(&[&s, &t])?]
                    }
                    None => {
                        // No ON clause: search every table for the index.
                        let mut all = vec![];
                        for s in self.catalog.schema_names() {
                            let schema = self.catalog.schema(&s).expect("listed schema");
                            for t in schema.table_names() {
                                let tref = self.catalog.resolve(&[&s, &t])?;
                                if tref.table.indexes().iter().any(|d| d.name == name) {
                                    all.push(tref);
                                }
                            }
                        }
                        all
                    }
                };
                let mut dropped = false;
                for tref in &targets {
                    dropped |= tref.table.drop_index(&name)?;
                }
                if !dropped && !if_exists {
                    return Err(CalciteError::validate(format!("index '{name}' not found")));
                }
                // The access path is gone; plans that seek it must
                // re-plan back to scans.
                self.invalidate_plans();
                Ok(message(format!(
                    "index {name} {}",
                    if dropped { "dropped" } else { "did not exist" }
                )))
            }
            Stmt::Analyze { name } => {
                let targets: Vec<TableRef> = match &name {
                    Some(parts) => {
                        let (s, t) = self.split_name(parts)?;
                        vec![self.catalog.resolve(&[&s, &t])?]
                    }
                    None => {
                        let mut all = vec![];
                        for s in self.catalog.schema_names() {
                            let schema = self.catalog.schema(&s).expect("listed schema");
                            for t in schema.table_names() {
                                all.push(self.catalog.resolve(&[&s, &t])?);
                            }
                        }
                        all
                    }
                };
                // Fresh statistics change cost comparisons, so cached plans
                // are retired first; the new snapshot is stamped with the
                // post-bump generation and stays live until the next
                // DDL/INSERT retires it the same way.
                self.invalidate_plans();
                let generation = self.generation();
                let n = targets.len();
                for tref in targets {
                    let stats = match tref.table.analyze() {
                        Some(native) => native?,
                        None => analyze_table(tref.table.as_ref())?,
                    };
                    self.catalog
                        .stats()
                        .put(tref.qualified_name(), generation, Arc::new(stats));
                }
                Ok(message(format!("analyzed {n} table(s)")))
            }
            Stmt::Update {
                table,
                assignments,
                selection,
            } => {
                let n = self.execute_dml(&table, Some(&assignments), selection.as_ref())?;
                Ok(message(format!("{n} rows updated")))
            }
            Stmt::Delete { table, selection } => {
                let n = self.execute_dml(&table, None, selection.as_ref())?;
                Ok(message(format!("{n} rows deleted")))
            }
            Stmt::ExplainDml(inner) => {
                let (table, selection) = match inner.as_ref() {
                    Stmt::Update {
                        table, selection, ..
                    }
                    | Stmt::Delete { table, selection } => (table, selection),
                    other => {
                        return Err(CalciteError::validate(format!("cannot EXPLAIN {other:?}")))
                    }
                };
                let (schema_name, table_name) = self.split_name(table)?;
                let qualified = format!("{schema_name}.{table_name}");
                let (header, what) = match inner.as_ref() {
                    Stmt::Update { assignments, .. } => {
                        let cols: Vec<String> =
                            assignments.iter().map(|(c, _)| c.clone()).collect();
                        (
                            format!("Update({qualified}, set: [{}])", cols.join(", ")),
                            "UPDATE",
                        )
                    }
                    _ => (format!("Delete({qualified})"), "DELETE"),
                };
                let (_, physical) = self.dml_locate_plan(table, selection.as_ref(), what)?;
                let mq = self.metadata_query();
                let mut rows: Vec<Row> = vec![vec![Datum::str(header)]];
                rows.push(vec![Datum::str("-- located rows:")]);
                for line in explain_with_costs(&physical, &mq).lines() {
                    rows.push(vec![Datum::str(line)]);
                }
                Ok(ResultSet::materialized(vec!["PLAN".into()], rows))
            }
            Stmt::Begin => {
                let mut guard = self.txn.write();
                if guard.is_some() {
                    return Err(CalciteError::validate(
                        "a transaction is already in progress",
                    ));
                }
                let txn = self.catalog.txns().begin(&self.catalog.all_tables());
                let msg = format!("transaction {} started", txn.id());
                *guard = Some(txn);
                Ok(message(msg))
            }
            Stmt::Commit => {
                let txn = self
                    .txn
                    .write()
                    .take()
                    .ok_or_else(|| CalciteError::validate("no transaction in progress"))?;
                let written = txn.written_tables();
                // commit() consumes the handle: win or lose the
                // first-committer-wins check, the transaction is finished
                // and the connection leaves transaction mode. A conflict
                // surfaces as a retryable error; the caller re-BEGINs.
                let commit_ts = txn.commit()?;
                if !written.is_empty() {
                    for t in &written {
                        self.catalog.stats().retire(t);
                    }
                    self.invalidate_plans();
                }
                Ok(message(format!("transaction committed at ts {commit_ts}")))
            }
            Stmt::Rollback => {
                let txn = self
                    .txn
                    .write()
                    .take()
                    .ok_or_else(|| CalciteError::validate("no transaction in progress"))?;
                txn.rollback();
                Ok(message("transaction rolled back".to_string()))
            }
        }
    }

    /// Parses, optimizes and executes a statement, materializing the
    /// result — [`Connection::execute`] collected into a [`QueryResult`].
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.execute(sql)?.collect()
    }

    // -------------------------------------------------------------
    // DML: UPDATE / DELETE / transactional INSERT
    // -------------------------------------------------------------

    /// The located-rows subplan of a DML statement: `SELECT * FROM t
    /// [WHERE ...]` planned through the normal pipeline, so the
    /// cost-based choice between a full scan and an index seek applies
    /// to writes too. Returns (logical, physical).
    fn dml_locate_plan(
        &self,
        table: &[String],
        selection: Option<&Expr>,
        what: &str,
    ) -> Result<(Rel, Rel)> {
        let q = Query {
            body: SetExpr::Select(Box::new(Select {
                stream: false,
                distinct: false,
                items: vec![SelectItem::Wildcard],
                from: Some(TableExpr::Table {
                    name: table.to_vec(),
                    alias: None,
                }),
                selection: selection.cloned(),
                group_by: vec![],
                having: None,
            })),
            order_by: vec![],
            offset: None,
            limit: None,
        };
        let logical = self.convert(&q)?;
        reject_params(&logical, what)?;
        // The locate plan must address the base table's own rows (its
        // positions become row ids to write), so a materialized view can
        // never stand in for the scan.
        let physical = self.optimize_no_mv(&logical)?;
        Ok((logical, physical))
    }

    /// Compiles UPDATE's SET expressions by converting `SELECT <exprs>
    /// FROM t` — assignments get the same name resolution, typing and
    /// function registry as queries. Returns (column index, compiled
    /// expression) pairs in statement order.
    fn compile_assignments(
        &self,
        table: &[String],
        tref: &TableRef,
        assignments: &[(String, Expr)],
    ) -> Result<Vec<(usize, RexNode)>> {
        use rcalcite_core::error::CalciteError;
        let q = Query {
            body: SetExpr::Select(Box::new(Select {
                stream: false,
                distinct: false,
                items: assignments
                    .iter()
                    .map(|(_, e)| SelectItem::Expr {
                        expr: e.clone(),
                        alias: None,
                    })
                    .collect(),
                from: Some(TableExpr::Table {
                    name: table.to_vec(),
                    alias: None,
                }),
                selection: None,
                group_by: vec![],
                having: None,
            })),
            order_by: vec![],
            offset: None,
            limit: None,
        };
        let logical = self.convert(&q)?;
        reject_params(&logical, "UPDATE")?;
        let RelOp::Project { exprs, .. } = &logical.op else {
            return Err(CalciteError::unsupported(
                "UPDATE SET expressions must be scalar (no aggregates or window functions)",
            ));
        };
        let rt = tref.table.row_type();
        let mut out: Vec<(usize, RexNode)> = vec![];
        for ((name, _), expr) in assignments.iter().zip(exprs) {
            let i = rt.field_index(name).ok_or_else(|| {
                CalciteError::validate(format!(
                    "no column '{name}' on table '{}'",
                    tref.qualified_name()
                ))
            })?;
            if out.iter().any(|(j, _)| *j == i) {
                return Err(CalciteError::validate(format!(
                    "column '{name}' assigned more than once"
                )));
            }
            let col = &rt.field(i).ty;
            let ety = expr.ty();
            if ety.kind == TypeKind::Null && !col.nullable {
                return Err(CalciteError::validate(format!(
                    "cannot assign NULL to NOT NULL column '{name}' of table '{}'",
                    tref.qualified_name()
                )));
            }
            // Same implicit-cast rule as comparisons and set operations:
            // the assigned expression must widen into the column type
            // (INTEGER → DOUBLE is fine, the reverse or a cross-kind
            // assignment needs an explicit CAST).
            let compatible = col.kind == TypeKind::Any
                || col
                    .least_restrictive(ety)
                    .is_some_and(|lr| lr.kind == col.kind);
            if !compatible {
                return Err(CalciteError::validate(format!(
                    "cannot assign {} to column '{name}' ({}) of table '{}'",
                    ety.kind,
                    col.kind,
                    tref.qualified_name()
                )));
            }
            // Coerce widened values so the stored datum matches the
            // column kind exactly (e.g. INTEGER literal into a DOUBLE
            // column), keeping the columnar mirror and indexes typed.
            let expr = if ety.kind != col.kind
                && ety.kind != TypeKind::Null
                && col.kind != TypeKind::Any
            {
                expr.clone().cast(col.with_nullable(ety.nullable))
            } else {
                expr.clone()
            };
            out.push((i, expr));
        }
        Ok(out)
    }

    /// Shared UPDATE/DELETE implementation: plans the located-rows
    /// subquery, finds target positions in the transaction's read view,
    /// stages one delta op per row, and commits immediately unless an
    /// explicit transaction is open (then the writes stay staged until
    /// COMMIT). Returns the number of rows written.
    fn execute_dml(
        &self,
        table: &[String],
        assignments: Option<&[(String, Expr)]>,
        selection: Option<&Expr>,
    ) -> Result<usize> {
        use rcalcite_core::error::CalciteError;
        let (schema_name, table_name) = self.split_name(table)?;
        let tref = self.catalog.resolve(&[&schema_name, &table_name])?;
        let qualified = tref.qualified_name();
        let what = if assignments.is_some() {
            "UPDATE"
        } else {
            "DELETE"
        };
        let (logical, physical) = self.dml_locate_plan(table, selection, what)?;
        let sets = match assignments {
            Some(a) => Some(self.compile_assignments(table, &tref, a)?),
            None => None,
        };
        let not_capable = || {
            CalciteError::unsupported(format!(
                "table '{qualified}' does not support transactional writes"
            ))
        };
        let build_ops = |view: &ReadView| -> Result<Vec<DeltaOp>> {
            let positions = locate_rows(&physical, &logical, view)?;
            positions
                .into_iter()
                .map(|pos| {
                    let row_id = view.row_id(pos);
                    Ok(match &sets {
                        Some(sets) => {
                            let old = view.row(pos);
                            let mut row = old.clone();
                            for (i, expr) in sets {
                                row[*i] = expr.eval(&old)?;
                            }
                            DeltaOp::Update { row_id, row }
                        }
                        None => DeltaOp::Delete { row_id },
                    })
                })
                .collect()
        };
        let mut guard = self.txn.write();
        if let Some(txn) = guard.as_mut() {
            let view = txn.read_view(&qualified).ok_or_else(not_capable)?;
            let ops = build_ops(&view)?;
            return txn.stage(&qualified, ops);
        }
        drop(guard);
        // Autocommit: a single-statement transaction over this table only.
        let mut txn = self.catalog.txns().begin(std::slice::from_ref(&tref));
        let view = txn.read_view(&qualified).ok_or_else(not_capable)?;
        let ops = build_ops(&view)?;
        // Release the read view before COMMIT: it pins the BEGIN-time
        // version, and apply-time `Arc::make_mut` would deep-copy the
        // whole table to preserve a snapshot nobody reads again.
        drop(view);
        let n = txn.stage(&qualified, ops)?;
        txn.commit()?;
        if n > 0 {
            self.catalog.stats().retire(&qualified);
            self.invalidate_plans();
        }
        Ok(n)
    }

    /// Stages `ops` into the open transaction, or wraps them in an
    /// autocommit transaction (begin → stage → commit) when none is
    /// open. On autocommit the table's statistics are retired and cached
    /// plans invalidated immediately; in an explicit transaction that
    /// happens at COMMIT.
    fn stage_or_autocommit(&self, tref: &TableRef, ops: Vec<DeltaOp>) -> Result<usize> {
        let qualified = tref.qualified_name();
        let mut guard = self.txn.write();
        if let Some(txn) = guard.as_mut() {
            return txn.stage(&qualified, ops);
        }
        drop(guard);
        let mut txn = self.catalog.txns().begin(std::slice::from_ref(tref));
        let n = txn.stage(&qualified, ops)?;
        txn.commit()?;
        if n > 0 {
            self.catalog.stats().retire(&qualified);
            self.invalidate_plans();
        }
        Ok(n)
    }

    /// The catalog schema holding materialized-view storage (`mv`),
    /// created on first use. A real schema — not a side table — so
    /// ANALYZE, transactions and direct scans treat view storage like
    /// any other table.
    fn mv_schema(&self) -> Arc<rcalcite_core::catalog::Schema> {
        if let Some(s) = self.catalog.schema("mv") {
            return s;
        }
        self.catalog
            .add_schema("mv", rcalcite_core::catalog::Schema::new());
        self.catalog.schema("mv").expect("just added")
    }

    /// Resolves `[schema.]name` to (schema, name) using the default schema.
    fn split_name(&self, parts: &[String]) -> Result<(String, String)> {
        use rcalcite_core::error::CalciteError;
        match parts {
            [t] => {
                let s = self.catalog.default_schema_name().ok_or_else(|| {
                    CalciteError::validate("no default schema for unqualified name")
                })?;
                Ok((s, t.to_ascii_lowercase()))
            }
            [s, t] => Ok((s.to_ascii_lowercase(), t.to_ascii_lowercase())),
            _ => Err(CalciteError::validate(format!(
                "cannot resolve name {parts:?}"
            ))),
        }
    }

    /// EXPLAIN helper returning the plan as one string. Accepts a bare
    /// query or an `EXPLAIN ...` statement; both this and
    /// `query("EXPLAIN ...")` render through the same path, and the first
    /// line reports whether the plan came from the plan cache.
    pub fn explain(&self, sql: &str) -> Result<String> {
        use rcalcite_core::error::CalciteError;
        let q = match parse(sql)? {
            Stmt::Query(q) | Stmt::Explain(q) => q,
            other => return Err(CalciteError::validate(format!("cannot EXPLAIN {other:?}"))),
        };
        let (text, cached) = self.explain_query(plan_cache_key(sql), &q)?;
        Ok(format!("{}\n{text}", self.explain_header(cached)))
    }

    /// The EXPLAIN header line: plan-cache outcome plus the execution
    /// mode and worker count, so plans pasted from differently
    /// configured connections are distinguishable in bug reports.
    fn explain_header(&self, cached: bool) -> String {
        format!(
            "-- plan cache: {} | mode: {} | workers: {}",
            hit_str(cached),
            self.exec_mode.as_str(),
            self.parallelism().workers
        )
    }

    /// The shared EXPLAIN implementation: plans through the cache (so
    /// EXPLAIN observes — and warms — the same entries queries use) and
    /// renders the physical plan with cost annotations. In the batch
    /// modes with more than one worker, the exchange placement the
    /// parallel engine uses is appended as a second section.
    fn explain_query(&self, key: String, q: &Query) -> Result<(String, bool)> {
        let (plan, cached) = self.plan_query(&key, q)?;
        let mq = self.metadata_query();
        let mut text = explain_with_costs(&plan.physical, &mq);
        text.push_str(&rcalcite_core::explain::explain_estimates(
            &plan.physical,
            &mq,
        ));
        if self.exec_mode.batch_fusion().is_some() {
            let p = self.parallelism();
            if let Some(parallel) = rcalcite_enumerable::explain_parallel(&plan.physical, p) {
                text.push_str(&format!(
                    "-- parallel plan (workers={}, morsel_size={}):\n",
                    p.workers, p.morsel_size
                ));
                text.push_str(&parallel);
            }
            if let Some(spill) =
                rcalcite_enumerable::explain_spill(&plan.physical, &mq, self.memory_budget())
            {
                text.push_str(&spill);
            }
        }
        self.append_mv_markers(&mut text, &plan.physical, q)?;
        Ok((text, cached))
    }

    /// Appends `-- mv:` verdict lines to an EXPLAIN: which materialized
    /// views serve reads in this plan, and which would have been
    /// substituted but were bypassed as stale.
    fn append_mv_markers(&self, text: &mut String, physical: &Rel, q: &Query) -> Result<()> {
        let mats = self.materializations.read();
        if mats.is_empty() {
            return Ok(());
        }
        let mut scanned = vec![];
        collect_scan_names(physical, &mut scanned);
        // The stale-bypass check re-runs substitution on the normalized
        // logical plan — exactly what the planner's rule would have seen.
        let mq = self.metadata_query();
        let logical = self.convert(q)?;
        let normalized = self
            .hep
            .optimize(&logical, &Convention::enumerable(), &mq)?;
        for m in mats.iter() {
            let target = m.table.qualified_name();
            let read = scanned.iter().any(|s| s.eq_ignore_ascii_case(&target));
            if read {
                if m.is_usable() {
                    text.push_str(&format!("-- mv: substituted {} (fresh)\n", m.name));
                } else {
                    // Only a direct scan of the view's storage reaches a
                    // stale view; substitution skips it.
                    text.push_str(&format!("-- mv: {} (stale, read directly)\n", m.name));
                }
            } else if !m.is_usable() && would_substitute(&normalized, m) {
                text.push_str(&format!("-- mv: {} (stale, bypassed)\n", m.name));
            }
        }
        Ok(())
    }
}

/// Default bound on the number of compiled plans a connection keeps.
pub(crate) const DEFAULT_PLAN_CACHE_CAPACITY: usize = 128;

/// Collects the qualified name of every stored table `plan` reads.
fn collect_scan_names(plan: &Rel, out: &mut Vec<String>) {
    match &plan.op {
        RelOp::Scan { table } | RelOp::IndexSeek { table, .. } | RelOp::IndexJoin { table, .. } => {
            out.push(table.qualified_name())
        }
        _ => {}
    }
    for i in &plan.inputs {
        collect_scan_names(i, out);
    }
}

/// Whether the substitution matcher would rewrite any subtree of `plan`
/// to read from `m` (ignoring freshness — callers use this to report a
/// stale view as bypassed).
fn would_substitute(plan: &Rel, m: &Materialization) -> bool {
    if !rcalcite_core::mv::substitute(plan, std::slice::from_ref(m)).is_empty() {
        return true;
    }
    plan.inputs.iter().any(|i| would_substitute(i, m))
}

/// Rebuilds `plan` with every scan of a transaction-covered table
/// replaced by a [`rcalcite_core::SnapshotTable`] serving the
/// transaction's read view. The snapshot table keeps the original
/// schema/name so plans still render recognizably in EXPLAIN.
fn substitute_scans(plan: &Rel, txn: &Transaction) -> Rel {
    let inputs: Vec<Rel> = plan
        .inputs
        .iter()
        .map(|i| substitute_scans(i, txn))
        .collect();
    let op = match &plan.op {
        RelOp::Scan { table } => match txn.snapshot_table(&table.qualified_name()) {
            Some(snap) => RelOp::Scan {
                table: TableRef::new(table.schema.clone(), table.name.clone(), snap),
            },
            None => plan.op.clone(),
        },
        other => other.clone(),
    };
    RelNode::new(op, plan.convention.clone(), inputs)
}

/// What the optimized locate subplan does: an optional index seek plus
/// residual filter conditions over the base row, or `None` when the
/// shape is not a pure seek/filter pipeline over the target table (the
/// caller then falls back to a full-scan evaluation).
#[allow(clippy::type_complexity)]
fn analyze_locate(plan: &Rel) -> Option<(Option<(IndexDef, SeekSpec)>, Vec<RexNode>)> {
    let mut node = plan;
    let mut residuals: Vec<RexNode> = vec![];
    loop {
        match &node.op {
            RelOp::Convert { .. } => node = &node.inputs[0],
            RelOp::Project { .. } => {
                // Filters collected so far sit above this projection and
                // reference its output columns, not the base row — the
                // positions they'd select can't be trusted.
                if !residuals.is_empty() {
                    return None;
                }
                node = &node.inputs[0];
            }
            RelOp::Filter { condition } => {
                residuals.push(condition.clone());
                node = &node.inputs[0];
            }
            RelOp::Scan { .. } => return Some((None, residuals)),
            RelOp::IndexSeek {
                index,
                seek,
                projection,
                ..
            } => {
                if projection.is_some() {
                    return None;
                }
                return Some((Some((index.clone(), seek.clone())), residuals));
            }
            _ => return None,
        }
    }
}

/// Collects every Filter condition in a (single-chain) logical locate
/// plan; for `SELECT * FROM t WHERE p` these are all over the base row.
fn collect_conditions(plan: &Rel, out: &mut Vec<RexNode>) {
    if let RelOp::Filter { condition } = &plan.op {
        out.push(condition.clone());
    }
    for i in &plan.inputs {
        collect_conditions(i, out);
    }
}

/// Binds a seek's constant expressions into concrete probes; `None` if
/// any expression isn't evaluable without a row (shouldn't happen once
/// parameters are rejected, but the fallback path is always correct).
fn bind_probes(seek: &SeekSpec) -> Option<Vec<BoundProbe>> {
    let mut out = vec![];
    for p in &seek.probes {
        let mut b = BoundProbe::default();
        for e in &p.eq {
            b.eq.push(e.eval(&[]).ok()?);
        }
        if let Some((e, inclusive)) = &p.lower {
            b.lower = Some((e.eval(&[]).ok()?, *inclusive));
        }
        if let Some((e, inclusive)) = &p.upper {
            b.upper = Some((e.eval(&[]).ok()?, *inclusive));
        }
        out.push(b);
    }
    Some(out)
}

/// Whether every condition evaluates to TRUE on `row` (SQL three-valued
/// logic: NULL and FALSE both reject).
fn eval_all(conditions: &[RexNode], row: &Row) -> Result<bool> {
    for c in conditions {
        if c.eval(row)? != Datum::Bool(true) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Evaluates the locate subplan against a transaction read view,
/// returning matching positions in ascending order. An IndexSeek-shaped
/// plan probes the snapshot's index when the view still carries one (a
/// clean BEGIN-time version); a dirty overlay or any other plan shape
/// scans the view evaluating the full logical predicate.
fn locate_rows(physical: &Rel, logical: &Rel, view: &ReadView) -> Result<Vec<usize>> {
    if let Some((Some((index, seek)), residuals)) = analyze_locate(physical) {
        if let Some(probe) = view.index_probe(&index.name) {
            if let Some(bound) = bind_probes(&seek) {
                let mut positions = seek_positions(probe.as_ref(), &bound);
                positions.sort_unstable();
                positions.dedup();
                let mut out = vec![];
                for pos in positions {
                    if eval_all(&residuals, &view.row(pos))? {
                        out.push(pos);
                    }
                }
                return Ok(out);
            }
        }
    }
    let mut conditions = vec![];
    collect_conditions(logical, &mut conditions);
    let mut out = vec![];
    for pos in 0..view.row_count() {
        if eval_all(&conditions, &view.row(pos))? {
            out.push(pos);
        }
    }
    Ok(out)
}

/// Normalizes a statement's text into its plan-cache key. `EXPLAIN <q>`
/// maps to `<q>`'s key, so EXPLAIN reports on the entry the query itself
/// would use.
fn plan_cache_key(sql: &str) -> String {
    let t = sql.trim().trim_end_matches(';').trim();
    // Strip a leading EXPLAIN keyword case-insensitively, matching the
    // parser's keyword handling.
    if t.len() > 7
        && t[..7].eq_ignore_ascii_case("EXPLAIN")
        && t.as_bytes()[7].is_ascii_whitespace()
    {
        return t[7..].trim().to_string();
    }
    t.to_string()
}

/// `?` placeholders are only meaningful through `prepare()`/`bind()`.
/// In DDL the stored plan would be spliced into later statements whose
/// own parameters are numbered from 0 as well, colliding with the
/// view's — reject them up front.
fn reject_params(plan: &Rel, what: &str) -> Result<()> {
    let n = collect_plan_params(plan).len();
    if n == 0 {
        Ok(())
    } else {
        Err(rcalcite_core::error::CalciteError::validate(format!(
            "dynamic parameters are not allowed in {what} ({n} found); \
             only queries can be prepared"
        )))
    }
}

fn hit_str(cached: bool) -> &'static str {
    if cached {
        "hit"
    } else {
        "miss"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcalcite_core::catalog::{MemTable, Schema};
    use rcalcite_core::types::{RowTypeBuilder, TypeKind};

    fn connection() -> Connection {
        let catalog = Catalog::new();
        let s = Schema::new();
        s.add_table(
            "emp",
            MemTable::new(
                RowTypeBuilder::new()
                    .add_not_null("deptno", TypeKind::Integer)
                    .add("sal", TypeKind::Integer)
                    .build(),
                vec![
                    vec![Datum::Int(10), Datum::Int(100)],
                    vec![Datum::Int(10), Datum::Int(200)],
                    vec![Datum::Int(20), Datum::Int(300)],
                ],
            ),
        );
        catalog.add_schema("hr", s);
        let mut conn = Connection::new(catalog);
        // Wire in the enumerable engine the way a host system would.
        conn.add_rule(rcalcite_enumerable::implement_rule());
        conn.register_executor(Arc::new(rcalcite_enumerable::EnumerableExecutor::new()));
        conn
    }

    #[test]
    fn end_to_end_sql() {
        let conn = connection();
        let r = conn
            .query("SELECT deptno, SUM(sal) AS total FROM emp GROUP BY deptno ORDER BY deptno")
            .unwrap();
        assert_eq!(r.columns, vec!["deptno", "total"]);
        assert_eq!(
            r.rows,
            vec![
                vec![Datum::Int(10), Datum::Int(300)],
                vec![Datum::Int(20), Datum::Int(300)],
            ]
        );
    }

    #[test]
    fn explain_returns_physical_plan() {
        let conn = connection();
        let text = conn
            .explain("SELECT deptno FROM emp WHERE sal > 150")
            .unwrap();
        assert!(text.contains("[enumerable]"), "{text}");
        assert!(text.contains("rows="), "{text}");
    }

    #[test]
    fn explain_statement_through_query() {
        let conn = connection();
        let r = conn.query("EXPLAIN SELECT deptno FROM emp").unwrap();
        assert_eq!(r.columns, vec!["PLAN"]);
        assert!(!r.rows.is_empty());
    }

    #[test]
    fn query_result_table_format() {
        let conn = connection();
        let r = conn
            .query("SELECT deptno FROM emp ORDER BY deptno LIMIT 1")
            .unwrap();
        let table = r.to_table();
        assert!(table.contains("deptno"));
        assert!(table.contains("10"));
    }

    #[test]
    fn fixpoint_mode_and_cache_toggles_preserve_results() {
        let mut conn = connection();
        let sql = "SELECT deptno, SUM(sal) AS total FROM emp GROUP BY deptno ORDER BY deptno";
        let reference = conn.query(sql).unwrap();
        conn.set_fixpoint_mode(
            rcalcite_core::planner::volcano::FixpointMode::CostThreshold {
                delta: 0.05,
                patience: 2,
            },
        );
        assert_eq!(conn.query(sql).unwrap(), reference);
        conn.set_metadata_cache(false);
        assert_eq!(conn.query(sql).unwrap(), reference);
    }

    #[test]
    fn errors_propagate() {
        let conn = connection();
        assert!(conn.query("SELECT nope FROM emp").is_err());
        assert!(conn.query("SELEC 1").is_err());
    }

    #[test]
    fn prepared_statement_binds_many_times() {
        let conn = connection();
        let stmt = conn
            .prepare("SELECT deptno, sal FROM emp WHERE sal > ? ORDER BY sal")
            .unwrap();
        assert_eq!(stmt.param_count(), 1);
        assert_eq!(stmt.columns(), vec!["deptno", "sal"]);
        let r = stmt.query(&[Datum::Int(150)]).unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Datum::Int(10), Datum::Int(200)],
                vec![Datum::Int(20), Datum::Int(300)],
            ]
        );
        let r = stmt.query(&[Datum::Int(250)]).unwrap();
        assert_eq!(r.rows, vec![vec![Datum::Int(20), Datum::Int(300)]]);
        // Identical to the inlined-literal query.
        let inline = conn
            .query("SELECT deptno, sal FROM emp WHERE sal > 250 ORDER BY sal")
            .unwrap();
        assert_eq!(r, inline);
    }

    #[test]
    fn prepared_bind_errors() {
        let conn = connection();
        let stmt = conn
            .prepare("SELECT deptno FROM emp WHERE sal > ?")
            .unwrap();
        // Wrong arity.
        assert!(stmt.query(&[]).is_err());
        assert!(stmt.query(&[Datum::Int(1), Datum::Int(2)]).is_err());
        // Type mismatch: sal is INTEGER, a string cannot compare.
        assert!(stmt.query(&[Datum::str("nope")]).is_err());
        // NULL binds (and matches nothing under three-valued logic).
        assert_eq!(stmt.query(&[Datum::Null]).unwrap().rows.len(), 0);
        // Executing parameterized SQL without preparing is an error.
        assert!(conn.query("SELECT deptno FROM emp WHERE sal > ?").is_err());
    }

    #[test]
    fn plan_cache_hits_and_explain_marker() {
        let conn = connection();
        let sql = "SELECT deptno FROM emp WHERE sal > 150";
        let first = conn.explain(sql).unwrap();
        assert!(first.starts_with("-- plan cache: miss"), "{first}");
        let second = conn.explain(sql).unwrap();
        assert!(second.starts_with("-- plan cache: hit"), "{second}");
        // query("EXPLAIN ...") reports through the same path, whatever
        // the keyword's casing.
        for kw in ["EXPLAIN", "explain", "eXpLaIn"] {
            let r = conn.query(&format!("{kw} {sql}")).unwrap();
            assert_eq!(r.columns, vec!["PLAN"]);
            let header = r.rows[0][0].to_string();
            assert!(header.starts_with("-- plan cache: hit"), "{kw}: {header}");
            // The header names the execution mode and worker count.
            assert!(header.contains("mode: row"), "{kw}: {header}");
            assert!(header.contains("workers: 1"), "{kw}: {header}");
        }
    }

    #[test]
    fn params_rejected_outside_queries() {
        let conn = connection();
        conn.query("CREATE TABLE hr.t2 (v INTEGER)").unwrap();
        for sql in [
            "CREATE VIEW v AS SELECT deptno FROM emp WHERE sal > ?",
            "CREATE MATERIALIZED VIEW mv AS SELECT deptno FROM emp WHERE sal > ?",
            "INSERT INTO hr.t2 SELECT deptno FROM emp WHERE sal > ?",
        ] {
            let err = conn.query(sql).unwrap_err().to_string();
            assert!(err.contains("dynamic parameters"), "{sql}: {err}");
        }
        // Non-queries cannot be prepared either.
        assert!(conn.prepare("DROP TABLE hr.t2").is_err());
    }

    #[test]
    fn ddl_invalidates_cached_plans() {
        let conn = connection();
        let stmt = conn
            .prepare("SELECT COUNT(*) AS c FROM emp WHERE deptno = ?")
            .unwrap();
        assert_eq!(
            stmt.query(&[Datum::Int(10)]).unwrap().rows,
            vec![vec![Datum::Int(2)]]
        );
        conn.query("INSERT INTO hr.emp SELECT deptno, sal + 1 FROM hr.emp WHERE deptno = 10")
            .unwrap();
        // The cache was cleared by the INSERT...
        let marker = conn.explain("SELECT COUNT(*) AS c FROM emp WHERE deptno = ?");
        assert!(marker.unwrap().starts_with("-- plan cache: miss"));
        // ...and the statement re-plans against the mutated table.
        assert_eq!(
            stmt.query(&[Datum::Int(10)]).unwrap().rows,
            vec![vec![Datum::Int(4)]]
        );
    }

    #[test]
    fn plan_cache_is_bounded_lru() {
        let conn = connection();
        conn.set_plan_cache_capacity(2);
        conn.query("SELECT deptno FROM emp").unwrap();
        conn.query("SELECT sal FROM emp").unwrap();
        assert_eq!(conn.plan_cache_len(), 2);
        // Touch the first so the second is the LRU victim.
        conn.query("SELECT deptno FROM emp").unwrap();
        conn.query("SELECT deptno, sal FROM emp").unwrap();
        assert_eq!(conn.plan_cache_len(), 2);
        assert!(conn
            .explain("SELECT deptno FROM emp")
            .unwrap()
            .starts_with("-- plan cache: hit"));
        assert!(conn
            .explain("SELECT sal FROM emp")
            .unwrap()
            .starts_with("-- plan cache: miss"));
    }

    #[test]
    fn result_set_streams_rows() {
        let conn = connection();
        let mut rs = conn
            .execute("SELECT deptno FROM emp ORDER BY deptno")
            .unwrap();
        assert_eq!(rs.columns(), ["deptno"]);
        assert_eq!(rs.next_row().unwrap(), Some(vec![Datum::Int(10)]));
        assert_eq!(rs.next_row().unwrap(), Some(vec![Datum::Int(10)]));
        assert_eq!(rs.next_row().unwrap(), Some(vec![Datum::Int(20)]));
        assert_eq!(rs.next_row().unwrap(), None);
    }

    #[test]
    fn builder_wires_engine_for_all_modes() {
        use crate::prepared::ExecutionMode;
        for mode in [
            ExecutionMode::Row,
            ExecutionMode::Batch,
            ExecutionMode::Fused,
        ] {
            let catalog = connection().catalog().clone();
            let conn = Connection::builder(catalog).execution_mode(mode).build();
            let r = conn
                .query("SELECT deptno, SUM(sal) AS s FROM hr.emp GROUP BY deptno ORDER BY deptno")
                .unwrap();
            assert_eq!(
                r.rows,
                vec![
                    vec![Datum::Int(10), Datum::Int(300)],
                    vec![Datum::Int(20), Datum::Int(300)],
                ],
                "{mode:?}"
            );
        }
    }

    #[test]
    fn builder_parallelism_end_to_end() {
        use rcalcite_core::exec::Parallelism;
        let catalog = Catalog::new();
        let s = Schema::new();
        s.add_table(
            "t",
            MemTable::new(
                RowTypeBuilder::new()
                    .add_not_null("k", TypeKind::Integer)
                    .add_not_null("v", TypeKind::Integer)
                    .build(),
                (0..200)
                    .map(|i| vec![Datum::Int(i % 7), Datum::Int(i)])
                    .collect(),
            ),
        );
        catalog.add_schema("hr", s);
        let sql = "SELECT k, SUM(v) AS s FROM t WHERE v > 20 GROUP BY k ORDER BY k";
        let reference = Connection::builder(catalog.clone())
            .execution_mode(ExecutionMode::Row)
            .build()
            .query(sql)
            .unwrap();
        let conn = Connection::builder(catalog)
            .workers(3)
            .morsel_size(8)
            .build();
        assert_eq!(conn.parallelism(), Parallelism::new(3, 8));
        assert_eq!(conn.query(sql).unwrap(), reference);
        // EXPLAIN names the mode/workers on its header and renders the
        // exchange placement.
        let text = conn.explain(sql).unwrap();
        assert!(text.contains("mode: fused | workers: 3"), "{text}");
        assert!(text.contains("-- parallel plan"), "{text}");
        assert!(text.contains("Exchange["), "{text}");
        // Prepared statements ride the same parallel execution path.
        let stmt = conn
            .prepare("SELECT k, SUM(v) AS s FROM t WHERE v > ? GROUP BY k ORDER BY k")
            .unwrap();
        assert_eq!(stmt.query(&[Datum::Int(20)]).unwrap(), reference);
    }

    #[test]
    fn builder_memory_budget_end_to_end() {
        let catalog = Catalog::new();
        let s = Schema::new();
        s.add_table(
            "t",
            MemTable::new(
                RowTypeBuilder::new()
                    .add_not_null("k", TypeKind::Integer)
                    .add_not_null("v", TypeKind::Integer)
                    .build(),
                (0..5000)
                    .map(|i| vec![Datum::Int(i % 97), Datum::Int((i * 37) % 5000)])
                    .collect(),
            ),
        );
        catalog.add_schema("hr", s);
        let sql = "SELECT a.k, a.v FROM t AS a JOIN t AS b ON a.v = b.v ORDER BY a.v, a.k";
        let reference = Connection::builder(catalog.clone())
            .workers(1)
            .build()
            .query(sql)
            .unwrap();
        // One spill page of budget: the join build and the sort input
        // (5000 two-Int rows each, ~90 KiB as columns) must go to disk.
        let conn = Connection::builder(catalog)
            .workers(1)
            .memory_budget(32 * 1024)
            .build();
        assert_eq!(conn.query(sql).unwrap(), reference);
        assert!(!conn.spill_stats().stayed_in_memory());
        let ops: Vec<&str> = conn.spill_stats().events().iter().map(|e| e.op).collect();
        assert!(ops.contains(&"hash_join"), "{ops:?}");
        assert!(ops.contains(&"sort"), "{ops:?}");
        // EXPLAIN predicts the degradation from planner metadata.
        let text = conn.explain(sql).unwrap();
        assert!(text.contains("-- spill: hash_join"), "{text}");
        assert!(text.contains("partitions"), "{text}");
    }

    #[test]
    fn to_table_handles_empty_and_wide_cells() {
        // Empty result: header plus divider of matching width.
        let empty = QueryResult {
            columns: vec!["a".into(), "long_name".into()],
            rows: vec![],
        };
        let t = empty.to_table();
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1].chars().count(), lines[0].chars().count());
        assert!(lines[1].chars().all(|c| c == '-'));
        // Multi-character (and multi-byte) cells widen their column; the
        // divider spans the header, which is padded to the same width.
        let wide = QueryResult {
            columns: vec!["x".into()],
            rows: vec![vec![Datum::str("ünïcödé-value")]],
        };
        let t = wide.to_table();
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0].chars().count(), "ünïcödé-value".chars().count());
        assert_eq!(lines[1].chars().count(), lines[0].chars().count());
        assert_eq!(lines[2].chars().count(), lines[0].chars().count());
    }
}
