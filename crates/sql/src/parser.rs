//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::lexer::{tokenize, Token};
use rcalcite_core::error::{CalciteError, Result};

pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Number of `?` placeholders seen so far; each occurrence takes the
    /// next ordinal, in lexical order.
    params: usize,
}

/// Parses one statement: a query, `EXPLAIN`, DDL/DML (`CREATE TABLE`,
/// `CREATE [MATERIALIZED] VIEW`, `INSERT INTO`, `UPDATE`, `DELETE FROM`,
/// `DROP TABLE`), or transaction control (`BEGIN`/`COMMIT`/`ROLLBACK`).
pub fn parse(sql: &str) -> Result<Stmt> {
    let mut p = Parser {
        tokens: tokenize(sql)?,
        pos: 0,
        params: 0,
    };
    let stmt = if p.eat_kw("EXPLAIN") {
        if p.peek().is_kw("UPDATE") {
            Stmt::ExplainDml(Box::new(p.parse_update()?))
        } else if p.peek().is_kw("DELETE") {
            Stmt::ExplainDml(Box::new(p.parse_delete()?))
        } else {
            Stmt::Explain(p.parse_query()?)
        }
    } else if p.peek().is_kw("CREATE") {
        p.parse_create()?
    } else if p.peek().is_kw("INSERT") {
        p.parse_insert()?
    } else if p.peek().is_kw("UPDATE") {
        p.parse_update()?
    } else if p.peek().is_kw("DELETE") {
        p.parse_delete()?
    } else if p.peek().is_kw("DROP") {
        p.parse_drop()?
    } else if p.peek().is_kw("ANALYZE") {
        p.parse_analyze()?
    } else if p.eat_kw("REFRESH") {
        p.expect_kw("MATERIALIZED")?;
        p.expect_kw("VIEW")?;
        let name = p.qualified_name()?;
        Stmt::RefreshMaterializedView { name }
    } else if p.eat_kw("BEGIN") || p.eat_kw("START") {
        // BEGIN [TRANSACTION | WORK] / START TRANSACTION
        if !p.eat_kw("TRANSACTION") {
            p.eat_kw("WORK");
        }
        Stmt::Begin
    } else if p.eat_kw("COMMIT") {
        p.eat_kw("WORK");
        Stmt::Commit
    } else if p.eat_kw("ROLLBACK") {
        p.eat_kw("WORK");
        Stmt::Rollback
    } else {
        Stmt::Query(p.parse_query()?)
    };
    p.eat_sym(";");
    p.expect_eof()?;
    Ok(stmt)
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek_ahead(&self, n: usize) -> &Token {
        self.tokens.get(self.pos + n).unwrap_or(&Token::Eof)
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(CalciteError::parse(format!(
                "expected {kw}, found {}",
                self.peek()
            )))
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Token::Sym(x) if *x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(CalciteError::parse(format!(
                "expected '{s}', found {}",
                self.peek()
            )))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        match self.peek() {
            Token::Eof => Ok(()),
            t => Err(CalciteError::parse(format!("unexpected trailing {t}"))),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            Token::QuotedIdent(s) => Ok(s),
            t => Err(CalciteError::parse(format!(
                "expected identifier, found {t}"
            ))),
        }
    }

    fn number_u64(&mut self) -> Result<u64> {
        match self.next() {
            Token::Number(s) => s
                .parse()
                .map_err(|_| CalciteError::parse(format!("invalid count '{s}'"))),
            t => Err(CalciteError::parse(format!("expected number, found {t}"))),
        }
    }

    // -------------------------------------------------------------
    // DDL / DML
    // -------------------------------------------------------------

    fn qualified_name(&mut self) -> Result<Vec<String>> {
        let mut parts = vec![self.ident()?];
        while self.eat_sym(".") {
            parts.push(self.ident()?);
        }
        Ok(parts)
    }

    fn parse_create(&mut self) -> Result<Stmt> {
        self.expect_kw("CREATE")?;
        if self.eat_kw("TABLE") {
            let name = self.qualified_name()?;
            self.expect_sym("(")?;
            let mut columns = vec![];
            loop {
                let col = self.ident()?;
                let ty = self.parse_type()?;
                let not_null = if self.eat_kw("NOT") {
                    self.expect_kw("NULL")?;
                    true
                } else {
                    self.eat_kw("NULL");
                    false
                };
                columns.push(ColumnDef {
                    name: col,
                    ty,
                    not_null,
                });
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            return Ok(Stmt::CreateTable { name, columns });
        }
        if self.eat_kw("INDEX") {
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.qualified_name()?;
            self.expect_sym("(")?;
            let mut columns = vec![self.ident()?];
            while self.eat_sym(",") {
                columns.push(self.ident()?);
            }
            self.expect_sym(")")?;
            let hash = if self.eat_kw("USING") {
                let method = self.ident()?;
                match method.to_ascii_lowercase().as_str() {
                    "hash" => true,
                    "btree" | "ordered" => false,
                    other => {
                        return Err(CalciteError::parse(format!(
                            "unknown index method '{other}' (expected HASH or BTREE)"
                        )))
                    }
                }
            } else {
                false
            };
            return Ok(Stmt::CreateIndex {
                name,
                table,
                columns,
                hash,
            });
        }
        let materialized = self.eat_kw("MATERIALIZED");
        if self.eat_kw("VIEW") {
            let name = self.qualified_name()?;
            self.expect_kw("AS")?;
            let query = self.parse_query()?;
            return Ok(if materialized {
                Stmt::CreateMaterializedView { name, query }
            } else {
                Stmt::CreateView { name, query }
            });
        }
        Err(CalciteError::parse(
            "expected TABLE, INDEX or [MATERIALIZED] VIEW after CREATE",
        ))
    }

    fn parse_insert(&mut self) -> Result<Stmt> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.qualified_name()?;
        let source = self.parse_query()?;
        Ok(Stmt::Insert { table, source })
    }

    fn parse_update(&mut self) -> Result<Stmt> {
        self.expect_kw("UPDATE")?;
        let table = self.qualified_name()?;
        self.expect_kw("SET")?;
        let mut assignments = vec![];
        loop {
            let column = self.ident()?;
            self.expect_sym("=")?;
            let value = self.parse_expr()?;
            assignments.push((column, value));
            if !self.eat_sym(",") {
                break;
            }
        }
        let selection = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Stmt::Update {
            table,
            assignments,
            selection,
        })
    }

    fn parse_delete(&mut self) -> Result<Stmt> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.qualified_name()?;
        let selection = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Stmt::Delete { table, selection })
    }

    fn parse_drop(&mut self) -> Result<Stmt> {
        self.expect_kw("DROP")?;
        if self.eat_kw("INDEX") {
            let if_exists = if self.eat_kw("IF") {
                self.expect_kw("EXISTS")?;
                true
            } else {
                false
            };
            let name = self.ident()?;
            let table = if self.eat_kw("ON") {
                Some(self.qualified_name()?)
            } else {
                None
            };
            return Ok(Stmt::DropIndex {
                name,
                table,
                if_exists,
            });
        }
        if self.eat_kw("MATERIALIZED") {
            self.expect_kw("VIEW")?;
            let if_exists = if self.eat_kw("IF") {
                self.expect_kw("EXISTS")?;
                true
            } else {
                false
            };
            let name = self.qualified_name()?;
            return Ok(Stmt::DropMaterializedView { name, if_exists });
        }
        self.expect_kw("TABLE")?;
        let if_exists = if self.eat_kw("IF") {
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.qualified_name()?;
        Ok(Stmt::DropTable { name, if_exists })
    }

    fn parse_analyze(&mut self) -> Result<Stmt> {
        self.expect_kw("ANALYZE")?;
        self.eat_kw("TABLE");
        // A bare `ANALYZE` analyzes every table in the catalog.
        let name = if matches!(self.peek(), Token::Eof)
            || matches!(self.peek(), Token::Sym(s) if *s == ";")
        {
            None
        } else {
            Some(self.qualified_name()?)
        };
        Ok(Stmt::Analyze { name })
    }

    // -------------------------------------------------------------
    // Query structure
    // -------------------------------------------------------------

    pub fn parse_query(&mut self) -> Result<Query> {
        let body = self.parse_set_expr()?;
        let mut order_by = vec![];
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let mut offset = None;
        let mut limit = None;
        // Both LIMIT n OFFSET m and OFFSET m ROWS FETCH ... forms.
        if self.eat_kw("LIMIT") {
            limit = Some(self.number_u64()?);
            if self.eat_kw("OFFSET") {
                offset = Some(self.number_u64()?);
            }
        } else if self.eat_kw("OFFSET") {
            offset = Some(self.number_u64()?);
            self.eat_kw("ROWS");
            if self.eat_kw("FETCH") {
                self.eat_kw("NEXT");
                self.eat_kw("FIRST");
                limit = Some(self.number_u64()?);
                self.eat_kw("ROWS");
                self.eat_kw("ONLY");
            }
        } else if self.eat_kw("FETCH") {
            self.eat_kw("NEXT");
            self.eat_kw("FIRST");
            limit = Some(self.number_u64()?);
            self.eat_kw("ROWS");
            self.eat_kw("ONLY");
        }
        Ok(Query {
            body,
            order_by,
            offset,
            limit,
        })
    }

    fn parse_set_expr(&mut self) -> Result<SetExpr> {
        let mut left = self.parse_set_term()?;
        loop {
            let op = if self.peek().is_kw("UNION") {
                SetOpKind::Union
            } else if self.peek().is_kw("INTERSECT") {
                SetOpKind::Intersect
            } else if self.peek().is_kw("EXCEPT") {
                SetOpKind::Except
            } else {
                return Ok(left);
            };
            self.pos += 1;
            let all = self.eat_kw("ALL");
            self.eat_kw("DISTINCT");
            let right = self.parse_set_term()?;
            left = SetExpr::SetOp {
                op,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn parse_set_term(&mut self) -> Result<SetExpr> {
        if self.eat_sym("(") {
            let inner = self.parse_set_expr()?;
            self.expect_sym(")")?;
            return Ok(inner);
        }
        if self.peek().is_kw("VALUES") {
            self.pos += 1;
            let mut rows = vec![];
            loop {
                self.expect_sym("(")?;
                let mut row = vec![];
                loop {
                    row.push(self.parse_expr()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
                rows.push(row);
                if !self.eat_sym(",") {
                    break;
                }
            }
            return Ok(SetExpr::Values(rows));
        }
        Ok(SetExpr::Select(Box::new(self.parse_select()?)))
    }

    fn parse_select(&mut self) -> Result<Select> {
        self.expect_kw("SELECT")?;
        let stream = self.eat_kw("STREAM");
        let distinct = self.eat_kw("DISTINCT");
        self.eat_kw("ALL");

        let mut items = vec![];
        loop {
            if self.eat_sym("*") {
                items.push(SelectItem::Wildcard);
            } else if matches!(self.peek(), Token::Ident(_) | Token::QuotedIdent(_))
                && matches!(self.peek_ahead(1), Token::Sym("."))
                && matches!(self.peek_ahead(2), Token::Sym("*"))
            {
                let alias = self.ident()?;
                self.expect_sym(".")?;
                self.expect_sym("*")?;
                items.push(SelectItem::QualifiedWildcard(alias));
            } else {
                let expr = self.parse_expr()?;
                let alias = self.parse_alias()?;
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_sym(",") {
                break;
            }
        }

        let from = if self.eat_kw("FROM") {
            Some(self.parse_table_expr()?)
        } else {
            None
        };
        let selection = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = vec![];
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Select {
            stream,
            distinct,
            items,
            from,
            selection,
            group_by,
            having,
        })
    }

    /// `AS alias`, bare alias, or nothing. Bare aliases must not collide
    /// with clause keywords.
    fn parse_alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("AS") {
            return Ok(Some(self.ident()?));
        }
        const STOP: &[&str] = &[
            "FROM",
            "WHERE",
            "GROUP",
            "HAVING",
            "ORDER",
            "LIMIT",
            "OFFSET",
            "FETCH",
            "UNION",
            "INTERSECT",
            "EXCEPT",
            "ON",
            "JOIN",
            "INNER",
            "LEFT",
            "RIGHT",
            "FULL",
            "CROSS",
            "USING",
            "AND",
            "OR",
            "AS",
        ];
        match self.peek() {
            Token::Ident(s) if !STOP.iter().any(|k| s.eq_ignore_ascii_case(k)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(Some(s))
            }
            Token::QuotedIdent(s) => {
                let s = s.clone();
                self.pos += 1;
                Ok(Some(s))
            }
            _ => Ok(None),
        }
    }

    // -------------------------------------------------------------
    // FROM clause
    // -------------------------------------------------------------

    fn parse_table_expr(&mut self) -> Result<TableExpr> {
        let mut left = self.parse_table_factor()?;
        loop {
            // Comma join = cross join.
            if self.eat_sym(",") {
                let right = self.parse_table_factor()?;
                left = TableExpr::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    kind: AstJoinKind::Cross,
                    cond: JoinCond::None,
                };
                continue;
            }
            let kind = if self.eat_kw("CROSS") {
                self.expect_kw("JOIN")?;
                AstJoinKind::Cross
            } else if self.eat_kw("INNER") {
                self.expect_kw("JOIN")?;
                AstJoinKind::Inner
            } else if self.eat_kw("LEFT") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                AstJoinKind::Left
            } else if self.eat_kw("RIGHT") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                AstJoinKind::Right
            } else if self.eat_kw("FULL") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                AstJoinKind::Full
            } else if self.eat_kw("JOIN") {
                AstJoinKind::Inner
            } else {
                return Ok(left);
            };
            let right = self.parse_table_factor()?;
            let cond = if kind == AstJoinKind::Cross {
                JoinCond::None
            } else if self.eat_kw("ON") {
                JoinCond::On(self.parse_expr()?)
            } else if self.eat_kw("USING") {
                self.expect_sym("(")?;
                let mut cols = vec![];
                loop {
                    cols.push(self.ident()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
                JoinCond::Using(cols)
            } else {
                return Err(CalciteError::parse("JOIN requires ON or USING"));
            };
            left = TableExpr::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                cond,
            };
        }
    }

    fn parse_table_factor(&mut self) -> Result<TableExpr> {
        if self.eat_sym("(") {
            // Subquery or parenthesized join.
            if self.peek().is_kw("SELECT") || self.peek().is_kw("VALUES") {
                let q = self.parse_query()?;
                self.expect_sym(")")?;
                let alias = self.parse_alias()?;
                return Ok(TableExpr::Subquery {
                    query: Box::new(q),
                    alias,
                });
            }
            let inner = self.parse_table_expr()?;
            self.expect_sym(")")?;
            return Ok(inner);
        }
        let mut name = vec![self.ident()?];
        while self.eat_sym(".") {
            name.push(self.ident()?);
        }
        let alias = self.parse_alias()?;
        Ok(TableExpr::Table { name, alias })
    }

    // -------------------------------------------------------------
    // Expressions (precedence climbing)
    // -------------------------------------------------------------

    pub fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("OR") {
            let right = self.parse_and()?;
            left = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("AND") {
            let right = self.parse_not()?;
            left = Expr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            return Ok(Expr::Not(Box::new(self.parse_not()?)));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;

        // Postfix predicates.
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = if self.peek().is_kw("NOT")
            && (self.peek_ahead(1).is_kw("LIKE")
                || self.peek_ahead(1).is_kw("BETWEEN")
                || self.peek_ahead(1).is_kw("IN"))
        {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.eat_kw("LIKE") {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_kw("AND")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect_sym("(")?;
            let mut list = vec![];
            loop {
                list.push(self.parse_expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if negated {
            return Err(CalciteError::parse("dangling NOT"));
        }

        let op = if self.eat_sym("=") {
            BinOp::Eq
        } else if self.eat_sym("<>") {
            BinOp::Ne
        } else if self.eat_sym("<=") {
            BinOp::Le
        } else if self.eat_sym(">=") {
            BinOp::Ge
        } else if self.eat_sym("<") {
            BinOp::Lt
        } else if self.eat_sym(">") {
            BinOp::Gt
        } else {
            return Ok(left);
        };
        let right = self.parse_additive()?;
        Ok(Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = if self.eat_sym("+") {
                BinOp::Plus
            } else if self.eat_sym("-") {
                BinOp::Minus
            } else if self.eat_sym("||") {
                BinOp::Concat
            } else {
                return Ok(left);
            };
            let right = self.parse_multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = if self.eat_sym("*") {
                BinOp::Times
            } else if self.eat_sym("/") {
                BinOp::Divide
            } else if self.eat_sym("%") {
                BinOp::Mod
            } else {
                return Ok(left);
            };
            let right = self.parse_unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_sym("-") {
            return Ok(Expr::Unary {
                minus: true,
                expr: Box::new(self.parse_unary()?),
            });
        }
        if self.eat_sym("+") {
            return self.parse_unary();
        }
        self.parse_postfix()
    }

    /// Primary expression plus `[index]` accesses.
    fn parse_postfix(&mut self) -> Result<Expr> {
        let mut e = self.parse_primary()?;
        while self.eat_sym("[") {
            let idx = self.parse_expr()?;
            self.expect_sym("]")?;
            e = Expr::Item {
                base: Box::new(e),
                index: Box::new(idx),
            };
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        // Parenthesized expression.
        if self.eat_sym("(") {
            let e = self.parse_expr()?;
            self.expect_sym(")")?;
            return self.parse_postfix_on(e);
        }
        // Dynamic parameter placeholder.
        if self.eat_sym("?") {
            let i = self.params;
            self.params += 1;
            return Ok(Expr::Param(i));
        }
        match self.peek().clone() {
            Token::Number(s) => {
                self.pos += 1;
                if s.contains('.') || s.contains('e') || s.contains('E') {
                    s.parse::<f64>()
                        .map(|d| Expr::Literal(Lit::Double(d)))
                        .map_err(|_| CalciteError::parse(format!("bad number '{s}'")))
                } else {
                    s.parse::<i64>()
                        .map(|i| Expr::Literal(Lit::Int(i)))
                        .map_err(|_| CalciteError::parse(format!("bad number '{s}'")))
                }
            }
            Token::Str(s) => {
                self.pos += 1;
                Ok(Expr::Literal(Lit::Str(s)))
            }
            Token::QuotedIdent(_) => {
                let mut parts = vec![self.ident()?];
                while self.eat_sym(".") {
                    parts.push(self.ident()?);
                }
                Ok(Expr::Ident(parts))
            }
            Token::Ident(word) => self.parse_word_expr(word),
            t => Err(CalciteError::parse(format!("unexpected {t}"))),
        }
    }

    fn parse_postfix_on(&mut self, mut e: Expr) -> Result<Expr> {
        while self.eat_sym("[") {
            let idx = self.parse_expr()?;
            self.expect_sym("]")?;
            e = Expr::Item {
                base: Box::new(e),
                index: Box::new(idx),
            };
        }
        Ok(e)
    }

    /// Keywords that can never start a primary expression; hitting one
    /// here means a clause is malformed (e.g. `SELECT FROM t`).
    const RESERVED: &'static [&'static str] = &[
        "FROM",
        "WHERE",
        "GROUP",
        "HAVING",
        "ORDER",
        "LIMIT",
        "OFFSET",
        "FETCH",
        "UNION",
        "INTERSECT",
        "EXCEPT",
        "ON",
        "JOIN",
        "INNER",
        "LEFT",
        "RIGHT",
        "FULL",
        "CROSS",
        "USING",
        "AND",
        "OR",
        "AS",
        "BY",
        "SELECT",
        "THEN",
        "WHEN",
        "ELSE",
        "END",
        "ASC",
        "DESC",
        "BETWEEN",
        "IN",
        "LIKE",
        "IS",
    ];

    fn parse_word_expr(&mut self, word: String) -> Result<Expr> {
        let upper = word.to_ascii_uppercase();
        if Self::RESERVED.contains(&upper.as_str()) {
            return Err(CalciteError::parse(format!(
                "unexpected keyword {upper} in expression"
            )));
        }
        match upper.as_str() {
            "TRUE" => {
                self.pos += 1;
                Ok(Expr::Literal(Lit::Bool(true)))
            }
            "FALSE" => {
                self.pos += 1;
                Ok(Expr::Literal(Lit::Bool(false)))
            }
            "NULL" => {
                self.pos += 1;
                Ok(Expr::Literal(Lit::Null))
            }
            "DATE" if matches!(self.peek_ahead(1), Token::Str(_)) => {
                self.pos += 1;
                if let Token::Str(s) = self.next() {
                    Ok(Expr::Literal(Lit::Date(s)))
                } else {
                    unreachable!()
                }
            }
            "TIMESTAMP" if matches!(self.peek_ahead(1), Token::Str(_)) => {
                self.pos += 1;
                if let Token::Str(s) = self.next() {
                    Ok(Expr::Literal(Lit::Timestamp(s)))
                } else {
                    unreachable!()
                }
            }
            "INTERVAL" => {
                self.pos += 1;
                let value = match self.next() {
                    Token::Str(s) => s,
                    Token::Number(s) => s,
                    t => {
                        return Err(CalciteError::parse(format!(
                            "expected interval value, found {t}"
                        )))
                    }
                };
                let unit_word = self.ident()?;
                let unit = match unit_word.to_ascii_uppercase().as_str() {
                    "SECOND" | "SECONDS" => TimeUnit::Second,
                    "MINUTE" | "MINUTES" => TimeUnit::Minute,
                    "HOUR" | "HOURS" => TimeUnit::Hour,
                    "DAY" | "DAYS" => TimeUnit::Day,
                    u => {
                        return Err(CalciteError::parse(format!(
                            "unsupported interval unit '{u}'"
                        )))
                    }
                };
                Ok(Expr::Literal(Lit::Interval { value, unit }))
            }
            "CASE" => {
                self.pos += 1;
                let operand = if !self.peek().is_kw("WHEN") {
                    Some(Box::new(self.parse_expr()?))
                } else {
                    None
                };
                let mut whens = vec![];
                while self.eat_kw("WHEN") {
                    let cond = self.parse_expr()?;
                    self.expect_kw("THEN")?;
                    let val = self.parse_expr()?;
                    whens.push((cond, val));
                }
                let else_ = if self.eat_kw("ELSE") {
                    Some(Box::new(self.parse_expr()?))
                } else {
                    None
                };
                self.expect_kw("END")?;
                Ok(Expr::Case {
                    operand,
                    whens,
                    else_,
                })
            }
            "CAST" => {
                self.pos += 1;
                self.expect_sym("(")?;
                let e = self.parse_expr()?;
                self.expect_kw("AS")?;
                let ty = self.parse_type()?;
                self.expect_sym(")")?;
                Ok(Expr::Cast {
                    expr: Box::new(e),
                    ty,
                })
            }
            _ => {
                // Function call?
                if matches!(self.peek_ahead(1), Token::Sym("(")) {
                    self.pos += 2; // name + (
                    let mut distinct = false;
                    let mut star = false;
                    let mut args = vec![];
                    if self.eat_sym("*") {
                        star = true;
                    } else if !matches!(self.peek(), Token::Sym(")")) {
                        distinct = self.eat_kw("DISTINCT");
                        self.eat_kw("ALL");
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_sym(",") {
                                break;
                            }
                        }
                    }
                    self.expect_sym(")")?;
                    let over = if self.eat_kw("OVER") {
                        Some(self.parse_window_spec()?)
                    } else {
                        None
                    };
                    return Ok(Expr::Func {
                        name: word,
                        args,
                        distinct,
                        star,
                        over,
                    });
                }
                // Qualified identifier.
                let mut parts = vec![self.ident()?];
                while self.eat_sym(".") {
                    parts.push(self.ident()?);
                }
                Ok(Expr::Ident(parts))
            }
        }
    }

    fn parse_type(&mut self) -> Result<AstType> {
        let name = self.ident()?;
        let ty = match name.to_ascii_uppercase().as_str() {
            "BOOLEAN" => AstType::Boolean,
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "TINYINT" => AstType::Integer,
            "FLOAT" | "REAL" | "DOUBLE" | "DECIMAL" | "NUMERIC" => AstType::Double,
            "VARCHAR" | "CHAR" | "TEXT" | "STRING" => AstType::Varchar,
            "DATE" => AstType::Date,
            "TIMESTAMP" => AstType::Timestamp,
            "GEOMETRY" => AstType::Geometry,
            "ANY" => AstType::Any,
            other => return Err(CalciteError::parse(format!("unknown type '{other}'"))),
        };
        // Optional (precision[, scale]).
        if self.eat_sym("(") {
            self.number_u64()?;
            if self.eat_sym(",") {
                self.number_u64()?;
            }
            self.expect_sym(")")?;
        }
        Ok(ty)
    }

    fn parse_window_spec(&mut self) -> Result<WindowSpec> {
        self.expect_sym("(")?;
        let mut partition = vec![];
        let mut order = vec![];
        let mut frame = None;
        loop {
            if self.eat_kw("PARTITION") {
                self.expect_kw("BY")?;
                loop {
                    partition.push(self.parse_expr()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
            } else if self.eat_kw("ORDER") {
                self.expect_kw("BY")?;
                loop {
                    let expr = self.parse_expr()?;
                    let desc = if self.eat_kw("DESC") {
                        true
                    } else {
                        self.eat_kw("ASC");
                        false
                    };
                    order.push(OrderItem { expr, desc });
                    if !self.eat_sym(",") {
                        break;
                    }
                }
            } else if self.peek().is_kw("ROWS") || self.peek().is_kw("RANGE") {
                let rows = self.eat_kw("ROWS");
                if !rows {
                    self.expect_kw("RANGE")?;
                }
                if self.eat_kw("BETWEEN") {
                    let lower = self.parse_frame_bound()?;
                    self.expect_kw("AND")?;
                    let upper = self.parse_frame_bound()?;
                    frame = Some(FrameSpec {
                        rows,
                        lower,
                        upper: Some(upper),
                    });
                } else {
                    let lower = self.parse_frame_bound()?;
                    frame = Some(FrameSpec {
                        rows,
                        lower,
                        upper: None,
                    });
                }
            } else {
                break;
            }
        }
        self.expect_sym(")")?;
        Ok(WindowSpec {
            partition,
            order,
            frame,
        })
    }

    fn parse_frame_bound(&mut self) -> Result<AstFrameBound> {
        if self.eat_kw("UNBOUNDED") {
            if self.eat_kw("PRECEDING") {
                return Ok(AstFrameBound::UnboundedPreceding);
            }
            self.expect_kw("FOLLOWING")?;
            return Ok(AstFrameBound::UnboundedFollowing);
        }
        if self.eat_kw("CURRENT") {
            self.expect_kw("ROW")?;
            return Ok(AstFrameBound::CurrentRow);
        }
        let e = self.parse_expr()?;
        if self.eat_kw("PRECEDING") {
            return Ok(AstFrameBound::Preceding(Box::new(e)));
        }
        self.expect_kw("FOLLOWING")?;
        Ok(AstFrameBound::Following(Box::new(e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(sql: &str) -> Query {
        match parse(sql).unwrap() {
            Stmt::Query(q) => q,
            _ => panic!("expected query"),
        }
    }

    fn sel(sql: &str) -> Select {
        match q(sql).body {
            SetExpr::Select(s) => *s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn basic_select() {
        let s = sel("SELECT a, b AS bee FROM t WHERE a > 1");
        assert_eq!(s.items.len(), 2);
        assert!(matches!(
            &s.items[1],
            SelectItem::Expr { alias: Some(a), .. } if a == "bee"
        ));
        assert!(s.selection.is_some());
        assert!(!s.stream);
    }

    #[test]
    fn paper_figure4_query_parses() {
        let s = sel("SELECT products.name, COUNT(*) \
             FROM sales JOIN products USING (productId) \
             WHERE sales.discount IS NOT NULL \
             GROUP BY products.name");
        assert_eq!(s.group_by.len(), 1);
        match s.from.unwrap() {
            TableExpr::Join { cond, kind, .. } => {
                assert_eq!(kind, AstJoinKind::Inner);
                assert_eq!(cond, JoinCond::Using(vec!["productId".into()]));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            s.selection,
            Some(Expr::IsNull { negated: true, .. })
        ));
    }

    #[test]
    fn order_by_count_desc_and_limit() {
        let query = q("SELECT a FROM t ORDER BY COUNT(*) DESC, a LIMIT 10 OFFSET 2");
        assert_eq!(query.order_by.len(), 2);
        assert!(query.order_by[0].desc);
        assert_eq!(query.limit, Some(10));
        assert_eq!(query.offset, Some(2));
    }

    #[test]
    fn stream_query_parses() {
        // The §7.2 example.
        let s = sel("SELECT STREAM rowtime, productId, units FROM Orders WHERE units > 25");
        assert!(s.stream);
        assert_eq!(s.items.len(), 3);
    }

    #[test]
    fn tumble_group_by_parses() {
        let s = sel(
            "SELECT STREAM TUMBLE_END(rowtime, INTERVAL '1' HOUR) AS rowtime, productId, \
             COUNT(*) AS c, SUM(units) AS units \
             FROM Orders \
             GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR), productId",
        );
        assert_eq!(s.group_by.len(), 2);
        assert!(matches!(
            &s.group_by[0],
            Expr::Func { name, .. } if name.eq_ignore_ascii_case("tumble")
        ));
    }

    #[test]
    fn window_over_clause() {
        // The §7.2 sliding-window query.
        let s = sel("SELECT STREAM rowtime, productId, units, \
             SUM(units) OVER (PARTITION BY productId ORDER BY rowtime \
             RANGE INTERVAL '1' HOUR PRECEDING) unitsLastHour FROM Orders");
        match &s.items[3] {
            SelectItem::Expr {
                expr: Expr::Func { over: Some(w), .. },
                alias,
            } => {
                assert_eq!(alias.as_deref(), Some("unitsLastHour"));
                assert_eq!(w.partition.len(), 1);
                assert_eq!(w.order.len(), 1);
                let f = w.frame.as_ref().unwrap();
                assert!(!f.rows);
                assert!(matches!(f.lower, AstFrameBound::Preceding(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn semistructured_item_access() {
        // The §7.1 MongoDB zips view.
        let s = sel("SELECT CAST(_MAP['city'] AS varchar(20)) AS city, \
             CAST(_MAP['loc'][0] AS float) AS longitude \
             FROM mongo_raw.zips");
        match &s.items[1] {
            SelectItem::Expr {
                expr: Expr::Cast { expr, ty },
                ..
            } => {
                assert_eq!(*ty, AstType::Double);
                assert!(matches!(**expr, Expr::Item { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn join_between_interval_stream_join() {
        // The §7.2 stream-to-stream join.
        let s = sel(
            "SELECT STREAM o.rowtime, o.productId, o.orderId, s.rowtime AS shipTime \
             FROM Orders AS o JOIN Shipments AS s \
             ON o.orderId = s.orderId AND s.rowtime \
             BETWEEN o.rowtime AND o.rowtime + INTERVAL '1' HOUR",
        );
        match s.from.unwrap() {
            TableExpr::Join {
                cond: JoinCond::On(e),
                ..
            } => {
                assert!(matches!(e, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn set_operations_and_values() {
        let query = q("SELECT a FROM t UNION ALL SELECT b FROM u EXCEPT SELECT c FROM v");
        match query.body {
            SetExpr::SetOp { op, all, .. } => {
                assert_eq!(op, SetOpKind::Except);
                assert!(!all);
            }
            other => panic!("{other:?}"),
        }
        let query = q("VALUES (1, 'x'), (2, 'y')");
        match query.body {
            SetExpr::Values(rows) => assert_eq!(rows.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn subquery_in_from() {
        let s = sel("SELECT x FROM (SELECT a AS x FROM t) AS sub WHERE x > 0");
        assert!(matches!(s.from.unwrap(), TableExpr::Subquery { .. }));
    }

    #[test]
    fn case_in_not_between() {
        let s = sel("SELECT CASE WHEN a > 0 THEN 'p' ELSE 'n' END, b IN (1,2), \
             c NOT BETWEEN 1 AND 5, d NOT LIKE 'x%' FROM t");
        assert!(matches!(
            &s.items[0],
            SelectItem::Expr {
                expr: Expr::Case { .. },
                ..
            }
        ));
        assert!(matches!(
            &s.items[1],
            SelectItem::Expr {
                expr: Expr::InList { negated: false, .. },
                ..
            }
        ));
        assert!(matches!(
            &s.items[2],
            SelectItem::Expr {
                expr: Expr::Between { negated: true, .. },
                ..
            }
        ));
        assert!(matches!(
            &s.items[3],
            SelectItem::Expr {
                expr: Expr::Like { negated: true, .. },
                ..
            }
        ));
    }

    #[test]
    fn dynamic_parameters_numbered_in_order() {
        let s = sel("SELECT a + ? FROM t WHERE b = ? AND c IN (?, ?)");
        assert!(matches!(
            &s.items[0],
            SelectItem::Expr {
                expr: Expr::Binary { right, .. },
                ..
            } if matches!(**right, Expr::Param(0))
        ));
        match s.selection.unwrap() {
            Expr::Binary { left, right, .. } => {
                assert!(
                    matches!(&*left, Expr::Binary { right: r, .. } if matches!(**r, Expr::Param(1)))
                );
                assert!(matches!(
                    &*right,
                    Expr::InList { list, .. }
                        if list == &[Expr::Param(2), Expr::Param(3)]
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn explain_statement() {
        assert!(matches!(
            parse("EXPLAIN SELECT 1").unwrap(),
            Stmt::Explain(_)
        ));
    }

    #[test]
    fn operator_precedence() {
        // 1 + 2 * 3 = 7, not 9.
        let s = sel("SELECT 1 + 2 * 3");
        match &s.items[0] {
            SelectItem::Expr {
                expr:
                    Expr::Binary {
                        op: BinOp::Plus,
                        right,
                        ..
                    },
                ..
            } => {
                assert!(matches!(
                    **right,
                    Expr::Binary {
                        op: BinOp::Times,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
        // AND binds tighter than OR.
        let s = sel("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3");
        assert!(matches!(
            s.selection,
            Some(Expr::Binary { op: BinOp::Or, .. })
        ));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT a FROM").is_err());
        assert!(parse("SELECT a t JOIN u").is_err());
        assert!(parse("SELECT a FROM t WHERE").is_err());
        assert!(parse("SELECT CAST(a AS badtype) FROM t").is_err());
        assert!(parse("SELECT a FROM t trailing garbage ,").is_err());
    }

    #[test]
    fn geospatial_query_parses() {
        // The §7.3 Amsterdam query (simplified).
        let s = sel(
            "SELECT name FROM (SELECT name, ST_GeomFromText('POINT (1 2)') AS g \
             FROM country) WHERE ST_Contains(g, g)",
        );
        assert!(matches!(s.from.unwrap(), TableExpr::Subquery { .. }));
    }
}
