//! SQL tokenizer.

use rcalcite_core::error::{CalciteError, Result};
use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Unquoted identifier or keyword (stored as written).
    Ident(String),
    /// `"quoted"` identifier (never a keyword).
    QuotedIdent(String),
    /// Numeric literal text.
    Number(String),
    /// `'single quoted'` string literal (escaped quotes collapsed).
    Str(String),
    /// Operator or punctuation: `(`, `)`, `,`, `.`, `+`, `-`, `*`, `/`,
    /// `%`, `=`, `<`, `<=`, `>`, `>=`, `<>`, `!=`, `||`, `[`, `]`, and
    /// the `?` dynamic-parameter placeholder of prepared statements.
    Sym(&'static str),
    Eof,
}

impl Token {
    /// Keyword check (case-insensitive) on unquoted identifiers.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::QuotedIdent(s) => write!(f, "\"{s}\""),
            Token::Number(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Sym(s) => write!(f, "{s}"),
            Token::Eof => write!(f, "<end of input>"),
        }
    }
}

/// Tokenizes SQL text. Comments (`-- ...` and `/* ... */`) are skipped.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let chars: Vec<char> = input.chars().collect();
    let mut out = vec![];
    let mut i = 0;
    let n = chars.len();
    while i < n {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '-' && i + 1 < n && chars[i + 1] == '-' {
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Block comment.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            i += 2;
            while i + 1 < n && !(chars[i] == '*' && chars[i + 1] == '/') {
                i += 1;
            }
            if i + 1 >= n {
                return Err(CalciteError::parse("unterminated block comment"));
            }
            i += 2;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.push(Token::Ident(chars[start..i].iter().collect()));
            continue;
        }
        if c.is_ascii_digit() || (c == '.' && i + 1 < n && chars[i + 1].is_ascii_digit()) {
            let start = i;
            let mut seen_dot = false;
            while i < n
                && (chars[i].is_ascii_digit()
                    || (chars[i] == '.' && !seen_dot)
                    || chars[i] == 'e'
                    || chars[i] == 'E'
                    || ((chars[i] == '+' || chars[i] == '-')
                        && i > start
                        && (chars[i - 1] == 'e' || chars[i - 1] == 'E')))
            {
                if chars[i] == '.' {
                    seen_dot = true;
                }
                i += 1;
            }
            out.push(Token::Number(chars[start..i].iter().collect()));
            continue;
        }
        if c == '\'' {
            i += 1;
            let mut s = String::new();
            loop {
                if i >= n {
                    return Err(CalciteError::parse("unterminated string literal"));
                }
                if chars[i] == '\'' {
                    // Doubled quote escapes.
                    if i + 1 < n && chars[i + 1] == '\'' {
                        s.push('\'');
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                s.push(chars[i]);
                i += 1;
            }
            out.push(Token::Str(s));
            continue;
        }
        if c == '"' {
            i += 1;
            let start = i;
            while i < n && chars[i] != '"' {
                i += 1;
            }
            if i >= n {
                return Err(CalciteError::parse("unterminated quoted identifier"));
            }
            out.push(Token::QuotedIdent(chars[start..i].iter().collect()));
            i += 1;
            continue;
        }
        // Multi-char operators first.
        let two: String = chars[i..n.min(i + 2)].iter().collect();
        let sym: &'static str = match two.as_str() {
            "<=" => "<=",
            ">=" => ">=",
            "<>" => "<>",
            "!=" => "<>",
            "||" => "||",
            _ => match c {
                '(' => "(",
                ')' => ")",
                ',' => ",",
                '.' => ".",
                '+' => "+",
                '-' => "-",
                '*' => "*",
                '/' => "/",
                '%' => "%",
                '=' => "=",
                '<' => "<",
                '>' => ">",
                '[' => "[",
                ']' => "]",
                ';' => ";",
                '?' => "?",
                other => {
                    return Err(CalciteError::parse(format!(
                        "unexpected character '{other}'"
                    )))
                }
            },
        };
        i += sym.chars().count();
        out.push(Token::Sym(sym));
    }
    out.push(Token::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_numbers_strings() {
        let toks = tokenize("SELECT 1, 2.5, 'it''s' FROM t").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert_eq!(toks[1], Token::Number("1".into()));
        assert_eq!(toks[3], Token::Number("2.5".into()));
        assert_eq!(toks[5], Token::Str("it's".into()));
        assert!(toks[6].is_kw("from"));
    }

    #[test]
    fn operators() {
        let toks = tokenize("a <= b <> c != d || e").unwrap();
        assert_eq!(toks[1], Token::Sym("<="));
        assert_eq!(toks[3], Token::Sym("<>"));
        assert_eq!(toks[5], Token::Sym("<>"));
        assert_eq!(toks[7], Token::Sym("||"));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("SELECT -- everything\n 1 /* block */ + 2").unwrap();
        assert_eq!(toks.len(), 5); // SELECT 1 + 2 EOF
    }

    #[test]
    fn quoted_identifiers() {
        let toks = tokenize(r#"SELECT "Country" FROM t"#).unwrap();
        assert_eq!(toks[1], Token::QuotedIdent("Country".into()));
    }

    #[test]
    fn item_access_brackets() {
        let toks = tokenize("_MAP['city'][0]").unwrap();
        assert_eq!(toks[0], Token::Ident("_MAP".into()));
        assert_eq!(toks[1], Token::Sym("["));
        assert_eq!(toks[2], Token::Str("city".into()));
        assert_eq!(toks[4], Token::Sym("["));
        assert_eq!(toks[5], Token::Number("0".into()));
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("a @ b").is_err());
        assert!(tokenize("/* no end").is_err());
    }

    #[test]
    fn dynamic_parameter_placeholder() {
        let toks = tokenize("a = ? AND b > ?").unwrap();
        assert_eq!(toks[2], Token::Sym("?"));
        assert_eq!(toks[6], Token::Sym("?"));
    }

    #[test]
    fn scientific_notation() {
        let toks = tokenize("1e6 2.5E-3").unwrap();
        assert_eq!(toks[0], Token::Number("1e6".into()));
        assert_eq!(toks[1], Token::Number("2.5E-3".into()));
    }
}
