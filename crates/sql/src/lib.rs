//! # rcalcite-sql
//!
//! SQL front end and back end for rcalcite: lexer, parser, validator and
//! SQL-to-rel converter (the query-language path of Figure 1), the
//! rel-to-SQL unparser with pluggable dialects (§3/§8.2), and the embedded
//! [`connection::Connection`] facade standing in for Calcite's JDBC driver
//! (Avatica).
//!
//! Supported SQL: ANSI SELECT (joins, grouping, HAVING, set operations,
//! subqueries, ORDER BY/LIMIT, window functions) plus the paper's
//! extensions — `SELECT STREAM`, `TUMBLE` grouping (§7.2), `[]` item
//! access on semi-structured data (§7.1), and user-defined functions such
//! as the geospatial `ST_*` family (§7.3).

pub mod ast;
pub mod connection;
pub mod converter;
pub mod lexer;
pub mod parser;
pub mod prepared;
pub mod unparser;
pub mod validator;

pub use connection::{Connection, QueryResult};
pub use converter::query_to_rel;
pub use parser::parse;
pub use prepared::{ConnectionBuilder, ExecutionMode, PreparedStatement, ResultSet};
pub use unparser::{to_sql, Dialect, MySqlDialect, PostgresDialect};
