//! Relational-algebra-to-SQL unparsing. Per §3, "once the query has been
//! optimized, Calcite can translate the relational expression back to
//! SQL", letting it sit on top of engines that speak SQL but have no
//! optimizer. The JDBC adapter "supports the generation of multiple SQL
//! dialects" (§8.2) — dialects are pluggable here.
//!
//! Generated queries name intermediate columns positionally (`c0`, `c1`,
//! ...) and restore the plan's real field names in the outermost SELECT.

use rcalcite_core::datum::{format_date, format_timestamp, Datum};
use rcalcite_core::error::{CalciteError, Result};
use rcalcite_core::rel::{AggCall, JoinKind, Rel, RelOp};
use rcalcite_core::rex::{Op, RexNode};
use rcalcite_core::traits::Collation;
use rcalcite_core::types::TypeKind;

/// A SQL dialect: identifier quoting, limit syntax and type names.
pub trait Dialect: Send + Sync {
    fn name(&self) -> &str;

    fn quote(&self, ident: &str) -> String {
        format!("\"{ident}\"")
    }

    fn limit_clause(&self, offset: Option<usize>, fetch: Option<usize>) -> String {
        let mut s = String::new();
        if let Some(f) = fetch {
            s.push_str(&format!(" LIMIT {f}"));
        }
        if let Some(o) = offset {
            s.push_str(&format!(" OFFSET {o}"));
        }
        s
    }

    fn type_name(&self, kind: &TypeKind) -> String {
        match kind {
            TypeKind::Boolean => "BOOLEAN".into(),
            TypeKind::Integer => "BIGINT".into(),
            TypeKind::Double => "DOUBLE PRECISION".into(),
            TypeKind::Varchar => "VARCHAR".into(),
            TypeKind::Date => "DATE".into(),
            TypeKind::Timestamp => "TIMESTAMP".into(),
            other => other.to_string(),
        }
    }

    /// String concatenation; ANSI uses the `||` operator.
    fn concat(&self, parts: &[String]) -> String {
        format!("({})", parts.join(" || "))
    }
}

/// ANSI/PostgreSQL-style dialect.
pub struct PostgresDialect;

impl Dialect for PostgresDialect {
    fn name(&self) -> &str {
        "postgresql"
    }
}

/// MySQL-style dialect: backtick quoting, `LIMIT offset, count`,
/// `CONCAT(...)`.
pub struct MySqlDialect;

impl Dialect for MySqlDialect {
    fn name(&self) -> &str {
        "mysql"
    }

    fn quote(&self, ident: &str) -> String {
        format!("`{ident}`")
    }

    fn limit_clause(&self, offset: Option<usize>, fetch: Option<usize>) -> String {
        match (offset, fetch) {
            (None, None) => String::new(),
            (Some(o), Some(f)) => format!(" LIMIT {o}, {f}"),
            (None, Some(f)) => format!(" LIMIT {f}"),
            // MySQL has no OFFSET without LIMIT; use a huge limit.
            (Some(o), None) => format!(" LIMIT {o}, 18446744073709551615"),
        }
    }

    fn type_name(&self, kind: &TypeKind) -> String {
        match kind {
            TypeKind::Integer => "SIGNED".into(),
            TypeKind::Double => "DOUBLE".into(),
            TypeKind::Varchar => "CHAR".into(),
            other => Dialect::type_name(&PostgresDialect, other),
        }
    }

    fn concat(&self, parts: &[String]) -> String {
        format!("CONCAT({})", parts.join(", "))
    }
}

/// Unparses a logical plan to a SQL string in the given dialect.
pub fn to_sql(rel: &Rel, dialect: &dyn Dialect) -> Result<String> {
    let inner = unparse(rel, dialect, &mut 0)?;
    // Restore real output names.
    let fields = &rel.row_type().fields;
    let cols: Vec<String> = fields
        .iter()
        .enumerate()
        .map(|(i, f)| format!("c{} AS {}", i, dialect.quote(&f.name)))
        .collect();
    Ok(format!("SELECT {} FROM ({}) AS t", cols.join(", "), inner))
}

fn col(i: usize) -> String {
    format!("c{i}")
}

/// Produces a query string whose output columns are `c0..cN-1`.
fn unparse(rel: &Rel, d: &dyn Dialect, alias_seq: &mut usize) -> Result<String> {
    let fresh = |seq: &mut usize| {
        let a = format!("t{seq}");
        *seq += 1;
        a
    };
    match &rel.op {
        // Index access paths are local physical operators; they never
        // appear in plans pushed down to a remote SQL backend.
        RelOp::IndexSeek { .. } | RelOp::IndexJoin { .. } => Err(CalciteError::unsupported(
            "cannot unparse index access paths to SQL",
        )),
        RelOp::Scan { table } => {
            let cols: Vec<String> = rel
                .row_type()
                .fields
                .iter()
                .enumerate()
                .map(|(i, f)| format!("{} AS {}", d.quote(&f.name), col(i)))
                .collect();
            Ok(format!(
                "SELECT {} FROM {}.{}",
                cols.join(", "),
                d.quote(&table.schema),
                d.quote(&table.name)
            ))
        }
        RelOp::Values { tuples, row_type } => {
            if tuples.is_empty() {
                let cols: Vec<String> = (0..row_type.arity())
                    .map(|i| format!("NULL AS {}", col(i)))
                    .collect();
                let sel = if cols.is_empty() {
                    "SELECT 1".to_string()
                } else {
                    format!("SELECT {}", cols.join(", "))
                };
                return Ok(format!("{sel} WHERE 1 = 0"));
            }
            let mut selects = vec![];
            for row in tuples {
                let cols: Vec<String> = row
                    .iter()
                    .enumerate()
                    .map(|(i, v)| format!("{} AS {}", datum_sql(v), col(i)))
                    .collect();
                if cols.is_empty() {
                    selects.push("SELECT 1".to_string());
                } else {
                    selects.push(format!("SELECT {}", cols.join(", ")));
                }
            }
            Ok(selects.join(" UNION ALL "))
        }
        RelOp::Filter { condition } => {
            let input = unparse(rel.input(0), d, alias_seq)?;
            let t = fresh(alias_seq);
            let n = rel.row_type().arity();
            let cols: Vec<String> = (0..n).map(col).collect();
            Ok(format!(
                "SELECT {} FROM ({}) AS {} WHERE {}",
                cols.join(", "),
                input,
                t,
                rex_sql(condition, d, &|i| col(i))?
            ))
        }
        RelOp::Project { exprs, .. } => {
            let input = unparse(rel.input(0), d, alias_seq)?;
            let t = fresh(alias_seq);
            let cols: Vec<String> = exprs
                .iter()
                .enumerate()
                .map(|(i, e)| Ok(format!("{} AS {}", rex_sql(e, d, &|i| col(i))?, col(i))))
                .collect::<Result<_>>()?;
            Ok(format!(
                "SELECT {} FROM ({}) AS {}",
                cols.join(", "),
                input,
                t
            ))
        }
        RelOp::Join { kind, condition } => {
            let left = unparse(rel.input(0), d, alias_seq)?;
            let right = unparse(rel.input(1), d, alias_seq)?;
            let (tl, tr) = (fresh(alias_seq), fresh(alias_seq));
            let l_arity = rel.input(0).row_type().arity();
            let r_arity = rel.input(1).row_type().arity();
            let qualify = |i: usize| {
                if i < l_arity {
                    format!("{tl}.{}", col(i))
                } else {
                    format!("{tr}.{}", col(i - l_arity))
                }
            };
            let cond_sql = rex_sql(condition, d, &qualify)?;
            match kind {
                JoinKind::Inner | JoinKind::Left | JoinKind::Right | JoinKind::Full => {
                    let kw = match kind {
                        JoinKind::Inner => "INNER JOIN",
                        JoinKind::Left => "LEFT JOIN",
                        JoinKind::Right => "RIGHT JOIN",
                        JoinKind::Full => "FULL JOIN",
                        _ => unreachable!(),
                    };
                    let mut cols: Vec<String> = (0..l_arity)
                        .map(|i| format!("{tl}.{} AS {}", col(i), col(i)))
                        .collect();
                    cols.extend(
                        (0..r_arity).map(|i| format!("{tr}.{} AS {}", col(i), col(l_arity + i))),
                    );
                    Ok(format!(
                        "SELECT {} FROM ({}) AS {} {} ({}) AS {} ON {}",
                        cols.join(", "),
                        left,
                        tl,
                        kw,
                        right,
                        tr,
                        cond_sql
                    ))
                }
                JoinKind::Semi | JoinKind::Anti => {
                    let exists = if *kind == JoinKind::Semi {
                        "EXISTS"
                    } else {
                        "NOT EXISTS"
                    };
                    let cols: Vec<String> = (0..l_arity)
                        .map(|i| format!("{tl}.{} AS {}", col(i), col(i)))
                        .collect();
                    Ok(format!(
                        "SELECT {} FROM ({}) AS {} WHERE {} (SELECT 1 FROM ({}) AS {} WHERE {})",
                        cols.join(", "),
                        left,
                        tl,
                        exists,
                        right,
                        tr,
                        cond_sql
                    ))
                }
            }
        }
        RelOp::Aggregate { group, aggs } => {
            let input = unparse(rel.input(0), d, alias_seq)?;
            let t = fresh(alias_seq);
            let mut cols: Vec<String> = group
                .iter()
                .enumerate()
                .map(|(out, g)| format!("{} AS {}", col(*g), col(out)))
                .collect();
            for (i, a) in aggs.iter().enumerate() {
                cols.push(format!("{} AS {}", agg_sql(a), col(group.len() + i)));
            }
            let mut sql = format!("SELECT {} FROM ({}) AS {}", cols.join(", "), input, t);
            if !group.is_empty() {
                let keys: Vec<String> = group.iter().map(|g| col(*g)).collect();
                sql.push_str(&format!(" GROUP BY {}", keys.join(", ")));
            }
            Ok(sql)
        }
        RelOp::Sort {
            collation,
            offset,
            fetch,
        } => {
            let input = unparse(rel.input(0), d, alias_seq)?;
            let t = fresh(alias_seq);
            let n = rel.row_type().arity();
            let cols: Vec<String> = (0..n).map(col).collect();
            let mut sql = format!("SELECT {} FROM ({}) AS {}", cols.join(", "), input, t);
            if !collation.is_empty() {
                sql.push_str(&format!(" ORDER BY {}", collation_sql(collation)));
            }
            sql.push_str(&d.limit_clause(*offset, *fetch));
            Ok(sql)
        }
        RelOp::Union { all } | RelOp::Intersect { all } | RelOp::Minus { all } => {
            let kw = match &rel.op {
                RelOp::Union { .. } => "UNION",
                RelOp::Intersect { .. } => "INTERSECT",
                _ => "EXCEPT",
            };
            let sep = if *all {
                format!(" {kw} ALL ")
            } else {
                format!(" {kw} ")
            };
            let parts: Vec<String> = rel
                .inputs
                .iter()
                .map(|i| unparse(i, d, alias_seq))
                .collect::<Result<_>>()?;
            Ok(parts.join(&sep))
        }
        RelOp::Window { functions } => {
            let input = unparse(rel.input(0), d, alias_seq)?;
            let t = fresh(alias_seq);
            let base = rel.input(0).row_type().arity();
            let mut cols: Vec<String> = (0..base).map(col).collect();
            for (i, w) in functions.iter().enumerate() {
                let args: Vec<String> = w.args.iter().map(|a| col(*a)).collect();
                let mut over = String::new();
                if !w.partition.is_empty() {
                    let ps: Vec<String> = w.partition.iter().map(|p| col(*p)).collect();
                    over.push_str(&format!("PARTITION BY {}", ps.join(", ")));
                }
                if !w.order.is_empty() {
                    if !over.is_empty() {
                        over.push(' ');
                    }
                    over.push_str(&format!("ORDER BY {}", collation_sql(&w.order)));
                }
                cols.push(format!(
                    "{}({}) OVER ({}) AS {}",
                    w.func.name(),
                    args.join(", "),
                    over,
                    col(base + i)
                ));
            }
            Ok(format!(
                "SELECT {} FROM ({}) AS {}",
                cols.join(", "),
                input,
                t
            ))
        }
        RelOp::Delta | RelOp::Convert { .. } => Err(CalciteError::unsupported(format!(
            "cannot unparse {:?} to SQL",
            rel.op.kind()
        ))),
    }
}

fn collation_sql(collation: &Collation) -> String {
    collation
        .iter()
        .map(|fc| {
            let mut s = col(fc.field);
            if fc.descending {
                s.push_str(" DESC");
            }
            s
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn agg_sql(a: &AggCall) -> String {
    let arg = if a.args.is_empty() {
        "*".to_string()
    } else {
        let args: Vec<String> = a.args.iter().map(|i| col(*i)).collect();
        args.join(", ")
    };
    if a.distinct {
        format!("{}(DISTINCT {})", a.func.name(), arg)
    } else {
        format!("{}({})", a.func.name(), arg)
    }
}

/// Renders a literal as SQL text.
pub fn datum_sql(v: &Datum) -> String {
    match v {
        Datum::Null => "NULL".into(),
        Datum::Bool(b) => if *b { "TRUE" } else { "FALSE" }.into(),
        Datum::Int(i) => i.to_string(),
        Datum::Double(x) => {
            if x.fract() == 0.0 {
                format!("{:.1}", x)
            } else {
                x.to_string()
            }
        }
        Datum::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Datum::Date(dd) => format!("DATE '{}'", format_date(*dd)),
        Datum::Timestamp(ms) => format!("TIMESTAMP '{}'", format_timestamp(*ms)),
        Datum::Interval(ms) => {
            if ms % 1000 == 0 {
                format!("INTERVAL '{}' SECOND", ms / 1000)
            } else {
                format!("INTERVAL '{}' SECOND", *ms as f64 / 1000.0)
            }
        }
        other => format!("'{other}'"),
    }
}

/// Renders a row expression as SQL; `name_of` maps input indexes to SQL
/// column references.
pub fn rex_sql(
    rex: &RexNode,
    d: &dyn Dialect,
    name_of: &dyn Fn(usize) -> String,
) -> Result<String> {
    Ok(match rex {
        RexNode::InputRef { index, .. } => name_of(*index),
        RexNode::Literal { value, .. } => datum_sql(value),
        // JDBC positional placeholder; backends receiving unparsed SQL
        // bind values through their own prepared-statement machinery.
        RexNode::DynamicParam { .. } => "?".to_string(),
        RexNode::Call { op, args, ty } => {
            let sub = |i: usize| rex_sql(&args[i], d, name_of);
            match op {
                Op::Plus => format!("({} + {})", sub(0)?, sub(1)?),
                Op::Minus => format!("({} - {})", sub(0)?, sub(1)?),
                Op::Times => format!("({} * {})", sub(0)?, sub(1)?),
                Op::Divide => format!("({} / {})", sub(0)?, sub(1)?),
                Op::Mod => format!("MOD({}, {})", sub(0)?, sub(1)?),
                Op::Neg => format!("(- {})", sub(0)?),
                Op::Eq => format!("({} = {})", sub(0)?, sub(1)?),
                Op::Ne => format!("({} <> {})", sub(0)?, sub(1)?),
                Op::Lt => format!("({} < {})", sub(0)?, sub(1)?),
                Op::Le => format!("({} <= {})", sub(0)?, sub(1)?),
                Op::Gt => format!("({} > {})", sub(0)?, sub(1)?),
                Op::Ge => format!("({} >= {})", sub(0)?, sub(1)?),
                Op::And | Op::Or => {
                    let kw = if matches!(op, Op::And) {
                        " AND "
                    } else {
                        " OR "
                    };
                    let parts: Vec<String> = args
                        .iter()
                        .map(|a| rex_sql(a, d, name_of))
                        .collect::<Result<_>>()?;
                    format!("({})", parts.join(kw))
                }
                Op::Not => format!("(NOT {})", sub(0)?),
                Op::IsNull => format!("({} IS NULL)", sub(0)?),
                Op::IsNotNull => format!("({} IS NOT NULL)", sub(0)?),
                Op::Like => format!("({} LIKE {})", sub(0)?, sub(1)?),
                Op::Cast => format!("CAST({} AS {})", sub(0)?, d.type_name(&ty.kind)),
                Op::Item => format!("{}[{}]", sub(0)?, sub(1)?),
                Op::Concat => {
                    let parts: Vec<String> = args
                        .iter()
                        .map(|a| rex_sql(a, d, name_of))
                        .collect::<Result<_>>()?;
                    d.concat(&parts)
                }
                Op::Case => {
                    let mut s = String::from("CASE");
                    let mut i = 0;
                    while i + 1 < args.len() {
                        s.push_str(&format!(" WHEN {} THEN {}", sub(i)?, sub(i + 1)?));
                        i += 2;
                    }
                    if i < args.len() {
                        s.push_str(&format!(" ELSE {}", sub(i)?));
                    }
                    s.push_str(" END");
                    s
                }
                Op::Func(b) => {
                    let parts: Vec<String> = args
                        .iter()
                        .map(|a| rex_sql(a, d, name_of))
                        .collect::<Result<_>>()?;
                    format!("{}({})", b.name(), parts.join(", "))
                }
                Op::Udf(u) => {
                    let parts: Vec<String> = args
                        .iter()
                        .map(|a| rex_sql(a, d, name_of))
                        .collect::<Result<_>>()?;
                    format!("{}({})", u.name, parts.join(", "))
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcalcite_core::catalog::{MemTable, TableRef};
    use rcalcite_core::rel;
    use rcalcite_core::types::{RelType, RowTypeBuilder};

    fn int_ty() -> RelType {
        RelType::not_null(TypeKind::Integer)
    }

    fn products() -> Rel {
        let t = MemTable::new(
            RowTypeBuilder::new()
                .add_not_null("productid", TypeKind::Integer)
                .add_not_null("name", TypeKind::Varchar)
                .build(),
            vec![],
        );
        rel::scan(TableRef::new("db", "products", t))
    }

    #[test]
    fn scan_filter_to_postgres() {
        let plan = rel::filter(
            products(),
            RexNode::input(0, int_ty()).gt(RexNode::lit_int(5)),
        );
        let sql = to_sql(&plan, &PostgresDialect).unwrap();
        assert!(sql.contains("\"db\".\"products\""), "{sql}");
        assert!(sql.contains("WHERE (c0 > 5)"), "{sql}");
        assert!(sql.contains("AS \"productid\""), "{sql}");
    }

    #[test]
    fn mysql_dialect_differences() {
        let plan = rel::sort_limit(products(), vec![], Some(3), Some(10));
        let pg = to_sql(&plan, &PostgresDialect).unwrap();
        let my = to_sql(&plan, &MySqlDialect).unwrap();
        assert!(pg.contains("LIMIT 10 OFFSET 3"), "{pg}");
        assert!(my.contains("LIMIT 3, 10"), "{my}");
        assert!(my.contains("`db`.`products`"), "{my}");
    }

    #[test]
    fn join_unparse() {
        let plan = rel::join(
            products(),
            products(),
            JoinKind::Left,
            RexNode::input(0, int_ty()).eq(RexNode::input(2, int_ty())),
        );
        let sql = to_sql(&plan, &PostgresDialect).unwrap();
        assert!(sql.contains("LEFT JOIN"), "{sql}");
        assert!(sql.contains("ON (t0.c0 = t1.c0)"), "{sql}");
    }

    #[test]
    fn semi_join_becomes_exists() {
        let plan = rel::join(
            products(),
            products(),
            JoinKind::Semi,
            RexNode::input(0, int_ty()).eq(RexNode::input(2, int_ty())),
        );
        let sql = to_sql(&plan, &PostgresDialect).unwrap();
        assert!(sql.contains("WHERE EXISTS (SELECT 1"), "{sql}");
    }

    #[test]
    fn aggregate_unparse() {
        let rt = products().row_type().clone();
        let plan = rel::aggregate(
            products(),
            vec![1],
            vec![
                rel::AggCall::count_star("c"),
                rel::AggCall::new(rel::AggFunc::Sum, vec![0], false, "s", &rt),
            ],
        );
        let sql = to_sql(&plan, &PostgresDialect).unwrap();
        assert!(sql.contains("COUNT(*)"), "{sql}");
        assert!(sql.contains("SUM(c0)"), "{sql}");
        assert!(sql.contains("GROUP BY c1"), "{sql}");
    }

    #[test]
    fn concat_dialect_difference() {
        let e = RexNode::call(
            Op::Concat,
            vec![RexNode::lit_str("a"), RexNode::lit_str("b")],
        );
        let pg = rex_sql(&e, &PostgresDialect, &|i| format!("c{i}")).unwrap();
        let my = rex_sql(&e, &MySqlDialect, &|i| format!("c{i}")).unwrap();
        assert_eq!(pg, "('a' || 'b')");
        assert_eq!(my, "CONCAT('a', 'b')");
    }

    #[test]
    fn literals_escape_and_format() {
        assert_eq!(datum_sql(&Datum::str("it's")), "'it''s'");
        assert_eq!(datum_sql(&Datum::Date(0)), "DATE '1970-01-01'");
        assert_eq!(
            datum_sql(&Datum::Interval(3_600_000)),
            "INTERVAL '3600' SECOND"
        );
    }

    #[test]
    fn values_unparse() {
        let plan = rel::values(
            RowTypeBuilder::new().add("x", TypeKind::Integer).build(),
            vec![vec![Datum::Int(1)], vec![Datum::Int(2)]],
        );
        let sql = to_sql(&plan, &PostgresDialect).unwrap();
        assert!(
            sql.contains("SELECT 1 AS c0 UNION ALL SELECT 2 AS c0"),
            "{sql}"
        );
        let empty = rel::values(
            RowTypeBuilder::new().add("x", TypeKind::Integer).build(),
            vec![],
        );
        let sql = to_sql(&empty, &PostgresDialect).unwrap();
        assert!(sql.contains("WHERE 1 = 0"), "{sql}");
    }

    #[test]
    fn delta_is_not_unparsable() {
        let plan = rel::delta(products());
        assert!(to_sql(&plan, &PostgresDialect).is_err());
    }
}
