//! SQL abstract syntax tree, covering ANSI SELECT plus the paper's
//! extensions: `SELECT STREAM` (§7.2), windowed aggregates with
//! `ROWS`/`RANGE` frames, `[]` item access on semi-structured columns
//! (§7.1) and interval literals.

/// A parsed statement. Besides queries, rcalcite implements the DDL/DML
/// surface the paper lists as future work for standalone-engine use (§9):
/// CREATE TABLE / VIEW / MATERIALIZED VIEW, INSERT and DROP.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Query(Query),
    /// `EXPLAIN <query>` — prints the optimized plan.
    Explain(Query),
    CreateTable {
        name: Vec<String>,
        columns: Vec<ColumnDef>,
    },
    CreateView {
        name: Vec<String>,
        query: Query,
    },
    CreateMaterializedView {
        name: Vec<String>,
        query: Query,
    },
    /// `DROP MATERIALIZED VIEW [IF EXISTS] name` — unregisters the view,
    /// detaches its maintenance plan and drops the backing table.
    DropMaterializedView {
        name: Vec<String>,
        if_exists: bool,
    },
    /// `REFRESH MATERIALIZED VIEW name` — full recompute of the view's
    /// contents from its definition; clears any staleness flag.
    RefreshMaterializedView {
        name: Vec<String>,
    },
    Insert {
        table: Vec<String>,
        source: Query,
    },
    DropTable {
        name: Vec<String>,
        if_exists: bool,
    },
    /// `CREATE INDEX name ON table (col, ...) [USING HASH]` — a secondary
    /// index on a base table; ordered (the default) supports point, prefix
    /// and range seeks, hash supports full-key point seeks only.
    CreateIndex {
        name: String,
        table: Vec<String>,
        columns: Vec<String>,
        hash: bool,
    },
    /// `DROP INDEX [IF EXISTS] name [ON table]` — without `ON` the whole
    /// catalog is searched for the index name.
    DropIndex {
        name: String,
        table: Option<Vec<String>>,
        if_exists: bool,
    },
    /// `ANALYZE [TABLE] [name]` — collects planner statistics (row count,
    /// per-column NDV/min/max/null fraction, equi-depth histograms) for
    /// one table, or for every table in the catalog when no name is given.
    Analyze {
        name: Option<Vec<String>>,
    },
    /// `UPDATE t SET c = expr [, ...] [WHERE ...]`.
    Update {
        table: Vec<String>,
        /// (column name, new-value expression), in statement order.
        assignments: Vec<(String, Expr)>,
        selection: Option<Expr>,
    },
    /// `DELETE FROM t [WHERE ...]`.
    Delete {
        table: Vec<String>,
        selection: Option<Expr>,
    },
    /// `EXPLAIN <update-or-delete>` — prints the located-rows subplan
    /// (scan or index seek) the write would execute.
    ExplainDml(Box<Stmt>),
    /// `BEGIN [TRANSACTION | WORK]` — opens an explicit transaction on
    /// the connection; statements until COMMIT/ROLLBACK share one
    /// snapshot.
    Begin,
    /// `COMMIT [WORK]`.
    Commit,
    /// `ROLLBACK [WORK]`.
    Rollback,
}

/// A column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: AstType,
    pub not_null: bool,
}

/// A query: set-expression body plus ordering and limits.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub body: SetExpr,
    pub order_by: Vec<OrderItem>,
    pub offset: Option<u64>,
    pub limit: Option<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOpKind {
    Union,
    Intersect,
    Except,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    Select(Box<Select>),
    SetOp {
        op: SetOpKind,
        all: bool,
        left: Box<SetExpr>,
        right: Box<SetExpr>,
    },
    Values(Vec<Vec<Expr>>),
}

#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `SELECT STREAM ...` (§7.2): "the user is interested in incoming
    /// records, not existing ones".
    pub stream: bool,
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Option<TableExpr>,
    pub selection: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    Expr {
        expr: Expr,
        alias: Option<String>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstJoinKind {
    Inner,
    Left,
    Right,
    Full,
    Cross,
}

#[derive(Debug, Clone, PartialEq)]
pub enum JoinCond {
    On(Expr),
    Using(Vec<String>),
    None,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TableExpr {
    Table {
        name: Vec<String>,
        alias: Option<String>,
    },
    Subquery {
        query: Box<Query>,
        alias: Option<String>,
    },
    Join {
        left: Box<TableExpr>,
        right: Box<TableExpr>,
        kind: AstJoinKind,
        cond: JoinCond,
    },
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Plus,
    Minus,
    Times,
    Divide,
    Mod,
    Concat,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    Int(i64),
    Double(f64),
    Str(String),
    Bool(bool),
    Null,
    /// `DATE 'YYYY-MM-DD'`
    Date(String),
    /// `TIMESTAMP 'YYYY-MM-DD HH:MM:SS'`
    Timestamp(String),
    /// `INTERVAL '<n>' <unit>`
    Interval {
        value: String,
        unit: TimeUnit,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeUnit {
    Second,
    Minute,
    Hour,
    Day,
}

impl TimeUnit {
    pub fn millis(&self) -> i64 {
        match self {
            TimeUnit::Second => 1_000,
            TimeUnit::Minute => 60_000,
            TimeUnit::Hour => 3_600_000,
            TimeUnit::Day => 86_400_000,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            TimeUnit::Second => "SECOND",
            TimeUnit::Minute => "MINUTE",
            TimeUnit::Hour => "HOUR",
            TimeUnit::Day => "DAY",
        }
    }
}

/// Window frame specification in OVER clauses.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameSpec {
    pub rows: bool, // true = ROWS, false = RANGE
    pub lower: AstFrameBound,
    pub upper: Option<AstFrameBound>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum AstFrameBound {
    UnboundedPreceding,
    Preceding(Box<Expr>),
    CurrentRow,
    Following(Box<Expr>),
    UnboundedFollowing,
}

#[derive(Debug, Clone, PartialEq)]
pub struct WindowSpec {
    pub partition: Vec<Expr>,
    pub order: Vec<OrderItem>,
    pub frame: Option<FrameSpec>,
}

/// A named SQL type in CAST expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum AstType {
    Boolean,
    Integer,
    Double,
    Varchar,
    Date,
    Timestamp,
    Geometry,
    Any,
}

#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Possibly-qualified column reference (`col` or `alias.col`).
    Ident(Vec<String>),
    Literal(Lit),
    /// `?` dynamic parameter of a prepared statement, numbered by lexical
    /// position (0-based).
    Param(usize),
    Unary {
        minus: bool,
        expr: Box<Expr>,
    },
    Not(Box<Expr>),
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    Case {
        operand: Option<Box<Expr>>,
        whens: Vec<(Expr, Expr)>,
        else_: Option<Box<Expr>>,
    },
    Cast {
        expr: Box<Expr>,
        ty: AstType,
    },
    /// Function call: scalar, aggregate (with optional DISTINCT / `*`
    /// argument) or windowed (with OVER).
    Func {
        name: String,
        args: Vec<Expr>,
        distinct: bool,
        star: bool,
        over: Option<WindowSpec>,
    },
    /// `base[index]` item access (§7.1).
    Item {
        base: Box<Expr>,
        index: Box<Expr>,
    },
}

impl Expr {
    pub fn ident(name: &str) -> Expr {
        Expr::Ident(vec![name.to_string()])
    }

    pub fn int(v: i64) -> Expr {
        Expr::Literal(Lit::Int(v))
    }
}
