//! SQL-to-relational-algebra conversion (the "relational expression" arrow
//! of Figure 1). Validation — name resolution, type checking, aggregate
//! placement, streaming monotonicity — happens during conversion; the
//! output is a logical plan ready for the optimizer.

use crate::ast::*;
use crate::validator::{check_stream_group_by, Scope};
use rcalcite_core::catalog::Catalog;
use rcalcite_core::datum::{parse_date, parse_timestamp, Datum};
use rcalcite_core::error::{CalciteError, Result};
use rcalcite_core::rel::{
    self, AggCall, AggFunc, FrameBound, JoinKind, Rel, WinFunc, WindowFn, WindowFrame,
};
use rcalcite_core::rex::{BuiltinFn, FunctionRegistry, Op, RexNode};
use rcalcite_core::traits::{Collation, FieldCollation};
use rcalcite_core::types::{Field, RelType, RowType, TypeKind};

pub struct Converter<'a> {
    catalog: &'a Catalog,
    functions: &'a FunctionRegistry,
    /// Named views (lowercase name -> defining plan), expanded inline
    /// during conversion as Calcite does.
    views: &'a std::collections::HashMap<String, Rel>,
}

/// Converts a parsed query into a logical plan.
pub fn query_to_rel(catalog: &Catalog, functions: &FunctionRegistry, query: &Query) -> Result<Rel> {
    static NO_VIEWS: std::sync::OnceLock<std::collections::HashMap<String, Rel>> =
        std::sync::OnceLock::new();
    let views = NO_VIEWS.get_or_init(std::collections::HashMap::new);
    Converter {
        catalog,
        functions,
        views,
    }
    .convert_query(query)
}

/// Converts a query with a set of named views in scope.
pub fn query_to_rel_with_views(
    catalog: &Catalog,
    functions: &FunctionRegistry,
    views: &std::collections::HashMap<String, Rel>,
    query: &Query,
) -> Result<Rel> {
    Converter {
        catalog,
        functions,
        views,
    }
    .convert_query(query)
}

/// Aggregate call collected from the select list / HAVING.
struct AggInfo {
    func: AggFunc,
    distinct: bool,
    /// Argument expression over the pre-aggregation scope; None = COUNT(*).
    arg: Option<RexNode>,
    /// Canonical key for deduplication.
    key: String,
}

impl<'a> Converter<'a> {
    fn convert_query(&self, query: &Query) -> Result<Rel> {
        // Plain SELECT bodies handle ORDER BY internally so sort keys may
        // reference non-projected columns (hidden sort columns).
        if let SetExpr::Select(s) = &query.body {
            return self.convert_select(
                s,
                &query.order_by,
                query.offset.map(|o| o as usize),
                query.limit.map(|l| l as usize),
            );
        }
        let (mut rel_, output_asts) = self.convert_set_expr(&query.body)?;
        if !query.order_by.is_empty() || query.limit.is_some() || query.offset.is_some() {
            let mut collation: Collation = vec![];
            let out_scope = Scope::from_rel(None, &rel_);
            for item in &query.order_by {
                let idx = self.resolve_order_key(&item.expr, &out_scope, &output_asts)?;
                collation.push(if item.desc {
                    FieldCollation::desc(idx)
                } else {
                    FieldCollation::asc(idx)
                });
            }
            rel_ = rel::sort_limit(
                rel_,
                collation,
                query.offset.map(|o| o as usize),
                query.limit.map(|l| l as usize),
            );
        }
        Ok(rel_)
    }

    /// Resolves an ORDER BY key to an output column: by name, by position
    /// (`ORDER BY 2`), or by structural equality with a select item
    /// (`ORDER BY COUNT(*)`).
    fn resolve_order_key(
        &self,
        expr: &Expr,
        out_scope: &Scope,
        output_asts: &[Option<Expr>],
    ) -> Result<usize> {
        if let Expr::Literal(Lit::Int(n)) = expr {
            let i = *n as usize;
            if i >= 1 && i <= out_scope.arity() {
                return Ok(i - 1);
            }
            return Err(CalciteError::validate(format!(
                "ORDER BY position {n} out of range"
            )));
        }
        if let Expr::Ident(parts) = expr {
            if let Ok((i, _)) = out_scope.resolve(parts) {
                return Ok(i);
            }
        }
        for (i, ast) in output_asts.iter().enumerate() {
            if ast.as_ref() == Some(expr) {
                return Ok(i);
            }
        }
        Err(CalciteError::validate(format!(
            "ORDER BY expression {expr:?} is not in the select list"
        )))
    }

    /// Returns the plan plus, when the body is a plain SELECT, the AST of
    /// each output column (for ORDER BY matching).
    fn convert_set_expr(&self, body: &SetExpr) -> Result<(Rel, Vec<Option<Expr>>)> {
        match body {
            SetExpr::Select(s) => Ok((self.convert_select(s, &[], None, None)?, vec![])),
            SetExpr::SetOp {
                op,
                all,
                left,
                right,
            } => {
                let (l, _) = self.convert_set_expr(left)?;
                let (r, _) = self.convert_set_expr(right)?;
                if l.row_type().arity() != r.row_type().arity() {
                    return Err(CalciteError::validate(format!(
                        "set operation inputs differ in arity: {} vs {}",
                        l.row_type().arity(),
                        r.row_type().arity()
                    )));
                }
                let node = match op {
                    SetOpKind::Union => rel::union(vec![l, r], *all),
                    SetOpKind::Intersect => rel::intersect(vec![l, r], *all),
                    SetOpKind::Except => rel::minus(vec![l, r], *all),
                };
                Ok((node, vec![]))
            }
            SetExpr::Values(rows) => {
                let empty = Scope::empty();
                let mut tuples = vec![];
                let mut row_type: Option<RowType> = None;
                for row in rows {
                    let mut datums = vec![];
                    let mut fields = vec![];
                    for (i, e) in row.iter().enumerate() {
                        let rex = self.to_rex(e, &empty)?;
                        if !rex.is_constant() {
                            return Err(CalciteError::validate(
                                "VALUES rows must be constant expressions",
                            ));
                        }
                        let v = rex
                            .eval(&[])
                            .map_err(|e| CalciteError::validate(e.to_string()))?;
                        fields.push(Field::new(format!("EXPR${i}"), rex.ty().clone()));
                        datums.push(v);
                    }
                    match &row_type {
                        None => row_type = Some(RowType::new(fields)),
                        Some(rt) => {
                            if rt.arity() != datums.len() {
                                return Err(CalciteError::validate("VALUES rows differ in arity"));
                            }
                        }
                    }
                    tuples.push(datums);
                }
                let rt = row_type
                    .ok_or_else(|| CalciteError::validate("VALUES requires at least one row"))?;
                Ok((rel::values(rt, tuples), vec![]))
            }
        }
    }

    fn convert_select(
        &self,
        s: &Select,
        order_by: &[OrderItem],
        offset: Option<usize>,
        fetch: Option<usize>,
    ) -> Result<Rel> {
        // FROM.
        let (mut rel_, scope) = match &s.from {
            Some(te) => self.convert_table_expr(te)?,
            None => (rel::one_row(), Scope::empty()),
        };

        // STREAM validation: the query must read at least one stream.
        if s.stream {
            let has_stream = s
                .from
                .as_ref()
                .map(|te| table_expr_has_stream(te, self.catalog))
                .unwrap_or(false);
            if !has_stream {
                return Err(CalciteError::validate(
                    "SELECT STREAM requires a stream in the FROM clause",
                ));
            }
        }

        // WHERE.
        if let Some(w) = &s.selection {
            if contains_agg(w) {
                return Err(CalciteError::validate(
                    "aggregate functions are not allowed in WHERE",
                ));
            }
            let cond = self.to_rex(w, &scope)?;
            require_boolean(&cond, "WHERE")?;
            rel_ = rel::filter(rel_, cond);
        }

        let has_agg = !s.group_by.is_empty()
            || s.items.iter().any(|i| match i {
                SelectItem::Expr { expr, .. } => contains_agg(expr),
                _ => false,
            })
            || s.having.as_ref().map(contains_agg).unwrap_or(false);

        let out = if has_agg {
            if s.stream {
                check_stream_group_by(&s.group_by, &scope)?;
            }
            self.convert_aggregate_select(s, rel_, &scope, order_by)?
        } else {
            if s.having.is_some() {
                return Err(CalciteError::validate("HAVING requires GROUP BY"));
            }
            self.convert_plain_select(s, rel_, &scope, order_by)?
        };

        let hidden = out.rel.row_type().arity() - out.n_visible;
        let mut rel_ = out.rel;
        // DISTINCT = group by all output columns (incompatible with
        // hidden sort keys, as in standard SQL).
        if s.distinct {
            if hidden > 0 {
                return Err(CalciteError::validate(
                    "with SELECT DISTINCT, ORDER BY expressions must appear in the select list",
                ));
            }
            let n = rel_.row_type().arity();
            rel_ = rel::aggregate(rel_, (0..n).collect(), vec![]);
        }
        // STREAM = delta.
        if s.stream {
            rel_ = rel::delta(rel_);
        }
        // ORDER BY / LIMIT, then strip hidden sort columns.
        if !out.collation.is_empty() || offset.is_some() || fetch.is_some() {
            rel_ = rel::sort_limit(rel_, out.collation, offset, fetch);
        }
        if hidden > 0 {
            let rt = rel_.row_type().clone();
            let exprs: Vec<RexNode> = (0..out.n_visible)
                .map(|i| RexNode::input(i, rt.field(i).ty.clone()))
                .collect();
            let names = rt.fields[..out.n_visible]
                .iter()
                .map(|f| f.name.clone())
                .collect();
            rel_ = rel::project(rel_, exprs, names);
        }
        Ok(rel_)
    }

    /// Resolves ORDER BY items against the projection being built,
    /// appending hidden sort columns when a key is not in the select list.
    /// `fallback` converts an order expression over the projection input.
    #[allow(clippy::too_many_arguments)]
    fn resolve_order_items(
        &self,
        order_by: &[OrderItem],
        exprs: &mut Vec<RexNode>,
        names: &mut Vec<String>,
        asts: &[Option<Expr>],
        n_visible: usize,
        fallback: &dyn Fn(&Expr) -> Result<RexNode>,
    ) -> Result<Collation> {
        let mut collation: Collation = vec![];
        for item in order_by {
            let mut idx: Option<usize> = None;
            // Structural match with a select item.
            for (i, ast) in asts.iter().enumerate() {
                if ast.as_ref() == Some(&item.expr) {
                    idx = Some(i);
                    break;
                }
            }
            // Output-name match.
            if idx.is_none() {
                if let Expr::Ident(parts) = &item.expr {
                    if parts.len() == 1 {
                        idx = names[..n_visible]
                            .iter()
                            .position(|n| n.eq_ignore_ascii_case(&parts[0]));
                    }
                }
            }
            // Positional (`ORDER BY 2`).
            if idx.is_none() {
                if let Expr::Literal(Lit::Int(n)) = &item.expr {
                    let i = *n as usize;
                    if i >= 1 && i <= n_visible {
                        idx = Some(i - 1);
                    } else {
                        return Err(CalciteError::validate(format!(
                            "ORDER BY position {n} out of range"
                        )));
                    }
                }
            }
            // Expression over the underlying input: reuse an identical
            // projected expression or append a hidden column.
            let idx = match idx {
                Some(i) => i,
                None => {
                    let rex = fallback(&item.expr)?;
                    match exprs.iter().position(|e| e.digest() == rex.digest()) {
                        Some(i) => i,
                        None => {
                            exprs.push(rex);
                            names.push(format!("$sort{}", exprs.len()));
                            exprs.len() - 1
                        }
                    }
                }
            };
            collation.push(if item.desc {
                FieldCollation::desc(idx)
            } else {
                FieldCollation::asc(idx)
            });
        }
        Ok(collation)
    }

    /// SELECT without aggregation (may contain window functions).
    fn convert_plain_select(
        &self,
        s: &Select,
        mut rel_: Rel,
        scope: &Scope,
        order_by: &[OrderItem],
    ) -> Result<SelectOutput> {
        // Collect windowed calls from the select list.
        let mut windows: Vec<(Expr, usize)> = vec![]; // (ast, appended index)
        let mut wfs: Vec<WindowFn> = vec![];
        for item in &s.items {
            if let SelectItem::Expr { expr, .. } = item {
                self.collect_windows(expr, scope, &mut windows, &mut wfs)?;
            }
        }
        let base_arity = scope.arity();
        if !wfs.is_empty() {
            rel_ = rel::window(rel_, wfs);
        }

        // Projection.
        let mut exprs = vec![];
        let mut names = vec![];
        let mut asts: Vec<Option<Expr>> = vec![];
        for (i, item) in s.items.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    for (ci, c) in scope.cols.iter().enumerate() {
                        exprs.push(RexNode::input(ci, c.ty.clone()));
                        names.push(c.name.clone());
                        asts.push(None);
                    }
                }
                SelectItem::QualifiedWildcard(alias) => {
                    let cols = scope.columns_of(alias);
                    if cols.is_empty() {
                        return Err(CalciteError::validate(format!(
                            "unknown table alias '{alias}' in {alias}.*"
                        )));
                    }
                    for ci in cols {
                        exprs.push(RexNode::input(ci, scope.cols[ci].ty.clone()));
                        names.push(scope.cols[ci].name.clone());
                        asts.push(None);
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let rex = self.to_rex_with_windows(expr, scope, &windows, base_arity, &rel_)?;
                    names.push(derive_name(alias.as_deref(), expr, i));
                    exprs.push(rex);
                    asts.push(Some(expr.clone()));
                }
            }
        }
        let n_visible = exprs.len();
        let collation =
            self.resolve_order_items(order_by, &mut exprs, &mut names, &asts, n_visible, &|e| {
                self.to_rex_with_windows(e, scope, &windows, base_arity, &rel_)
            })?;
        // `SELECT *` with nothing else: skip the identity projection.
        if s.items.len() == 1
            && matches!(s.items[0], SelectItem::Wildcard)
            && base_arity == rel_.row_type().arity()
            && exprs.len() == n_visible
        {
            return Ok(SelectOutput {
                n_visible: rel_.row_type().arity(),
                rel: rel_,
                collation,
            });
        }
        Ok(SelectOutput {
            rel: rel::project(rel_, exprs, names),
            n_visible,
            collation,
        })
    }

    /// SELECT with GROUP BY / aggregates.
    fn convert_aggregate_select(
        &self,
        s: &Select,
        input: Rel,
        scope: &Scope,
        order_by: &[OrderItem],
    ) -> Result<SelectOutput> {
        // 1. Group expressions (TUMBLE desugars to window-start
        //    arithmetic).
        let mut group_rex: Vec<RexNode> = vec![];
        let mut tumble_info: Vec<Option<i64>> = vec![]; // interval per group key
        for g in &s.group_by {
            if let Expr::Func { name, args, .. } = g {
                if name.eq_ignore_ascii_case("TUMBLE") {
                    if args.len() != 2 {
                        return Err(CalciteError::validate("TUMBLE takes (timestamp, interval)"));
                    }
                    let ts = self.to_rex(&args[0], scope)?;
                    let iv = self.to_rex(&args[1], scope)?;
                    let ms = interval_millis(&iv)?;
                    group_rex.push(tumble_start(ts, ms));
                    tumble_info.push(Some(ms));
                    continue;
                }
            }
            let rex = self.to_rex(g, scope)?;
            group_rex.push(rex);
            tumble_info.push(None);
        }

        // 2. Aggregate calls from select list and HAVING.
        let mut aggs: Vec<AggInfo> = vec![];
        for item in &s.items {
            if let SelectItem::Expr { expr, .. } = item {
                self.collect_aggs(expr, scope, &mut aggs)?;
            } else {
                return Err(CalciteError::validate(
                    "SELECT * is not valid with GROUP BY",
                ));
            }
        }
        if let Some(h) = &s.having {
            self.collect_aggs(h, scope, &mut aggs)?;
        }
        for o in order_by {
            self.collect_aggs(&o.expr, scope, &mut aggs)?;
        }

        // 3. Pre-projection: group expressions then aggregate arguments.
        let mut pre_exprs: Vec<RexNode> = group_rex.clone();
        let mut pre_names: Vec<String> = (0..group_rex.len()).map(|i| format!("g${i}")).collect();
        let mut agg_calls: Vec<AggCall> = vec![];
        for (i, a) in aggs.iter().enumerate() {
            let args = match &a.arg {
                None => vec![],
                Some(rex) => {
                    // Reuse an identical pre-projection column when
                    // possible.
                    let pos = pre_exprs
                        .iter()
                        .position(|e| e.digest() == rex.digest())
                        .unwrap_or_else(|| {
                            pre_exprs.push(rex.clone());
                            pre_names.push(format!("a${i}"));
                            pre_exprs.len() - 1
                        });
                    vec![pos]
                }
            };
            let arg_ty = args.first().map(|p| pre_exprs[*p].ty().clone());
            agg_calls.push(AggCall {
                ty: a.func.ret_type(arg_ty.as_ref()),
                func: a.func,
                args,
                distinct: a.distinct,
                name: format!("agg${i}"),
            });
        }
        let pre = rel::project(input, pre_exprs, pre_names);
        let agg_node = rel::aggregate(pre, (0..group_rex.len()).collect(), agg_calls.clone());

        // 4. Post-aggregation rewriting context.
        let post = PostAggCtx {
            group_rex: &group_rex,
            tumble_info: &tumble_info,
            aggs: &aggs,
            agg_out_offset: group_rex.len(),
            agg_node: &agg_node,
        };

        let mut rel_ = agg_node.clone();
        if let Some(h) = &s.having {
            let cond = self.rewrite_post_agg(h, scope, &post)?;
            require_boolean(&cond, "HAVING")?;
            rel_ = rel::filter(rel_, cond);
        }

        // 5. Output projection.
        let mut exprs = vec![];
        let mut names = vec![];
        let mut asts = vec![];
        for (i, item) in s.items.iter().enumerate() {
            if let SelectItem::Expr { expr, alias } = item {
                let rex = self.rewrite_post_agg(expr, scope, &post)?;
                names.push(derive_name(alias.as_deref(), expr, i));
                exprs.push(rex);
                asts.push(Some(expr.clone()));
            }
        }
        let n_visible = exprs.len();
        let collation =
            self.resolve_order_items(order_by, &mut exprs, &mut names, &asts, n_visible, &|e| {
                self.rewrite_post_agg(e, scope, &post)
            })?;
        Ok(SelectOutput {
            rel: rel::project(rel_, exprs, names),
            n_visible,
            collation,
        })
    }

    /// Collects aggregate calls (deduplicated) from an expression.
    fn collect_aggs(&self, e: &Expr, scope: &Scope, out: &mut Vec<AggInfo>) -> Result<()> {
        match e {
            Expr::Func {
                name,
                args,
                distinct,
                star,
                over: None,
            } => {
                if let Some(func) = AggFunc::by_name(name) {
                    let arg = if *star || args.is_empty() {
                        if func != AggFunc::Count {
                            return Err(CalciteError::validate(format!(
                                "{name} requires an argument"
                            )));
                        }
                        None
                    } else {
                        if args.len() != 1 {
                            return Err(CalciteError::validate(format!(
                                "{name} takes exactly one argument"
                            )));
                        }
                        if contains_agg(&args[0]) {
                            return Err(CalciteError::validate("aggregate calls cannot be nested"));
                        }
                        Some(self.to_rex(&args[0], scope)?)
                    };
                    let key = format!(
                        "{}:{}:{}",
                        func.name(),
                        distinct,
                        arg.as_ref().map(|a| a.digest()).unwrap_or_default()
                    );
                    if !out.iter().any(|a| a.key == key) {
                        out.push(AggInfo {
                            func,
                            distinct: *distinct,
                            arg,
                            key,
                        });
                    }
                    return Ok(());
                }
                for a in args {
                    self.collect_aggs(a, scope, out)?;
                }
                Ok(())
            }
            _ => {
                for child in expr_children(e) {
                    self.collect_aggs(child, scope, out)?;
                }
                Ok(())
            }
        }
    }

    /// Rewrites a select/HAVING expression over the aggregate's output.
    fn rewrite_post_agg(&self, e: &Expr, scope: &Scope, post: &PostAggCtx) -> Result<RexNode> {
        // Whole expression equals a group expression?
        if let Ok(rex) = self.to_rex(e, scope) {
            for (i, g) in post.group_rex.iter().enumerate() {
                if g.digest() == rex.digest() {
                    return Ok(RexNode::input(
                        i,
                        post.agg_node.row_type().field(i).ty.clone(),
                    ));
                }
            }
        }
        match e {
            // TUMBLE_END(ts, interval) = matching TUMBLE group key + size;
            // TUMBLE_START = the key itself.
            Expr::Func { name, args, .. }
                if name.eq_ignore_ascii_case("TUMBLE_END")
                    || name.eq_ignore_ascii_case("TUMBLE_START") =>
            {
                if args.len() != 2 {
                    return Err(CalciteError::validate(format!(
                        "{name} takes (timestamp, interval)"
                    )));
                }
                let ts = self.to_rex(&args[0], scope)?;
                let iv = self.to_rex(&args[1], scope)?;
                let ms = interval_millis(&iv)?;
                let target = tumble_start(ts, ms).digest();
                for (i, g) in post.group_rex.iter().enumerate() {
                    if post.tumble_info[i] == Some(ms) && g.digest() == target {
                        let key = RexNode::input(i, post.agg_node.row_type().field(i).ty.clone());
                        return Ok(if name.eq_ignore_ascii_case("TUMBLE_END") {
                            RexNode::call_typed(
                                Op::Plus,
                                vec![
                                    key,
                                    RexNode::literal(
                                        Datum::Interval(ms),
                                        RelType::not_null(TypeKind::Interval),
                                    ),
                                ],
                                RelType::not_null(TypeKind::Timestamp),
                            )
                        } else {
                            key
                        });
                    }
                }
                Err(CalciteError::validate(format!(
                    "{name} does not match any TUMBLE in GROUP BY"
                )))
            }
            Expr::Func {
                name,
                args,
                distinct,
                star,
                over: None,
            } if AggFunc::by_name(name).is_some() => {
                let func = AggFunc::by_name(name).unwrap();
                let arg = if *star || args.is_empty() {
                    None
                } else {
                    Some(self.to_rex(&args[0], scope)?)
                };
                let key = format!(
                    "{}:{}:{}",
                    func.name(),
                    distinct,
                    arg.as_ref().map(|a| a.digest()).unwrap_or_default()
                );
                let idx = post
                    .aggs
                    .iter()
                    .position(|a| a.key == key)
                    .ok_or_else(|| CalciteError::internal("aggregate not collected"))?;
                let out = post.agg_out_offset + idx;
                Ok(RexNode::input(
                    out,
                    post.agg_node.row_type().field(out).ty.clone(),
                ))
            }
            Expr::Literal(_) | Expr::Param(_) => self.to_rex(e, scope),
            Expr::Ident(parts) => Err(CalciteError::validate(format!(
                "column '{}' must appear in GROUP BY or an aggregate",
                parts.join(".")
            ))),
            // Structural recursion for compound expressions.
            Expr::Unary { minus, expr } => {
                let inner = self.rewrite_post_agg(expr, scope, post)?;
                Ok(if *minus {
                    RexNode::call(Op::Neg, vec![inner])
                } else {
                    inner
                })
            }
            Expr::Not(inner) => Ok(self.rewrite_post_agg(inner, scope, post)?.not()),
            Expr::Binary { op, left, right } => {
                let l = self.rewrite_post_agg(left, scope, post)?;
                let r = self.rewrite_post_agg(right, scope, post)?;
                self.binary_rex(*op, l, r)
            }
            Expr::IsNull { expr, negated } => {
                let inner = self.rewrite_post_agg(expr, scope, post)?;
                Ok(if *negated {
                    inner.is_not_null()
                } else {
                    inner.is_null()
                })
            }
            Expr::Cast { expr, ty } => {
                let inner = self.rewrite_post_agg(expr, scope, post)?;
                Ok(cast_to(inner, ty))
            }
            Expr::Case {
                operand,
                whens,
                else_,
            } => {
                let mut args = vec![];
                for (c, v) in whens {
                    let cond = match operand {
                        Some(op_expr) => {
                            let l = self.rewrite_post_agg(op_expr, scope, post)?;
                            let r = self.rewrite_post_agg(c, scope, post)?;
                            l.eq(r)
                        }
                        None => self.rewrite_post_agg(c, scope, post)?,
                    };
                    args.push(cond);
                    args.push(self.rewrite_post_agg(v, scope, post)?);
                }
                if let Some(el) = else_ {
                    args.push(self.rewrite_post_agg(el, scope, post)?);
                }
                Ok(RexNode::call(Op::Case, args))
            }
            Expr::Func {
                name,
                args,
                over: None,
                ..
            } => {
                // Scalar function over rewritten arguments.
                let mut rex_args = vec![];
                for a in args {
                    rex_args.push(self.rewrite_post_agg(a, scope, post)?);
                }
                self.scalar_func(name, rex_args)
            }
            other => Err(CalciteError::validate(format!(
                "expression {other:?} is not valid in an aggregate query"
            ))),
        }
    }

    // -------------------------------------------------------------
    // FROM clause
    // -------------------------------------------------------------

    fn convert_table_expr(&self, te: &TableExpr) -> Result<(Rel, Scope)> {
        match te {
            TableExpr::Table { name, alias } => {
                // Views shadow base tables; they are expanded inline.
                let view_key = name
                    .iter()
                    .map(|p| p.to_ascii_lowercase())
                    .collect::<Vec<_>>()
                    .join(".");
                let bare_key = name.last().unwrap().to_ascii_lowercase();
                if let Some(plan) = self
                    .views
                    .get(&view_key)
                    .or_else(|| self.views.get(&bare_key))
                {
                    let alias = alias.clone().unwrap_or_else(|| bare_key.clone());
                    let scope = Scope::from_rel(Some(&alias), plan);
                    return Ok((plan.clone(), scope));
                }
                let parts: Vec<&str> = name.iter().map(|s| s.as_str()).collect();
                let tref = self.catalog.resolve(&parts)?;
                let default_alias = tref.name.clone();
                let node = rel::scan(tref);
                let alias = alias.clone().unwrap_or(default_alias);
                let scope = Scope::from_rel(Some(&alias), &node);
                Ok((node, scope))
            }
            TableExpr::Subquery { query, alias } => {
                let node = self.convert_query(query)?;
                let scope = Scope::from_rel(alias.as_deref(), &node);
                Ok((node, scope))
            }
            TableExpr::Join {
                left,
                right,
                kind,
                cond,
            } => {
                let (l, ls) = self.convert_table_expr(left)?;
                let (r, rs) = self.convert_table_expr(right)?;
                let joined = ls.join(rs);
                let jk = match kind {
                    AstJoinKind::Inner | AstJoinKind::Cross => JoinKind::Inner,
                    AstJoinKind::Left => JoinKind::Left,
                    AstJoinKind::Right => JoinKind::Right,
                    AstJoinKind::Full => JoinKind::Full,
                };
                let condition = match cond {
                    JoinCond::None => RexNode::true_lit(),
                    JoinCond::On(e) => {
                        let c = self.to_rex(e, &joined)?;
                        require_boolean(&c, "JOIN ON")?;
                        c
                    }
                    JoinCond::Using(cols) => {
                        let left_arity = l.row_type().arity();
                        let mut conds = vec![];
                        for c in cols {
                            // Resolve on each side independently.
                            let (li, lty) = resolve_in_range(&joined, c, 0, left_arity)?;
                            let (ri, rty) =
                                resolve_in_range(&joined, c, left_arity, joined.arity())?;
                            conds.push(RexNode::input(li, lty).eq(RexNode::input(ri, rty)));
                        }
                        RexNode::and_all(conds)
                    }
                };
                Ok((rel::join(l, r, jk, condition), joined))
            }
        }
    }

    // -------------------------------------------------------------
    // Expression conversion
    // -------------------------------------------------------------

    pub fn to_rex(&self, e: &Expr, scope: &Scope) -> Result<RexNode> {
        match e {
            Expr::Ident(parts) => {
                let (i, ty) = scope.resolve(parts)?;
                Ok(RexNode::input(i, ty))
            }
            Expr::Literal(lit) => literal_rex(lit),
            // A parameter's type is unknown in isolation (ANY); binary_rex
            // narrows it from the other operand where possible.
            Expr::Param(i) => Ok(RexNode::param(*i, RelType::nullable(TypeKind::Any))),
            Expr::Unary { minus, expr } => {
                let inner = self.to_rex(expr, scope)?;
                if *minus {
                    if !inner.ty().kind.is_numeric()
                        && inner.ty().kind != TypeKind::Interval
                        && inner.ty().kind != TypeKind::Any
                    {
                        return Err(CalciteError::validate(format!(
                            "cannot negate {}",
                            inner.ty()
                        )));
                    }
                    Ok(RexNode::call(Op::Neg, vec![inner]))
                } else {
                    Ok(inner)
                }
            }
            Expr::Not(inner) => {
                let r = self.to_rex(inner, scope)?;
                require_boolean(&r, "NOT")?;
                Ok(r.not())
            }
            Expr::Binary { op, left, right } => {
                let l = self.to_rex(left, scope)?;
                let r = self.to_rex(right, scope)?;
                self.binary_rex(*op, l, r)
            }
            Expr::IsNull { expr, negated } => {
                let inner = self.to_rex(expr, scope)?;
                Ok(if *negated {
                    inner.is_not_null()
                } else {
                    inner.is_null()
                })
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let l = self.to_rex(expr, scope)?;
                let p = self.to_rex(pattern, scope)?;
                let like = RexNode::call(Op::Like, vec![l, p]);
                Ok(if *negated { like.not() } else { like })
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let e_ = self.to_rex(expr, scope)?;
                let lo = self.to_rex(low, scope)?;
                let hi = self.to_rex(high, scope)?;
                let between = RexNode::and_all(vec![e_.clone().ge(lo), e_.le(hi)]);
                Ok(if *negated { between.not() } else { between })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let e_ = self.to_rex(expr, scope)?;
                let mut arms = vec![];
                for item in list {
                    arms.push(e_.clone().eq(self.to_rex(item, scope)?));
                }
                let inlist = RexNode::or_all(arms);
                Ok(if *negated { inlist.not() } else { inlist })
            }
            Expr::Case {
                operand,
                whens,
                else_,
            } => {
                let mut args = vec![];
                for (c, v) in whens {
                    let cond = match operand {
                        Some(op_expr) => {
                            let l = self.to_rex(op_expr, scope)?;
                            let r = self.to_rex(c, scope)?;
                            l.eq(r)
                        }
                        None => {
                            let c = self.to_rex(c, scope)?;
                            require_boolean(&c, "CASE WHEN")?;
                            c
                        }
                    };
                    args.push(cond);
                    args.push(self.to_rex(v, scope)?);
                }
                if let Some(el) = else_ {
                    args.push(self.to_rex(el, scope)?);
                }
                Ok(RexNode::call(Op::Case, args))
            }
            Expr::Cast { expr, ty } => {
                let inner = self.to_rex(expr, scope)?;
                Ok(cast_to(inner, ty))
            }
            Expr::Item { base, index } => {
                let b = self.to_rex(base, scope)?;
                match &b.ty().kind {
                    TypeKind::Array(_)
                    | TypeKind::Map(_, _)
                    | TypeKind::Multiset(_)
                    | TypeKind::Any => {}
                    other => {
                        return Err(CalciteError::validate(format!(
                            "[] access requires ARRAY/MAP/ANY, found {other}"
                        )))
                    }
                }
                let i = self.to_rex(index, scope)?;
                Ok(RexNode::call(Op::Item, vec![b, i]))
            }
            Expr::Func {
                name,
                over: Some(_),
                ..
            } => Err(CalciteError::validate(format!(
                "windowed {name} is only allowed in the select list"
            ))),
            Expr::Func {
                name,
                args,
                distinct,
                star,
                over: None,
            } => {
                if AggFunc::by_name(name).is_some() {
                    return Err(CalciteError::validate(format!(
                        "aggregate function {name} is not allowed here"
                    )));
                }
                if name.eq_ignore_ascii_case("TUMBLE")
                    || name.eq_ignore_ascii_case("TUMBLE_START")
                    || name.eq_ignore_ascii_case("TUMBLE_END")
                {
                    return Err(CalciteError::validate(format!(
                        "{name} is only allowed with GROUP BY TUMBLE"
                    )));
                }
                if *distinct || *star {
                    return Err(CalciteError::validate(format!(
                        "DISTINCT/* arguments are only valid in aggregates, in {name}"
                    )));
                }
                let mut rex_args = vec![];
                for a in args {
                    rex_args.push(self.to_rex(a, scope)?);
                }
                self.scalar_func(name, rex_args)
            }
        }
    }

    fn scalar_func(&self, name: &str, args: Vec<RexNode>) -> Result<RexNode> {
        if let Some(b) = BuiltinFn::by_name(name) {
            return Ok(RexNode::call(Op::Func(b), args));
        }
        if let Some(udf) = self.functions.lookup(name) {
            let tys: Vec<RelType> = args.iter().map(|a| a.ty().clone()).collect();
            let ty = (udf.ret_type)(&tys);
            return Ok(RexNode::call_typed(Op::Udf(udf), args, ty));
        }
        Err(CalciteError::validate(format!("unknown function '{name}'")))
    }

    fn binary_rex(&self, op: BinOp, l: RexNode, r: RexNode) -> Result<RexNode> {
        // Narrow an untyped (`ANY`) dynamic parameter from the other
        // operand, so `deptno = ?` types the parameter as INTEGER: the
        // bind-time type check gets teeth and batch kernels get a typed
        // column instead of a generic one.
        let (l, r) = narrow_param_types(l, r);
        let rex_op = match op {
            BinOp::Plus => Op::Plus,
            BinOp::Minus => Op::Minus,
            BinOp::Times => Op::Times,
            BinOp::Divide => Op::Divide,
            BinOp::Mod => Op::Mod,
            BinOp::Concat => Op::Concat,
            BinOp::Eq => Op::Eq,
            BinOp::Ne => Op::Ne,
            BinOp::Lt => Op::Lt,
            BinOp::Le => Op::Le,
            BinOp::Gt => Op::Gt,
            BinOp::Ge => Op::Ge,
            BinOp::And => Op::And,
            BinOp::Or => Op::Or,
        };
        // Type validation.
        match rex_op {
            Op::And | Op::Or => {
                require_boolean(&l, "AND/OR")?;
                require_boolean(&r, "AND/OR")?;
            }
            Op::Eq | Op::Ne | Op::Lt | Op::Le | Op::Gt | Op::Ge
                if l.ty().least_restrictive(r.ty()).is_none() =>
            {
                return Err(CalciteError::validate(format!(
                    "cannot compare {} with {}",
                    l.ty(),
                    r.ty()
                )));
            }
            Op::Plus | Op::Minus | Op::Times | Op::Divide | Op::Mod => {
                let lk = &l.ty().kind;
                let rk = &r.ty().kind;
                let numeric_ok = (lk.is_numeric() || *lk == TypeKind::Any || *lk == TypeKind::Null)
                    && (rk.is_numeric() || *rk == TypeKind::Any || *rk == TypeKind::Null);
                let temporal_ok = lk.is_temporal() && rk.is_temporal();
                if !numeric_ok && !temporal_ok {
                    return Err(CalciteError::validate(format!(
                        "invalid operands for arithmetic: {} and {}",
                        l.ty(),
                        r.ty()
                    )));
                }
            }
            _ => {}
        }
        Ok(RexNode::call(rex_op, vec![l, r]))
    }

    // -------------------------------------------------------------
    // Window functions
    // -------------------------------------------------------------

    fn collect_windows(
        &self,
        e: &Expr,
        scope: &Scope,
        seen: &mut Vec<(Expr, usize)>,
        wfs: &mut Vec<WindowFn>,
    ) -> Result<()> {
        match e {
            Expr::Func {
                name,
                args,
                over: Some(spec),
                ..
            } => {
                if seen.iter().any(|(ast, _)| ast == e) {
                    return Ok(());
                }
                let func = if name.eq_ignore_ascii_case("ROW_NUMBER") {
                    WinFunc::RowNumber
                } else if name.eq_ignore_ascii_case("RANK") {
                    WinFunc::Rank
                } else if let Some(a) = AggFunc::by_name(name) {
                    WinFunc::Agg(a)
                } else {
                    return Err(CalciteError::validate(format!(
                        "unknown window function '{name}'"
                    )));
                };
                let col_of = |e: &Expr| -> Result<usize> {
                    let rex = self.to_rex(e, scope)?;
                    rex.as_input_ref().ok_or_else(|| {
                        CalciteError::unsupported(
                            "window arguments/partition/order must be plain columns",
                        )
                    })
                };
                let mut arg_cols = vec![];
                for a in args {
                    arg_cols.push(col_of(a)?);
                }
                let mut partition = vec![];
                for p in &spec.partition {
                    partition.push(col_of(p)?);
                }
                let mut order: Collation = vec![];
                for o in &spec.order {
                    let c = col_of(&o.expr)?;
                    order.push(if o.desc {
                        FieldCollation::desc(c)
                    } else {
                        FieldCollation::asc(c)
                    });
                }
                let frame = self.convert_frame(&spec.frame, !order.is_empty(), scope)?;
                let idx = scope.arity() + wfs.len();
                let ty = match func {
                    WinFunc::RowNumber | WinFunc::Rank => RelType::not_null(TypeKind::Integer),
                    WinFunc::Agg(a) => a.ret_type(arg_cols.first().map(|c| &scope.cols[*c].ty)),
                };
                wfs.push(WindowFn {
                    func,
                    args: arg_cols,
                    partition,
                    order,
                    frame,
                    name: format!("w${}", wfs.len()),
                    ty,
                });
                seen.push((e.clone(), idx));
                Ok(())
            }
            _ => {
                for child in expr_children(e) {
                    self.collect_windows(child, scope, seen, wfs)?;
                }
                Ok(())
            }
        }
    }

    fn convert_frame(
        &self,
        frame: &Option<FrameSpec>,
        has_order: bool,
        scope: &Scope,
    ) -> Result<WindowFrame> {
        let Some(f) = frame else {
            // Default frames per SQL: with ORDER BY, RANGE UNBOUNDED
            // PRECEDING..CURRENT ROW; without, the whole partition.
            return Ok(if has_order {
                WindowFrame::range(FrameBound::UnboundedPreceding, FrameBound::CurrentRow)
            } else {
                WindowFrame::rows(
                    FrameBound::UnboundedPreceding,
                    FrameBound::UnboundedFollowing,
                )
            });
        };
        let conv = |b: &AstFrameBound| -> Result<FrameBound> {
            Ok(match b {
                AstFrameBound::UnboundedPreceding => FrameBound::UnboundedPreceding,
                AstFrameBound::CurrentRow => FrameBound::CurrentRow,
                AstFrameBound::UnboundedFollowing => FrameBound::UnboundedFollowing,
                AstFrameBound::Preceding(e) => FrameBound::Preceding(self.frame_offset(e, scope)?),
                AstFrameBound::Following(e) => FrameBound::Following(self.frame_offset(e, scope)?),
            })
        };
        let lower = conv(&f.lower)?;
        let upper = match &f.upper {
            Some(u) => conv(u)?,
            None => FrameBound::CurrentRow,
        };
        Ok(if f.rows {
            WindowFrame::rows(lower, upper)
        } else {
            WindowFrame::range(lower, upper)
        })
    }

    /// A frame offset: integer row count or interval milliseconds.
    fn frame_offset(&self, e: &Expr, scope: &Scope) -> Result<i64> {
        let rex = self.to_rex(e, scope)?;
        let v = rex
            .eval(&[])
            .map_err(|_| CalciteError::validate("frame bound must be a constant"))?;
        match v {
            Datum::Int(i) => Ok(i),
            Datum::Interval(ms) => Ok(ms),
            other => Err(CalciteError::validate(format!(
                "invalid frame bound {other}"
            ))),
        }
    }

    fn to_rex_with_windows(
        &self,
        e: &Expr,
        scope: &Scope,
        windows: &[(Expr, usize)],
        _base_arity: usize,
        windowed_rel: &Rel,
    ) -> Result<RexNode> {
        // Exact windowed-call replacement.
        for (ast, idx) in windows {
            if ast == e {
                return Ok(RexNode::input(
                    *idx,
                    windowed_rel.row_type().field(*idx).ty.clone(),
                ));
            }
        }
        match e {
            Expr::Func { over: Some(_), .. } => {
                Err(CalciteError::internal("uncollected window call"))
            }
            Expr::Binary { op, left, right } => {
                let l =
                    self.to_rex_with_windows(left, scope, windows, _base_arity, windowed_rel)?;
                let r =
                    self.to_rex_with_windows(right, scope, windows, _base_arity, windowed_rel)?;
                self.binary_rex(*op, l, r)
            }
            Expr::Cast { expr, ty } => {
                let inner =
                    self.to_rex_with_windows(expr, scope, windows, _base_arity, windowed_rel)?;
                Ok(cast_to(inner, ty))
            }
            _ => self.to_rex(e, scope),
        }
    }
}

/// Result of converting one SELECT: the plan (possibly carrying hidden
/// sort columns beyond `n_visible`) and the resolved ORDER BY collation.
struct SelectOutput {
    rel: Rel,
    n_visible: usize,
    collation: Collation,
}

/// Group-key context used when rewriting expressions above an Aggregate.
struct PostAggCtx<'a> {
    group_rex: &'a [RexNode],
    tumble_info: &'a [Option<i64>],
    aggs: &'a [AggInfo],
    agg_out_offset: usize,
    agg_node: &'a Rel,
}

/// `TUMBLE(ts, i)` window start: `ts - (ts % i)`.
fn tumble_start(ts: RexNode, ms: i64) -> RexNode {
    let iv = RexNode::literal(Datum::Interval(ms), RelType::not_null(TypeKind::Interval));
    let offset = RexNode::call_typed(
        Op::Mod,
        vec![ts.clone(), iv],
        RelType::not_null(TypeKind::Interval),
    );
    let nullable = ts.ty().nullable;
    RexNode::call_typed(
        Op::Minus,
        vec![ts, offset],
        RelType::new(TypeKind::Timestamp, nullable),
    )
}

fn interval_millis(rex: &RexNode) -> Result<i64> {
    match rex.as_literal() {
        Some(Datum::Interval(ms)) if *ms > 0 => Ok(*ms),
        _ => Err(CalciteError::validate(
            "expected a positive INTERVAL literal",
        )),
    }
}

fn literal_rex(lit: &Lit) -> Result<RexNode> {
    Ok(match lit {
        Lit::Int(i) => RexNode::lit_int(*i),
        Lit::Double(d) => RexNode::lit_double(*d),
        Lit::Str(s) => RexNode::lit_str(s),
        Lit::Bool(b) => RexNode::lit_bool(*b),
        Lit::Null => RexNode::lit_null(RelType::nullable(TypeKind::Null)),
        Lit::Date(s) => {
            let d = parse_date(s)
                .ok_or_else(|| CalciteError::validate(format!("invalid DATE '{s}'")))?;
            RexNode::literal(Datum::Date(d), RelType::not_null(TypeKind::Date))
        }
        Lit::Timestamp(s) => {
            let t = parse_timestamp(s)
                .ok_or_else(|| CalciteError::validate(format!("invalid TIMESTAMP '{s}'")))?;
            RexNode::literal(Datum::Timestamp(t), RelType::not_null(TypeKind::Timestamp))
        }
        Lit::Interval { value, unit } => {
            let n: i64 = value
                .trim()
                .parse()
                .map_err(|_| CalciteError::validate(format!("invalid INTERVAL '{value}'")))?;
            RexNode::literal(
                Datum::Interval(n * unit.millis()),
                RelType::not_null(TypeKind::Interval),
            )
        }
    })
}

/// When exactly one side of a binary operator is an `ANY`-typed dynamic
/// parameter and the other side has a concrete type, adopt that type for
/// the parameter (nullable: the bound value may be NULL).
fn narrow_param_types(l: RexNode, r: RexNode) -> (RexNode, RexNode) {
    fn concrete(ty: &RelType) -> bool {
        !matches!(ty.kind, TypeKind::Any | TypeKind::Null)
    }
    fn narrow(e: RexNode, other: &RelType) -> RexNode {
        match e {
            RexNode::DynamicParam { index, ty } if !concrete(&ty) && concrete(other) => {
                RexNode::param(index, RelType::nullable(other.kind.clone()))
            }
            e => e,
        }
    }
    let l_ty = l.ty().clone();
    let r_ty = r.ty().clone();
    (narrow(l, &r_ty), narrow(r, &l_ty))
}

/// Maps a parsed SQL type to the core type system (shared by CAST and
/// CREATE TABLE column definitions).
pub fn ast_type_to_kind(ty: &AstType) -> TypeKind {
    match ty {
        AstType::Boolean => TypeKind::Boolean,
        AstType::Integer => TypeKind::Integer,
        AstType::Double => TypeKind::Double,
        AstType::Varchar => TypeKind::Varchar,
        AstType::Date => TypeKind::Date,
        AstType::Timestamp => TypeKind::Timestamp,
        AstType::Geometry => TypeKind::Geometry,
        AstType::Any => TypeKind::Any,
    }
}

fn cast_to(inner: RexNode, ty: &AstType) -> RexNode {
    let kind = ast_type_to_kind(ty);
    let nullable = inner.ty().nullable;
    inner.cast(RelType::new(kind, nullable))
}

fn require_boolean(rex: &RexNode, context: &str) -> Result<()> {
    match rex.ty().kind {
        TypeKind::Boolean | TypeKind::Any | TypeKind::Null => Ok(()),
        ref other => Err(CalciteError::validate(format!(
            "{context} requires a boolean, found {other}"
        ))),
    }
}

fn derive_name(alias: Option<&str>, expr: &Expr, i: usize) -> String {
    if let Some(a) = alias {
        return a.to_string();
    }
    match expr {
        Expr::Ident(parts) => parts.last().unwrap().clone(),
        Expr::Func { name, .. } => name.to_ascii_lowercase(),
        _ => format!("EXPR${i}"),
    }
}

fn contains_agg(e: &Expr) -> bool {
    match e {
        Expr::Func {
            name, over: None, ..
        } if AggFunc::by_name(name).is_some() => true,
        _ => expr_children(e).into_iter().any(contains_agg),
    }
}

/// Child expressions for generic AST traversal.
fn expr_children(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Ident(_) | Expr::Literal(_) | Expr::Param(_) => vec![],
        Expr::Unary { expr, .. } => vec![expr],
        Expr::Not(x) => vec![x],
        Expr::Binary { left, right, .. } => vec![left, right],
        Expr::IsNull { expr, .. } => vec![expr],
        Expr::Like { expr, pattern, .. } => vec![expr, pattern],
        Expr::Between {
            expr, low, high, ..
        } => vec![expr, low, high],
        Expr::InList { expr, list, .. } => {
            let mut v: Vec<&Expr> = vec![expr];
            v.extend(list.iter());
            v
        }
        Expr::Case {
            operand,
            whens,
            else_,
        } => {
            let mut v: Vec<&Expr> = vec![];
            if let Some(o) = operand {
                v.push(o);
            }
            for (c, val) in whens {
                v.push(c);
                v.push(val);
            }
            if let Some(e2) = else_ {
                v.push(e2);
            }
            v
        }
        Expr::Cast { expr, .. } => vec![expr],
        Expr::Func { args, .. } => args.iter().collect(),
        Expr::Item { base, index } => vec![base, index],
    }
}

/// Whether a FROM clause references at least one stream table.
fn table_expr_has_stream(te: &TableExpr, catalog: &Catalog) -> bool {
    match te {
        TableExpr::Table { name, .. } => {
            let parts: Vec<&str> = name.iter().map(|s| s.as_str()).collect();
            catalog
                .resolve(&parts)
                .map(|t| t.table.is_stream())
                .unwrap_or(false)
        }
        TableExpr::Subquery { .. } => false,
        TableExpr::Join { left, right, .. } => {
            table_expr_has_stream(left, catalog) || table_expr_has_stream(right, catalog)
        }
    }
}

/// Resolves a USING column within one side of a join scope.
fn resolve_in_range(
    scope: &Scope,
    col: &str,
    start: usize,
    end: usize,
) -> Result<(usize, RelType)> {
    for i in start..end {
        if scope.cols[i].name.eq_ignore_ascii_case(col) {
            return Ok((i, scope.cols[i].ty.clone()));
        }
    }
    Err(CalciteError::validate(format!(
        "USING column '{col}' not found on one side of the join"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use rcalcite_core::catalog::{MemTable, Schema};
    use rcalcite_core::rel::RelKind;
    use rcalcite_core::types::RowTypeBuilder;
    use std::sync::Arc;

    fn catalog() -> Arc<Catalog> {
        let catalog = Catalog::new();
        let s = Schema::new();
        s.add_table(
            "sales",
            MemTable::new(
                RowTypeBuilder::new()
                    .add_not_null("productid", TypeKind::Integer)
                    .add("discount", TypeKind::Double)
                    .add("units", TypeKind::Integer)
                    .build(),
                vec![],
            ),
        );
        s.add_table(
            "products",
            MemTable::new(
                RowTypeBuilder::new()
                    .add_not_null("productid", TypeKind::Integer)
                    .add_not_null("name", TypeKind::Varchar)
                    .build(),
                vec![],
            ),
        );
        catalog.add_schema("s", s);
        catalog
    }

    fn to_rel(sql: &str) -> Result<Rel> {
        let cat = catalog();
        let funcs = FunctionRegistry::new();
        match parse(sql)? {
            crate::ast::Stmt::Query(q) => query_to_rel(&cat, &funcs, &q),
            _ => panic!(),
        }
    }

    #[test]
    fn simple_select_shape() {
        let rel_ = to_rel("SELECT name FROM products WHERE productid > 5").unwrap();
        assert_eq!(rel_.kind(), RelKind::Project);
        assert_eq!(rel_.input(0).kind(), RelKind::Filter);
        assert_eq!(rel_.input(0).input(0).kind(), RelKind::Scan);
        assert_eq!(rel_.row_type().field_names(), vec!["name"]);
    }

    #[test]
    fn figure4_query_converts() {
        let rel_ = to_rel(
            "SELECT products.name, COUNT(*) AS c \
             FROM sales JOIN products USING (productid) \
             WHERE sales.discount IS NOT NULL \
             GROUP BY products.name \
             ORDER BY COUNT(*) DESC",
        )
        .unwrap();
        // Sort over Project over Aggregate over Project over Filter over Join.
        assert_eq!(rel_.kind(), RelKind::Sort);
        assert_eq!(rel_.input(0).kind(), RelKind::Project);
        assert_eq!(rel_.input(0).input(0).kind(), RelKind::Aggregate);
        assert_eq!(rel_.row_type().field_names(), vec!["name", "c"]);
    }

    #[test]
    fn select_star_and_qualified_star() {
        let rel_ = to_rel("SELECT * FROM products").unwrap();
        assert_eq!(rel_.kind(), RelKind::Scan);
        let rel_ =
            to_rel("SELECT p.* FROM products p JOIN sales s ON p.productid = s.productid").unwrap();
        assert_eq!(rel_.row_type().arity(), 2);
    }

    #[test]
    fn aggregate_with_having() {
        let rel_ = to_rel(
            "SELECT productid, SUM(units) AS total FROM sales \
             GROUP BY productid HAVING SUM(units) > 10",
        )
        .unwrap();
        assert_eq!(rel_.kind(), RelKind::Project);
        assert_eq!(rel_.input(0).kind(), RelKind::Filter);
        assert_eq!(rel_.input(0).input(0).kind(), RelKind::Aggregate);
    }

    #[test]
    fn group_expr_arithmetic_matched_in_select() {
        let rel_ =
            to_rel("SELECT productid + 1, COUNT(*) FROM sales GROUP BY productid + 1").unwrap();
        assert_eq!(rel_.row_type().arity(), 2);
    }

    #[test]
    fn ungrouped_column_rejected() {
        let err = to_rel("SELECT discount, COUNT(*) FROM sales GROUP BY productid");
        assert!(matches!(err, Err(CalciteError::Validate(_))), "{err:?}");
    }

    #[test]
    fn aggregate_in_where_rejected() {
        let err = to_rel("SELECT productid FROM sales WHERE COUNT(*) > 1");
        assert!(matches!(err, Err(CalciteError::Validate(_))));
    }

    #[test]
    fn unknown_column_and_table() {
        assert!(to_rel("SELECT nope FROM sales").is_err());
        assert!(to_rel("SELECT 1 FROM nonexistent").is_err());
        assert!(to_rel("SELECT x.name FROM products p").is_err());
    }

    #[test]
    fn type_mismatch_rejected() {
        let err = to_rel("SELECT 1 FROM products WHERE name > TRUE");
        assert!(matches!(err, Err(CalciteError::Validate(_))));
        let err = to_rel("SELECT name + 1 FROM products");
        assert!(matches!(err, Err(CalciteError::Validate(_))));
        let err = to_rel("SELECT 1 FROM products WHERE name");
        assert!(matches!(err, Err(CalciteError::Validate(_))));
    }

    #[test]
    fn distinct_becomes_aggregate() {
        let rel_ = to_rel("SELECT DISTINCT productid FROM sales").unwrap();
        assert_eq!(rel_.kind(), RelKind::Aggregate);
    }

    #[test]
    fn order_by_output_name_and_position() {
        let rel_ = to_rel("SELECT name AS n FROM products ORDER BY n").unwrap();
        assert_eq!(rel_.kind(), RelKind::Sort);
        let rel_ = to_rel("SELECT name, productid FROM products ORDER BY 2 DESC").unwrap();
        if let rel::RelOp::Sort { collation, .. } = &rel_.op {
            assert_eq!(collation[0].field, 1);
            assert!(collation[0].descending);
        } else {
            panic!();
        }
    }

    #[test]
    fn limit_offset() {
        let rel_ = to_rel("SELECT name FROM products LIMIT 5 OFFSET 2").unwrap();
        if let rel::RelOp::Sort { offset, fetch, .. } = &rel_.op {
            assert_eq!(*offset, Some(2));
            assert_eq!(*fetch, Some(5));
        } else {
            panic!();
        }
    }

    #[test]
    fn union_and_values() {
        let rel_ =
            to_rel("SELECT productid FROM sales UNION SELECT productid FROM products").unwrap();
        assert_eq!(rel_.kind(), RelKind::Union);
        let rel_ = to_rel("VALUES (1, 'a'), (2, 'b')").unwrap();
        assert_eq!(rel_.kind(), RelKind::Values);
        assert_eq!(rel_.row_type().arity(), 2);
        // Arity mismatch.
        assert!(
            to_rel("SELECT productid FROM sales UNION SELECT productid, units FROM sales").is_err()
        );
    }

    #[test]
    fn subquery_scope() {
        let rel_ =
            to_rel("SELECT n FROM (SELECT name AS n FROM products) AS sub WHERE n LIKE 'a%'")
                .unwrap();
        assert_eq!(rel_.row_type().field_names(), vec!["n"]);
    }

    #[test]
    fn between_and_in_desugar() {
        let rel_ = to_rel(
            "SELECT 1 FROM sales WHERE productid BETWEEN 1 AND 5 AND productid IN (1, 2, 3)",
        )
        .unwrap();
        assert_eq!(rel_.input(0).kind(), RelKind::Filter);
    }

    #[test]
    fn stream_requires_stream_table() {
        // `sales` is not a stream.
        let err = to_rel("SELECT STREAM productid FROM sales");
        assert!(matches!(err, Err(CalciteError::Validate(_))));
    }

    #[test]
    fn window_function_in_select() {
        let rel_ =
            to_rel("SELECT productid, SUM(units) OVER (PARTITION BY productid) AS s FROM sales")
                .unwrap();
        assert_eq!(rel_.kind(), RelKind::Project);
        assert_eq!(rel_.input(0).kind(), RelKind::Window);
    }

    #[test]
    fn row_number_window() {
        let rel_ =
            to_rel("SELECT productid, ROW_NUMBER() OVER (ORDER BY units DESC) AS rn FROM sales")
                .unwrap();
        assert_eq!(rel_.input(0).kind(), RelKind::Window);
        assert_eq!(rel_.row_type().field_names(), vec!["productid", "rn"]);
    }
}
