//! The prepared-statement front door: [`ConnectionBuilder`] configures a
//! connection (execution mode, planner settings, plan cache) and wires
//! the default enumerable engine; [`PreparedStatement`] compiles SQL with
//! `?` placeholders once and executes it many times with different
//! bindings; [`ResultSet`] is the pull-based cursor both it and
//! [`Connection::execute`] return.
//!
//! This mirrors how the paper's framework is consumed in production —
//! a JDBC/Avatica server prepares statements once and serves many
//! executions, amortizing parse and optimization cost across calls.

use crate::connection::{CachedPlan, Connection, QueryResult};
use crate::validator::check_bindings;
use parking_lot::RwLock;
use rcalcite_core::catalog::Catalog;
use rcalcite_core::datum::{columns_to_rows, Datum, Row};
use rcalcite_core::error::Result;
use rcalcite_core::exec::{BatchIter, Parallelism, RowIter, DEFAULT_MORSEL_SIZE};
use rcalcite_core::planner::volcano::FixpointMode;
use rcalcite_core::types::RelType;
use rcalcite_enumerable::EnumerableExecutor;
use std::collections::VecDeque;
use std::sync::Arc;

/// How a connection executes optimized plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Row-at-a-time iterators (the paper's enumerable convention).
    Row,
    /// The vectorized streaming batch tree, one operator per plan node.
    Batch,
    /// The batch tree with the Scan→Filter→Project fusion pass — the
    /// fastest mode, and the default for built connections.
    #[default]
    Fused,
}

impl ExecutionMode {
    /// Whether this mode runs the vectorized batch tree, and if so with
    /// the fusion pass on — the single source of truth shared by the
    /// builder's executor choice and the cursor's streaming path.
    pub(crate) fn batch_fusion(self) -> Option<bool> {
        match self {
            ExecutionMode::Row => None,
            ExecutionMode::Batch => Some(false),
            ExecutionMode::Fused => Some(true),
        }
    }

    /// Lowercase name, as rendered on the EXPLAIN header line.
    pub fn as_str(self) -> &'static str {
        match self {
            ExecutionMode::Row => "row",
            ExecutionMode::Batch => "batch",
            ExecutionMode::Fused => "fused",
        }
    }
}

/// Builds a [`Connection`] with the execution engine wired in, replacing
/// the old hand-registration dance (`add_rule(implement_rule())` +
/// `register_executor(...)`).
///
/// ```
/// # use rcalcite_core::catalog::Catalog;
/// # use rcalcite_sql::{Connection, ExecutionMode};
/// let conn = Connection::builder(Catalog::new())
///     .execution_mode(ExecutionMode::Row)
///     .build();
/// ```
pub struct ConnectionBuilder {
    catalog: Arc<Catalog>,
    mode: ExecutionMode,
    fixpoint: FixpointMode,
    metadata_cache: bool,
    plan_cache_capacity: Option<usize>,
    interpreter: bool,
    workers: Option<usize>,
    morsel_size: Option<usize>,
    memory_budget: Option<usize>,
}

/// Morsel size forced by the `RCALCITE_TEST_WORKERS` test hook (small,
/// so the threaded exchange paths engage even on small test tables).
const FORCED_TEST_MORSEL_SIZE: usize = 64;

impl ConnectionBuilder {
    pub fn new(catalog: Arc<Catalog>) -> ConnectionBuilder {
        ConnectionBuilder {
            catalog,
            mode: ExecutionMode::default(),
            fixpoint: FixpointMode::Exhaustive,
            metadata_cache: true,
            plan_cache_capacity: None,
            interpreter: false,
            workers: None,
            morsel_size: None,
            memory_budget: None,
        }
    }

    /// Picks row, batch, or fused-batch execution (default: fused).
    pub fn execution_mode(mut self, mode: ExecutionMode) -> ConnectionBuilder {
        self.mode = mode;
        self
    }

    /// Number of worker threads the batch engine's exchange operators
    /// may spawn per pipeline (default: the machine's available
    /// parallelism). `1` keeps execution fully serial. Ignored by
    /// [`ExecutionMode::Row`].
    pub fn workers(mut self, n: usize) -> ConnectionBuilder {
        self.workers = Some(n);
        self
    }

    /// Rows per morsel — the unit of work a parallel worker claims at a
    /// time (default: 4096). Exchanges only engage on inputs of at
    /// least two morsels, so this also acts as the parallelism
    /// threshold.
    pub fn morsel_size(mut self, rows: usize) -> ConnectionBuilder {
        self.morsel_size = Some(rows);
        self
    }

    /// Caps the bytes the batch engine's build-then-stream operators
    /// (hash-join build, aggregation state, sort input) may hold in
    /// memory per query (default: unbounded). When an operator's state
    /// outgrows the budget it degrades to its out-of-core form —
    /// hybrid-hash join, spilled aggregation partials, external merge
    /// sort — producing byte-identical results. The budget must fit at
    /// least one 32 KiB spill page; smaller values fail the query with
    /// an execution error. Ignored by [`ExecutionMode::Row`].
    pub fn memory_budget(mut self, bytes: usize) -> ConnectionBuilder {
        self.memory_budget = Some(bytes);
        self
    }

    /// Sets the cost-based planner's termination mode (§6).
    pub fn fixpoint_mode(mut self, mode: FixpointMode) -> ConnectionBuilder {
        self.fixpoint = mode;
        self
    }

    /// Enables or disables the planner metadata cache (default: on).
    pub fn metadata_cache(mut self, enabled: bool) -> ConnectionBuilder {
        self.metadata_cache = enabled;
        self
    }

    /// Bounds the compiled-plan LRU (default: 128 entries).
    pub fn plan_cache_capacity(mut self, capacity: usize) -> ConnectionBuilder {
        self.plan_cache_capacity = Some(capacity);
        self
    }

    /// Also registers the logical-plan interpreter executor, used by
    /// differential tests to run unoptimized plans.
    pub fn with_interpreter(mut self) -> ConnectionBuilder {
        self.interpreter = true;
        self
    }

    /// Builds the connection: enumerable implementation rule plus the
    /// executor for the chosen mode, planner configuration applied.
    ///
    /// Test hook: when the `RCALCITE_TEST_WORKERS` environment variable
    /// is set and neither [`ConnectionBuilder::workers`] nor
    /// [`ConnectionBuilder::morsel_size`] was called, the worker count
    /// comes from the variable and the morsel size drops to a small
    /// value, forcing the threaded exchange paths even on the small
    /// tables test suites use. CI runs the whole test matrix once under
    /// `RCALCITE_TEST_WORKERS=4`.
    ///
    /// A second hook, `RCALCITE_TEST_MEM_BUDGET` (bytes), bounds the
    /// memory budget the same way when
    /// [`ConnectionBuilder::memory_budget`] was not called, driving the
    /// build operators through their spill paths; CI runs the matrix
    /// under a tiny budget and under budget + workers combined.
    pub fn build(self) -> Connection {
        let mut conn = Connection::new(self.catalog);
        conn.set_fixpoint_mode(self.fixpoint);
        conn.set_metadata_cache(self.metadata_cache);
        if let Some(cap) = self.plan_cache_capacity {
            conn.set_plan_cache_capacity(cap);
        }
        let env_workers = std::env::var("RCALCITE_TEST_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok());
        let workers = self.workers.or(env_workers).unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
        });
        let morsel_size =
            self.morsel_size
                .unwrap_or(if self.workers.is_none() && env_workers.is_some() {
                    FORCED_TEST_MORSEL_SIZE
                } else {
                    DEFAULT_MORSEL_SIZE
                });
        conn.set_parallelism(Parallelism::new(workers, morsel_size));
        // `RCALCITE_TEST_MEM_BUDGET` was already applied by the fresh
        // context's `Default`; an explicit builder knob wins over it.
        if let Some(bytes) = self.memory_budget {
            conn.set_memory_budget(rcalcite_core::buffer::MemoryBudget::bytes(bytes));
        }
        // Cost-based join exploration (commute/associate) runs in the
        // Volcano phase, where the memo deduplicates the alternatives;
        // with ANALYZEd statistics this is what picks join order and puts
        // the smaller input on the hash join's build side.
        for r in rcalcite_core::rules::join_exploration_rules() {
            conn.add_rule(r);
        }
        conn.add_rule(rcalcite_enumerable::implement_rule());
        conn.register_executor(Arc::new(match self.mode.batch_fusion() {
            None => EnumerableExecutor::new(),
            Some(false) => EnumerableExecutor::batched_unfused(),
            Some(true) => EnumerableExecutor::batched(),
        }));
        if self.interpreter {
            conn.register_executor(Arc::new(if self.mode.batch_fusion().is_some() {
                EnumerableExecutor::batched_interpreter()
            } else {
                EnumerableExecutor::interpreter()
            }));
        }
        conn.exec_mode = self.mode;
        conn
    }
}

/// A query parsed, validated and optimized once, ready to execute many
/// times with different `?` bindings. Obtained from
/// [`Connection::prepare`].
///
/// If the connection's catalog or configuration changes after
/// preparation (DDL, INSERT, new rules), the statement transparently
/// re-plans on its next execution.
pub struct PreparedStatement<'c> {
    conn: &'c Connection,
    /// Plan-cache key (normalized SQL text).
    key: String,
    /// Parsed query, kept so a stale plan re-compiles without re-parsing.
    query: crate::ast::Query,
    plan: RwLock<Arc<CachedPlan>>,
}

impl<'c> PreparedStatement<'c> {
    pub(crate) fn new(
        conn: &'c Connection,
        key: String,
        query: crate::ast::Query,
        plan: Arc<CachedPlan>,
    ) -> PreparedStatement<'c> {
        PreparedStatement {
            conn,
            key,
            query,
            plan: RwLock::new(plan),
        }
    }

    /// Number of `?` parameters the statement takes.
    pub fn param_count(&self) -> usize {
        self.plan.read().params.len()
    }

    /// Declared type of each parameter (as inferred from its uses).
    pub fn param_types(&self) -> Vec<RelType> {
        self.plan.read().params.clone()
    }

    /// Output column names.
    pub fn columns(&self) -> Vec<String> {
        self.plan.read().columns.clone()
    }

    /// The current plan, re-compiled if the connection moved on since
    /// this statement was prepared (the fast path is one atomic load).
    /// While the connection has an open transaction the statement plans
    /// fresh against the transaction's snapshot on every execution and
    /// the stored plan is left untouched for use after COMMIT/ROLLBACK.
    fn current_plan(&self) -> Result<Arc<CachedPlan>> {
        if self.conn.in_transaction() {
            return self.conn.plan_for_txn(&self.query);
        }
        let plan = self.plan.read().clone();
        if plan.generation == self.conn.generation() {
            return Ok(plan);
        }
        let fresh = self.conn.replan(&self.key, &self.query)?;
        *self.plan.write() = fresh.clone();
        Ok(fresh)
    }

    /// Binds parameter values and executes, returning a streaming
    /// cursor. Arity and types are checked against the statement's
    /// parameters; planning is skipped entirely.
    pub fn bind(&self, params: &[Datum]) -> Result<ResultSet> {
        let plan = self.current_plan()?;
        check_bindings(&plan.params, params)?;
        ResultSet::open(self.conn, &plan, params.to_vec())
    }

    /// Binds, executes and materializes — `bind(...)` collected into a
    /// [`QueryResult`].
    pub fn query(&self, params: &[Datum]) -> Result<QueryResult> {
        self.bind(params)?.collect()
    }
}

/// A streaming cursor over query results. In the batch execution modes
/// rows are pulled from the executing plan one batch at a time, so
/// `LIMIT 1` over a large table never materializes the table; in `Row`
/// mode the cursor is still pull-based but the row engine's blocking
/// operators (project, sort, join) may materialize their outputs behind
/// it. [`ResultSet::collect`] produces the materialized [`QueryResult`]
/// view.
pub struct ResultSet {
    columns: Vec<String>,
    source: Source,
}

enum Source {
    /// Row-mode execution (and pre-materialized DDL results).
    Rows(RowIter),
    /// Batch-mode execution: one batch is pulled and buffered at a time.
    Batches {
        it: Box<dyn BatchIter>,
        buf: VecDeque<Row>,
    },
}

impl ResultSet {
    /// A cursor over already-materialized rows (DDL messages, EXPLAIN).
    pub(crate) fn materialized(columns: Vec<String>, rows: Vec<Row>) -> ResultSet {
        ResultSet {
            columns,
            source: Source::Rows(Box::new(rows.into_iter())),
        }
    }

    /// Opens a cursor over an optimized plan with the given parameter
    /// bindings, honoring the connection's execution mode. The batch
    /// modes stream through the built-in batch engine directly (the
    /// registered executor's row boundary would materialize); foreign
    /// sub-trees still dispatch through the registered executors.
    pub(crate) fn open(
        conn: &Connection,
        plan: &CachedPlan,
        params: Vec<Datum>,
    ) -> Result<ResultSet> {
        let ctx = conn.exec_context().with_params(params);
        let Some(fuse) = conn.execution_mode().batch_fusion() else {
            return Ok(ResultSet {
                columns: plan.columns.clone(),
                source: Source::Rows(ctx.execute(&plan.physical)?),
            });
        };
        // Zero-arity plans can't be represented as column batches (a
        // batch with no columns carries no row count); run them through
        // the registered (batched) executor's row boundary instead.
        if plan.physical.row_type().arity() == 0 {
            return Ok(ResultSet {
                columns: plan.columns.clone(),
                source: Source::Rows(ctx.execute(&plan.physical)?),
            });
        }
        let it = rcalcite_enumerable::execute_batches_with_fusion(&plan.physical, &ctx, fuse)?;
        Ok(ResultSet {
            columns: plan.columns.clone(),
            source: Source::Batches {
                it,
                buf: VecDeque::new(),
            },
        })
    }

    /// Output column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The next row, or `None` when the cursor is exhausted. Pulls at
    /// most one batch through the plan per call in batch mode.
    pub fn next_row(&mut self) -> Result<Option<Row>> {
        match &mut self.source {
            Source::Rows(it) => Ok(it.next()),
            Source::Batches { it, buf } => {
                while buf.is_empty() {
                    match it.next_batch()? {
                        None => return Ok(None),
                        Some(cols) => buf.extend(columns_to_rows(&cols)),
                    }
                }
                Ok(buf.pop_front())
            }
        }
    }

    /// Drains the cursor into a materialized [`QueryResult`].
    pub fn collect(mut self) -> Result<QueryResult> {
        let mut rows = vec![];
        while let Some(r) = self.next_row()? {
            rows.push(r);
        }
        Ok(QueryResult {
            columns: self.columns,
            rows,
        })
    }
}
