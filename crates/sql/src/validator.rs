//! Name-resolution scopes and semantic checks: the validator component of
//! Figure 1. Type checking happens as expressions are converted (types are
//! intrinsic to `RexNode`); this module owns identifier resolution,
//! ambiguity detection, and the streaming monotonicity validation of §7.2
//! ("streaming queries involving window aggregates require the presence of
//! monotonic or quasi-monotonic expressions in the GROUP BY clause").

use crate::ast::Expr;
use rcalcite_core::datum::Datum;
use rcalcite_core::error::{CalciteError, Result};
use rcalcite_core::rel::Rel;
use rcalcite_core::types::{RelType, TypeKind};

/// One column visible in a scope.
#[derive(Debug, Clone)]
pub struct ScopeCol {
    /// Table alias qualifying the column (lowercase).
    pub table: Option<String>,
    pub name: String,
    pub ty: RelType,
}

/// The set of columns visible to expressions at some point of a query.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    pub cols: Vec<ScopeCol>,
}

impl Scope {
    pub fn empty() -> Scope {
        Scope::default()
    }

    /// Scope exposing the output of a relational expression under an
    /// optional alias.
    pub fn from_rel(alias: Option<&str>, rel: &Rel) -> Scope {
        let alias = alias.map(|a| a.to_ascii_lowercase());
        Scope {
            cols: rel
                .row_type()
                .fields
                .iter()
                .map(|f| ScopeCol {
                    table: alias.clone(),
                    name: f.name.clone(),
                    ty: f.ty.clone(),
                })
                .collect(),
        }
    }

    /// Concatenation for joins: left columns first.
    pub fn join(mut self, right: Scope) -> Scope {
        self.cols.extend(right.cols);
        self
    }

    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Resolves `[col]` or `[alias, col]` to (index, type). Ambiguous
    /// unqualified names are an error.
    pub fn resolve(&self, parts: &[String]) -> Result<(usize, RelType)> {
        match parts {
            [col] => {
                let mut found: Option<usize> = None;
                for (i, c) in self.cols.iter().enumerate() {
                    if c.name.eq_ignore_ascii_case(col) {
                        if found.is_some() {
                            return Err(CalciteError::validate(format!(
                                "column '{col}' is ambiguous"
                            )));
                        }
                        found = Some(i);
                    }
                }
                found
                    .map(|i| (i, self.cols[i].ty.clone()))
                    .ok_or_else(|| CalciteError::validate(format!("column '{col}' not found")))
            }
            [tbl, col] => {
                let tbl = tbl.to_ascii_lowercase();
                for (i, c) in self.cols.iter().enumerate() {
                    if c.table.as_deref() == Some(tbl.as_str()) && c.name.eq_ignore_ascii_case(col)
                    {
                        return Ok((i, c.ty.clone()));
                    }
                }
                Err(CalciteError::validate(format!(
                    "column '{tbl}.{col}' not found"
                )))
            }
            _ => Err(CalciteError::validate(format!(
                "cannot resolve identifier {:?}",
                parts
            ))),
        }
    }

    /// Indexes of the columns belonging to `alias` (for `alias.*`).
    pub fn columns_of(&self, alias: &str) -> Vec<usize> {
        let alias = alias.to_ascii_lowercase();
        self.cols
            .iter()
            .enumerate()
            .filter(|(_, c)| c.table.as_deref() == Some(alias.as_str()))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Discovers the dynamic parameters of a compiled plan: `result[i]` is
/// the declared type of `?i` (as inferred during conversion; `ANY` when
/// no use narrowed it). The parameter count of a prepared statement is
/// `result.len()`.
pub fn collect_plan_params(rel: &Rel) -> Vec<RelType> {
    let mut found: Vec<Option<RelType>> = vec![];
    rel.visit_exprs(&mut |e| e.collect_params(&mut found));
    found
        .into_iter()
        .map(|t| t.unwrap_or(RelType::nullable(TypeKind::Any)))
        .collect()
}

/// Validates a set of bind values against a statement's parameter types:
/// the arity must match exactly, and each non-NULL value must be
/// coercible to the declared type (NULL binds to any parameter).
pub fn check_bindings(expected: &[RelType], values: &[Datum]) -> Result<()> {
    if values.len() != expected.len() {
        return Err(CalciteError::validate(format!(
            "statement takes {} parameter(s), {} bound",
            expected.len(),
            values.len()
        )));
    }
    for (i, (ty, v)) in expected.iter().zip(values).enumerate() {
        if v.is_null() {
            continue;
        }
        let vty = RelType::nullable(v.kind());
        if vty.least_restrictive(ty).is_none() {
            return Err(CalciteError::validate(format!(
                "parameter ?{i} expects {}, got {} value {v}",
                ty.kind, vty.kind
            )));
        }
    }
    Ok(())
}

/// Whether an AST group-by expression is (quasi-)monotonic with respect to
/// stream time: a TUMBLE over a timestamp column, or a bare timestamp
/// column reference.
pub fn is_monotonic_group_expr(expr: &Expr, scope: &Scope) -> bool {
    match expr {
        Expr::Func { name, args, .. } if name.eq_ignore_ascii_case("TUMBLE") => args
            .first()
            .map(|a| is_timestamp_column(a, scope))
            .unwrap_or(false),
        _ => is_timestamp_column(expr, scope),
    }
}

fn is_timestamp_column(expr: &Expr, scope: &Scope) -> bool {
    if let Expr::Ident(parts) = expr {
        if let Ok((_, ty)) = scope.resolve(parts) {
            return ty.kind == TypeKind::Timestamp;
        }
    }
    false
}

/// Validates a streaming GROUP BY: at least one group expression must be
/// monotonic, otherwise the query would block forever (§7.2).
pub fn check_stream_group_by(group_by: &[Expr], scope: &Scope) -> Result<()> {
    if group_by.is_empty() {
        return Err(CalciteError::validate(
            "streaming aggregation without GROUP BY can never emit a result; \
             group by a monotonic expression such as TUMBLE(rowtime, ...)",
        ));
    }
    if group_by.iter().any(|e| is_monotonic_group_expr(e, scope)) {
        Ok(())
    } else {
        Err(CalciteError::validate(
            "streaming GROUP BY requires a monotonic or quasi-monotonic \
             expression (e.g. TUMBLE over the stream's timestamp column)",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcalcite_core::catalog::{MemTable, TableRef};
    use rcalcite_core::rel;
    use rcalcite_core::types::{RowTypeBuilder, TypeKind};

    fn orders() -> Rel {
        let t = MemTable::new(
            RowTypeBuilder::new()
                .add_not_null("rowtime", TypeKind::Timestamp)
                .add_not_null("productid", TypeKind::Integer)
                .add("units", TypeKind::Integer)
                .build(),
            vec![],
        );
        rel::scan(TableRef::new("s", "orders", t))
    }

    #[test]
    fn resolve_qualified_and_unqualified() {
        let s = Scope::from_rel(Some("o"), &orders());
        assert_eq!(s.resolve(&["units".into()]).unwrap().0, 2);
        assert_eq!(s.resolve(&["o".into(), "rowtime".into()]).unwrap().0, 0);
        assert!(s.resolve(&["x".into(), "rowtime".into()]).is_err());
        assert!(s.resolve(&["nothere".into()]).is_err());
    }

    #[test]
    fn ambiguity_detection() {
        let s = Scope::from_rel(Some("a"), &orders()).join(Scope::from_rel(Some("b"), &orders()));
        assert!(s.resolve(&["units".into()]).is_err());
        // Qualification disambiguates; right side is offset by the left
        // arity.
        assert_eq!(s.resolve(&["b".into(), "units".into()]).unwrap().0, 5);
    }

    #[test]
    fn qualified_wildcard_columns() {
        let s = Scope::from_rel(Some("a"), &orders()).join(Scope::from_rel(Some("b"), &orders()));
        assert_eq!(s.columns_of("b"), vec![3, 4, 5]);
        assert!(s.columns_of("zzz").is_empty());
    }

    #[test]
    fn monotonicity_of_tumble_and_rowtime() {
        let s = Scope::from_rel(None, &orders());
        let tumble = Expr::Func {
            name: "TUMBLE".into(),
            args: vec![Expr::ident("rowtime")],
            distinct: false,
            star: false,
            over: None,
        };
        assert!(is_monotonic_group_expr(&tumble, &s));
        assert!(is_monotonic_group_expr(&Expr::ident("rowtime"), &s));
        assert!(!is_monotonic_group_expr(&Expr::ident("productid"), &s));
    }

    #[test]
    fn stream_group_by_validation() {
        let s = Scope::from_rel(None, &orders());
        // productid alone: blocking, rejected.
        assert!(check_stream_group_by(&[Expr::ident("productid")], &s).is_err());
        // TUMBLE plus productid: fine (the paper's tumbling example).
        let tumble = Expr::Func {
            name: "TUMBLE".into(),
            args: vec![Expr::ident("rowtime")],
            distinct: false,
            star: false,
            over: None,
        };
        assert!(check_stream_group_by(&[tumble, Expr::ident("productid")], &s).is_ok());
        // Empty group by on a stream: rejected.
        assert!(check_stream_group_by(&[], &s).is_err());
    }
}
